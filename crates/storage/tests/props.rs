//! Property-based tests for the storage layer: codec framing, slotted
//! pages, heap files, and buffer-pool transparency.


// Property suite: compiled only with `--features proptest` so the
// offline tier-1 run stays lean; see third_party/README.md.
#![cfg(feature = "proptest")]

use cqa_storage::codec::{Reader, Writer};
use cqa_storage::{BufferPool, HeapFile, MemDisk, SlottedPage, PAGE_SIZE};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any sequence of codec writes reads back exactly.
    #[test]
    fn codec_roundtrip(values in prop::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(V::U8),
            any::<u32>().prop_map(V::U32),
            any::<u64>().prop_map(V::U64),
            any::<i64>().prop_map(V::I64),
            any::<f64>().prop_filter("no NaN for Eq", |f| !f.is_nan()).prop_map(V::F64),
            "[a-zA-Z0-9 äöü]{0,40}".prop_map(V::Str),
            prop::collection::vec(any::<u8>(), 0..64).prop_map(V::Bytes),
        ],
        0..24,
    )) {
        let mut w = Writer::new();
        for v in &values {
            match v {
                V::U8(x) => { w.u8(*x); }
                V::U32(x) => { w.u32(*x); }
                V::U64(x) => { w.u64(*x); }
                V::I64(x) => { w.i64(*x); }
                V::F64(x) => { w.f64(*x); }
                V::Str(s) => { w.str(s); }
                V::Bytes(b) => { w.bytes(b); }
            }
        }
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        for v in &values {
            match v {
                V::U8(x) => prop_assert_eq!(r.u8().unwrap(), *x),
                V::U32(x) => prop_assert_eq!(r.u32().unwrap(), *x),
                V::U64(x) => prop_assert_eq!(r.u64().unwrap(), *x),
                V::I64(x) => prop_assert_eq!(r.i64().unwrap(), *x),
                V::F64(x) => prop_assert_eq!(r.f64().unwrap(), *x),
                V::Str(s) => prop_assert_eq!(r.str().unwrap(), s.as_str()),
                V::Bytes(b) => prop_assert_eq!(r.bytes().unwrap(), b.as_slice()),
            }
        }
        prop_assert!(r.at_end());
    }

    /// Truncating an encoded buffer never panics, and every value that
    /// does read back equals what was written (errors are the only other
    /// outcome — no silent corruption).
    #[test]
    fn codec_truncation_safe(text in "[a-z]{0,20}", cut in any::<prop::sample::Index>()) {
        let mut w = Writer::new();
        w.u64(7).str(&text).u32(9);
        let buf = w.finish();
        let cut = cut.index(buf.len() + 1).min(buf.len());
        let mut r = Reader::new(&buf[..cut]);
        match r.u64() {
            Err(_) => return Ok(()),
            Ok(v) => prop_assert_eq!(v, 7),
        }
        match r.str() {
            Err(_) => return Ok(()),
            Ok(s) => prop_assert_eq!(s, text.as_str()),
        }
        match r.u32() {
            Err(_) => return Ok(()),
            Ok(v) => {
                prop_assert_eq!(v, 9);
                prop_assert!(r.at_end());
                prop_assert_eq!(cut, buf.len());
            }
        }
    }

    /// Slotted page: interleaved inserts and deletes match a shadow map.
    #[test]
    fn slotted_page_vs_shadow(ops in prop::collection::vec(
        prop_oneof![
            prop::collection::vec(any::<u8>(), 0..200).prop_map(Op::Insert),
            any::<u16>().prop_map(Op::Delete),
        ],
        0..40,
    )) {
        let mut data = vec![0u8; PAGE_SIZE];
        SlottedPage::init(&mut data);
        let mut page = SlottedPage::new(&mut data);
        let mut shadow: Vec<Option<Vec<u8>>> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(rec) => {
                    if page.fits(rec.len()) {
                        let slot = page.insert(&rec).unwrap();
                        prop_assert_eq!(slot as usize, shadow.len());
                        shadow.push(Some(rec));
                    }
                }
                Op::Delete(s) => {
                    if shadow.is_empty() {
                        continue;
                    }
                    let idx = s as usize % shadow.len();
                    let was_live = shadow[idx].is_some();
                    prop_assert_eq!(page.delete(idx as u16), was_live);
                    shadow[idx] = None;
                }
            }
        }
        for (i, want) in shadow.iter().enumerate() {
            prop_assert_eq!(page.get(i as u16), want.as_deref());
        }
    }

    /// Heap files return exactly what was inserted, regardless of pool size.
    #[test]
    fn heap_file_roundtrip(records in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..500),
        0..30,
    ), pool_size in 1usize..8) {
        let mut pool = BufferPool::new(MemDisk::new(), pool_size);
        let mut heap = HeapFile::create();
        let mut rids = Vec::new();
        for rec in &records {
            rids.push(heap.insert(&mut pool, rec).unwrap());
        }
        for (rid, rec) in rids.iter().zip(&records) {
            prop_assert_eq!(&heap.get(&mut pool, *rid).unwrap(), rec);
        }
        let scanned = heap.scan(&mut pool).unwrap();
        prop_assert_eq!(scanned.len(), records.len());
        for ((_, got), want) in scanned.iter().zip(&records) {
            prop_assert_eq!(got, want);
        }
    }
}

#[derive(Debug, Clone)]
enum V {
    U8(u8),
    U32(u32),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Bytes(Vec<u8>),
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>),
    Delete(u16),
}
