//! Criterion benchmarks for the CQA operators, including the ablation
//! DESIGN.md calls out: Gaussian substitution of equalities before
//! Fourier–Motzkin vs raw inequality-pair elimination on logically
//! equivalent inputs.

use criterion::{criterion_group, criterion_main, Criterion};
use cqa::constraints::{Atom, Conjunction, LinExpr, Var};
use cqa::core::plan::{CmpOp, Selection};
use cqa::core::{ops, AttrDef, HRelation, Schema};
use cqa::num::Rat;

fn interval_relation(n: usize) -> HRelation {
    let schema = Schema::new(vec![
        AttrDef::str_rel("id"),
        AttrDef::rat_con("x"),
        AttrDef::rat_con("y"),
    ])
    .unwrap();
    let mut r = HRelation::new(schema);
    for i in 0..n {
        let lo = (i % 100) as i64 * 10;
        r.insert_with(|b| {
            b.set("id", format!("t{}", i).as_str())
                .range("x", lo, lo + 15)
                .range("y", lo / 2, lo / 2 + 7)
        })
        .unwrap();
    }
    r
}

fn bench_operators(c: &mut Criterion) {
    let rel = interval_relation(500);
    let sel = Selection::all().cmp_int("x", CmpOp::Ge, 300).cmp_int("x", CmpOp::Le, 500);
    c.bench_function("select_500", |b| b.iter(|| ops::select(&rel, &sel).unwrap()));
    c.bench_function("project_500", |b| {
        b.iter(|| ops::project(&rel, &["id".into(), "x".into()]).unwrap())
    });

    let small = interval_relation(40);
    c.bench_function("join_40x40", |b| b.iter(|| ops::join(&small, &small).unwrap()));
    c.bench_function("difference_40x40", |b| {
        b.iter(|| ops::difference(&small, &small).unwrap())
    });
}

/// The Gaussian-step ablation: eliminate t from
///   { x = 2t + 1, y = t - 3, 0 <= t <= 10 }         (equational form)
/// vs the same system with each equation split into two inequalities
/// (forcing the quadratic Fourier–Motzkin pairing).
fn bench_elimination(c: &mut Criterion) {
    let (t, x, y) = (Var(0), Var(1), Var(2));
    let line = |coeff: i64, offset: i64, v: Var| {
        LinExpr::from_terms([(v, Rat::one()), (t, Rat::from_int(-coeff))], Rat::from_int(-offset))
    };
    let eq_form = Conjunction::from_atoms([
        Atom::new(line(2, 1, x), cqa::constraints::Rel::Eq),
        Atom::new(line(1, -3, y), cqa::constraints::Rel::Eq),
        Atom::ge(LinExpr::var(t), LinExpr::zero()),
        Atom::le(LinExpr::var(t), LinExpr::constant_int(10)),
    ]);
    let split_form = Conjunction::from_atoms(
        eq_form
            .atoms()
            .flat_map(|a| {
                if a.rel() == cqa::constraints::Rel::Eq {
                    vec![
                        Atom::new(a.expr().clone(), cqa::constraints::Rel::Le),
                        Atom::new(-a.expr(), cqa::constraints::Rel::Le),
                    ]
                } else {
                    vec![a.clone()]
                }
            })
            .collect::<Vec<_>>(),
    );
    assert!(eq_form.equivalent(&split_form));
    c.bench_function("eliminate_gaussian", |b| b.iter(|| eq_form.eliminate([t])));
    c.bench_function("eliminate_raw_fm", |b| b.iter(|| split_form.eliminate([t])));
}

/// The pruning ablation (DESIGN.md): Fourier–Motzkin with vs without the
/// parallel-constraint pruning pass, on a system that generates many
/// parallel constraints per eliminated variable.
fn bench_pruning(c: &mut Criterion) {
    use cqa::constraints::fourier_motzkin::{eliminate, eliminate_unpruned};
    use std::collections::BTreeSet;
    let n_bounds = 12;
    let vars: Vec<Var> = (0..4).map(Var).collect();
    let mut atoms: BTreeSet<Atom> = BTreeSet::new();
    // Chain v0 ≤ v1 ≤ v2 ≤ v3 with many redundant upper bounds per var.
    for w in vars.windows(2) {
        atoms.insert(Atom::le(LinExpr::var(w[0]), LinExpr::var(w[1])));
    }
    for (i, &v) in vars.iter().enumerate() {
        for b in 0..n_bounds {
            atoms.insert(Atom::le(
                LinExpr::var(v),
                LinExpr::constant_int(100 + (i as i64) * 50 + b),
            ));
            atoms.insert(Atom::ge(LinExpr::var(v), LinExpr::constant_int(-b)));
        }
    }
    let eliminate_vars: BTreeSet<Var> = vars[..3].iter().copied().collect();
    c.bench_function("fm_pruned", |bch| bch.iter(|| eliminate(&atoms, &eliminate_vars)));
    c.bench_function("fm_unpruned", |bch| {
        bch.iter(|| eliminate_unpruned(&atoms, &eliminate_vars))
    });
}

criterion_group!(benches, bench_operators, bench_elimination, bench_pruning);

/// Engine-level indexing: the same selection through `exec::execute` with
/// and without a catalog index (the §5 machinery inside the evaluator).
fn bench_index_select(c: &mut Criterion) {
    use cqa::core::plan::Plan;
    use cqa::core::{exec, Catalog};
    let rel = interval_relation(2000);
    let mut plain = Catalog::new();
    plain.register("R", rel.clone());
    let mut indexed = Catalog::new();
    indexed.register("R", rel);
    indexed.build_index("R", &["x", "y"]).unwrap();
    let plan = Plan::scan("R").select(
        Selection::all()
            .cmp_int("x", CmpOp::Ge, 300)
            .cmp_int("x", CmpOp::Le, 340)
            .cmp_int("y", CmpOp::Le, 160),
    );
    c.bench_function("select_2000_scan", |b| {
        b.iter(|| exec::execute(&plan, &plain).unwrap())
    });
    c.bench_function("select_2000_indexed", |b| {
        b.iter(|| exec::execute(&plan, &indexed).unwrap())
    });
}

criterion_group!(index_benches, bench_index_select);
criterion_main!(benches, index_benches);
