//! Step-wise script execution.
//!
//! §3.3: "CQA/CDB queries are broken up into multiple steps … All relation
//! names except for the original ones represent intermediate relations; the
//! last step of the query produces the query output." The runner evaluates
//! each statement (optimizing its plan first), registers the result under
//! the statement's target name, and returns the final result.

use crate::ast::{Script, Statement};
use crate::lex::LangError;
use crate::lower::lower_expr;
use crate::parse::parse_script;
use cqa_core::{exec, optimizer, Catalog, ExecOptions, ExecStats, HRelation};

/// Executes scripts against a catalog, accumulating intermediate results.
pub struct ScriptRunner {
    catalog: Catalog,
    optimize: bool,
    exec_options: ExecOptions,
    stats: ExecStats,
}

impl ScriptRunner {
    /// A runner over the given catalog.
    pub fn new(catalog: Catalog) -> ScriptRunner {
        ScriptRunner {
            catalog,
            optimize: true,
            exec_options: ExecOptions::default(),
            stats: ExecStats::new(),
        }
    }

    /// Disables the optimizer (for tests and ablation benchmarks).
    pub fn without_optimizer(mut self) -> ScriptRunner {
        self.optimize = false;
        self
    }

    /// The execution options queries run with.
    pub fn exec_options(&self) -> &ExecOptions {
        &self.exec_options
    }

    /// Replaces the execution options (thread count, bbox filter,
    /// governor timeout and budgets).
    pub fn set_exec_options(&mut self, opts: ExecOptions) {
        self.exec_options = opts;
    }

    /// Execution statistics accumulated across every query this runner has
    /// run (filter counters, FM peak gauge).
    pub fn exec_stats(&self) -> &ExecStats {
        &self.stats
    }

    /// The underlying catalog (intermediates included).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Runs a script from source text; returns the last statement's result.
    pub fn run(&mut self, source: &str) -> Result<HRelation, LangError> {
        let script = parse_script(source)?;
        self.run_script(&script)
    }

    /// Runs a single-query script with per-node tracing (the engine behind
    /// `\explain analyze` and `\trace`): same lowering, optimization,
    /// execution options, and target registration as [`ScriptRunner::run`],
    /// plus the [`exec::TraceNode`] tree of the run. Multi-statement
    /// scripts and DDL/DML are rejected — a trace describes one plan.
    pub fn run_traced(
        &mut self,
        source: &str,
    ) -> Result<(HRelation, exec::TraceNode), LangError> {
        let script = parse_script(source)?;
        let [stmt] = &script.statements[..] else {
            return Err(LangError::new(1, 1, "trace expects exactly one statement"));
        };
        let Statement::Query { target, expr, line } = stmt else {
            return Err(LangError::new(1, 1, "trace expects a query statement"));
        };
        let plan = lower_expr(expr, *line)?;
        let plan = if self.optimize {
            optimizer::optimize(&plan, &self.catalog)
                .map_err(|e| LangError::new(*line, 1, e.to_string()))?
        } else {
            plan
        };
        let (result, trace) =
            exec::execute_traced_opts(&plan, &self.catalog, &self.exec_options, &self.stats)
                .map_err(|e| LangError::new(*line, 1, e.to_string()))?;
        self.catalog.register(target.clone(), result.clone());
        Ok((result, trace))
    }

    /// Runs a parsed script.
    pub fn run_script(&mut self, script: &Script) -> Result<HRelation, LangError> {
        let mut last: Option<HRelation> = None;
        for stmt in &script.statements {
            match stmt {
                Statement::Query { target, expr, line } => {
                    let plan = lower_expr(expr, *line)?;
                    let plan = if self.optimize {
                        optimizer::optimize(&plan, &self.catalog)
                            .map_err(|e| LangError::new(*line, 1, e.to_string()))?
                    } else {
                        plan
                    };
                    // The `?` below is the all-or-nothing anchor: on any
                    // execution error (including governor cancellation) the
                    // target is never registered, so the catalog is exactly
                    // as if the statement had not run.
                    let result =
                        exec::execute_opts(&plan, &self.catalog, &self.exec_options, &self.stats)
                            .map_err(|e| LangError::new(*line, 1, e.to_string()))?;
                    self.catalog.register(target.clone(), result.clone());
                    last = Some(result);
                }
                Statement::CreateRelation { name, schema, line } => {
                    if self.catalog.contains(name) {
                        return Err(LangError::new(
                            *line,
                            1,
                            format!("relation {:?} already exists (drop it first)", name),
                        ));
                    }
                    let rel = HRelation::new(schema.clone());
                    self.catalog.register(name.clone(), rel.clone());
                    last = Some(rel);
                }
                Statement::Insert { name, conds, line } => {
                    let rel = self
                        .catalog
                        .get(name)
                        .map_err(|e| LangError::new(*line, 1, e.to_string()))?;
                    let tuple =
                        crate::schema_def::build_tuple(rel.schema(), conds, *line)?;
                    let mut updated = rel.clone();
                    updated.insert(tuple);
                    self.catalog.register(name.clone(), updated.clone());
                    last = Some(updated);
                }
                Statement::Drop { name, line } => {
                    if let Some(rel) = self.catalog.remove(name) {
                        last = Some(rel);
                    } else if let Some(spatial) = self.catalog.remove_spatial(name) {
                        // Return the dropped features in constraint form.
                        let rel = cqa_core::spatial_bridge::spatial_to_hrelation(&spatial)
                            .map_err(|e| LangError::new(*line, 1, e.to_string()))?;
                        last = Some(rel);
                    } else {
                        return Err(LangError::new(
                            *line,
                            1,
                            format!("unknown relation {:?}", name),
                        ));
                    }
                }
            }
        }
        last.ok_or_else(|| LangError::new(1, 1, "empty script"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_def::parse_cdb;
    use cqa_core::Value;

    fn runner() -> ScriptRunner {
        let mut cat = Catalog::new();
        parse_cdb(
            r#"
relation Land {
  landId: string relational;
  x: rational constraint;
  y: rational constraint;
}
tuple Land { landId = "A"; 0 <= x; x <= 2; 3 <= y; y <= 6 }
tuple Land { landId = "B"; 4 <= x; x <= 6; 0 <= y; y <= 2 }

spatial Cities {
  feature "c1" point (1, 4);
  feature "c2" point (100, 100);
}
spatial Wells {
  feature "w" point (0, 4);
}
"#,
        )
        .unwrap()
        .load_into(&mut cat);
        ScriptRunner::new(cat)
    }

    #[test]
    fn select_project_pipeline() {
        let mut r = runner();
        let out = r
            .run("R0 = select x >= 1, x <= 5 from Land\nR1 = project R0 on landId\n")
            .unwrap();
        assert_eq!(out.len(), 2, "both parcels intersect x ∈ [1,5]");
        // Intermediate steps are registered.
        assert!(r.catalog().get("R0").is_ok());
        assert!(r.catalog().get("R1").is_ok());
    }

    #[test]
    fn steps_feed_steps() {
        let mut r = runner();
        let out = r
            .run(
                "R0 = select landId = \"A\" from Land\n\
                 R1 = rename x to t in R0\n\
                 R2 = project R1 on landId, t\n\
                 R3 = select t >= 1 from R2\n",
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out
            .contains_point(&[Value::str("A"), Value::int(2)])
            .unwrap());
    }

    #[test]
    fn spatial_script() {
        let mut r = runner();
        let out = r.run("R = bufferjoin Wells and Cities distance 1\n").unwrap();
        assert_eq!(out.len(), 1);
        assert!(out
            .contains_point(&[Value::str("w"), Value::str("c1")])
            .unwrap());
        let out = r.run("K = knearest Wells and Cities k 1\n").unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn unsafe_distance_rejected_with_position() {
        let mut r = runner();
        let err = r.run("D = distance Wells and Cities\n").unwrap_err();
        assert!(err.msg.contains("unsafe") || err.msg.contains("BufferJoin"), "{}", err);
        assert_eq!(err.line, 1);
    }

    #[test]
    fn optimizer_does_not_change_results() {
        let script = "R0 = join Land and Land\nR1 = select x >= 1, landId = \"A\" from R0\nR2 = project R1 on landId\n";
        let mut with = runner();
        let mut without = runner().without_optimizer();
        assert_eq!(with.run(script).unwrap(), without.run(script).unwrap());
    }

    #[test]
    fn ddl_and_dml_statements() {
        let mut r = runner();
        let out = r
            .run(
                "create relation Notes { who: string relational; score: rational constraint }
                 insert into Notes { who = \"ann\"; score >= 0; score <= 10 }
                 insert into Notes { who = \"bob\"; score = 7 }
                 High = select score >= 7 from Notes
",
            )
            .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains_point(&[Value::str("ann"), Value::int(9)]).unwrap());
        assert!(out.contains_point(&[Value::str("bob"), Value::int(7)]).unwrap());
        assert!(!out.contains_point(&[Value::str("bob"), Value::int(8)]).unwrap());
        // Drop removes the base relation; querying it afterwards errors.
        let dropped = r.run("drop Notes\n").unwrap();
        assert_eq!(dropped.len(), 2, "drop returns the removed relation");
        assert!(r.run("X = select score >= 0 from Notes\n").is_err());
        // Drop-then-create works; duplicate create is rejected.
        r.run("create relation Notes { who: string relational }
").unwrap();
        let err = r.run("create relation Notes { who: string relational }
").unwrap_err();
        assert!(err.msg.contains("already exists"), "{}", err);
        // Insert into an unknown relation errors with position.
        let err = r.run("insert into Ghost { x = 1 }
").unwrap_err();
        assert!(err.msg.contains("Ghost"));
        // Insert violating the schema errors: `who = 3` is neither a valid
        // string assignment nor a constraint over a constraint attribute.
        let err = r.run("insert into Notes { who = 3 }\n").unwrap_err();
        assert!(err.msg.contains("not a constraint attribute"), "{}", err);
    }

    #[test]
    fn drop_covers_spatial_relations() {
        let mut r = runner();
        let out = r.run("drop Cities
").unwrap();
        assert_eq!(out.len(), 2, "two city features returned in constraint form");
        assert!(r.catalog().get_spatial("Cities").is_err());
        assert!(r.run("drop Cities
").is_err(), "already gone");
    }

    #[test]
    fn drop_statement_parses_standalone() {
        let mut r = runner();
        let out = r.run("D = drop Land
");
        // `D = drop Land` is a *query* statement with unknown operator.
        assert!(out.is_err());
        // The proper form:
        let dropped = r.run("drop Land
").unwrap();
        assert_eq!(dropped.len(), 2);
        assert!(r.catalog().get("Land").is_err());
    }

    #[test]
    fn run_traced_matches_run_and_registers() {
        let script = "R0 = select x >= 1, x <= 5 from Land\n";
        let mut plain = runner();
        let expected = plain.run(script).unwrap();
        let mut traced = runner();
        let (out, trace) = traced.run_traced(script).unwrap();
        assert_eq!(out, expected);
        assert!(trace.label.starts_with("Select"), "{}", trace.label);
        assert!(traced.catalog().get("R0").is_ok(), "target registered");
        // Only single query statements are traceable.
        assert!(traced.run_traced("A = select x >= 1 from Land\nB = project A on landId\n").is_err());
        assert!(traced.run_traced("drop Land\n").is_err());
    }

    #[test]
    fn unknown_relation_reports_line() {
        let mut r = runner();
        let err = r.run("A = project Land on landId\nB = join A and Ghost\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("Ghost"));
    }
}
