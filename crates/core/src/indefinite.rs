//! Indefinite (incomplete) information — the *other* reading of
//! constraints.
//!
//! §3.1 of the paper: "Incomplete information can be specified by
//! constraints … The semantics is **disjunctive** rather than conjunctive;
//! **one** of the values satisfying the constraints is correct, rather
//! than all of them, as for constraint tuples." (citing Koubarakis, the
//! paper's \[20\]).
//!
//! An [`IndefiniteRelation`] holds tuples whose constraint part describes
//! the *candidate values* of an under-specified record — "the meeting is
//! some time between 2 and 4" — rather than an extended object. Queries
//! therefore have two answers:
//!
//! * the **possible** answer: tuples for which *some* candidate value
//!   satisfies the condition (`φ ∧ ξ` satisfiable);
//! * the **certain** answer: tuples for which *every* candidate value does
//!   (`φ ⊨ ξ`, checked by exact entailment).
//!
//! Certain ⊆ possible always; they coincide exactly when the tuple is
//! fully definite (a single point). Both are computed with the same
//! machinery the conjunctive model uses — satisfiability and entailment
//! over the linear theory — which is the point: the framework carries the
//! second semantics for free.

use crate::error::{CoreError, Result};
use crate::ops::select::{CmpOp, Predicate, Selection};
use crate::relation::HRelation;
use crate::schema::{AttrKind, Schema};
use crate::tuple::Tuple;
use crate::value::Value;
use cqa_constraints::{Atom, Conjunction, LinExpr, Rel};

/// A relation under the disjunctive (indefinite) reading.
///
/// Structurally identical to [`HRelation`]; the wrapper fixes the
/// *interpretation* of each tuple's constraint part as a set of candidate
/// worlds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndefiniteRelation {
    inner: HRelation,
}

impl IndefiniteRelation {
    /// Wraps a heterogeneous relation in the indefinite reading.
    pub fn new(inner: HRelation) -> IndefiniteRelation {
        IndefiniteRelation { inner }
    }

    /// The underlying relation (conjunctive reading).
    pub fn as_definite(&self) -> &HRelation {
        &self.inner
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    /// Number of (indefinite) tuples.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The **possible** answer to `ς_ξ`: tuples some candidate world of
    /// which satisfies the selection. This coincides with the conjunctive
    /// model's select (satisfiability of the conjunction), with the
    /// residual narrowing the candidates that remain possible.
    pub fn possible_select(&self, selection: &Selection) -> Result<IndefiniteRelation> {
        Ok(IndefiniteRelation::new(crate::ops::select(&self.inner, selection)?))
    }

    /// The **certain** answer to `ς_ξ`: tuples every candidate world of
    /// which satisfies the selection.
    pub fn certain_select(&self, selection: &Selection) -> Result<IndefiniteRelation> {
        crate::ops::select::validate(self.schema(), selection)?;
        let mut out = HRelation::new(self.schema().clone());
        'tuples: for tuple in self.inner.tuples() {
            if !tuple.is_satisfiable() {
                continue; // no candidate worlds at all
            }
            for pred in selection.predicates() {
                match self.predicate_certain(tuple, pred)? {
                    Certainty::Always => {}
                    Certainty::Sometimes | Certainty::Never => continue 'tuples,
                }
            }
            out.insert(tuple.clone());
        }
        Ok(IndefiniteRelation::new(out))
    }

    /// How a predicate relates to a tuple's candidate worlds.
    fn predicate_certain(&self, tuple: &Tuple, pred: &Predicate) -> Result<Certainty> {
        let schema = self.schema();
        match pred {
            Predicate::Str { attr, op, value } => {
                let idx = schema.position(attr)?;
                let held = match tuple.value(idx) {
                    None => return Ok(Certainty::Never), // null: fails in every world
                    Some(Value::Str(s)) => s == value,
                    Some(_) => unreachable!("validated"),
                };
                let pass = match op {
                    CmpOp::Eq => held,
                    CmpOp::Ne => !held,
                    _ => unreachable!("validated"),
                };
                Ok(if pass { Certainty::Always } else { Certainty::Never })
            }
            Predicate::Linear { terms, constant, op } => {
                // Build the atom with relational values substituted, as in
                // the ordinary select.
                let mut expr = LinExpr::constant(constant.clone());
                for (name, coeff) in terms {
                    let idx = schema.position(name)?;
                    match schema.attrs()[idx].kind {
                        AttrKind::Constraint => expr.add_term(schema.var(idx), coeff.clone()),
                        AttrKind::Relational => match tuple.value(idx) {
                            None => return Ok(Certainty::Never),
                            Some(Value::Rat(v)) => {
                                let shifted = expr.constant_term() + &(coeff * v);
                                expr.set_constant(shifted);
                            }
                            Some(_) => unreachable!("validated"),
                        },
                    }
                }
                let atoms = match op {
                    CmpOp::Eq => vec![Atom::new(expr, Rel::Eq)],
                    CmpOp::Le => vec![Atom::new(expr, Rel::Le)],
                    CmpOp::Lt => vec![Atom::new(expr, Rel::Lt)],
                    CmpOp::Ge => vec![Atom::new(-&expr, Rel::Le)],
                    CmpOp::Gt => vec![Atom::new(-&expr, Rel::Lt)],
                    CmpOp::Ne => {
                        if !expr.is_constant() {
                            return Err(CoreError::BadPredicate(
                                "<> over constraint attributes is not a linear constraint"
                                    .to_string(),
                            ));
                        }
                        return Ok(if expr.constant_term().is_zero() {
                            Certainty::Never
                        } else {
                            Certainty::Always
                        });
                    }
                };
                let atom = &atoms[0];
                if let Some(truth) = atom.ground_truth() {
                    return Ok(if truth { Certainty::Always } else { Certainty::Never });
                }
                let phi: &Conjunction = tuple.constraint();
                if phi.implies_atom(atom) {
                    Ok(Certainty::Always)
                } else {
                    let mut with = phi.clone();
                    with.add(atom.clone());
                    Ok(if with.is_satisfiable() {
                        Certainty::Sometimes
                    } else {
                        Certainty::Never
                    })
                }
            }
        }
    }

    /// Whether the point is **certainly** in the relation: some tuple's
    /// candidate set is exactly this point (its only possible world).
    pub fn certainly_contains(&self, point: &[Value]) -> Result<bool> {
        for tuple in self.inner.tuples() {
            if !tuple.contains_point(self.schema(), point)? {
                continue;
            }
            // The point is a candidate world; certain iff it is the only
            // one: pinning every constraint attribute to the point must be
            // *entailed* by φ.
            let mut certain = true;
            for i in self.schema().constraint_positions() {
                let v = point[i].as_rat().ok_or(CoreError::TypeMismatch {
                    attribute: self.schema().attrs()[i].name.clone(),
                    expected: "rational",
                })?;
                let atom = Atom::var_eq_const(self.schema().var(i), v.clone());
                if !tuple.constraint().implies_atom(&atom) {
                    certain = false;
                    break;
                }
            }
            if certain {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Whether the point is **possibly** in the relation (some candidate
    /// world of some tuple is this point) — the conjunctive membership.
    pub fn possibly_contains(&self, point: &[Value]) -> Result<bool> {
        self.inner.contains_point(point)
    }
}

/// Three-valued status of a predicate over a tuple's candidate worlds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Certainty {
    /// Holds in every candidate world.
    Always,
    /// Holds in some but not all candidate worlds.
    Sometimes,
    /// Holds in no candidate world.
    Never,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrDef;
    use cqa_num::Rat;

    /// Meetings whose start time is under-specified.
    fn meetings() -> IndefiniteRelation {
        let schema =
            Schema::new(vec![AttrDef::str_rel("what"), AttrDef::rat_con("start")]).unwrap();
        let mut r = HRelation::new(schema);
        // "standup is at 9" — fully definite.
        r.insert_with(|b| b.set("what", "standup").pin("start", Rat::from_int(9))).unwrap();
        // "review is some time between 14 and 16".
        r.insert_with(|b| b.set("what", "review").range("start", 14, 16)).unwrap();
        // "retro is some time after 15" (unbounded candidates).
        r.insert_with(|b| {
            use cqa_constraints::{Atom, LinExpr, Var};
            b.set("what", "retro")
                .atom(Atom::ge(LinExpr::var(Var(1)), LinExpr::constant_int(15)))
        })
        .unwrap();
        IndefiniteRelation::new(r)
    }

    fn names(r: &IndefiniteRelation) -> Vec<&str> {
        let mut out: Vec<&str> = r
            .as_definite()
            .tuples()
            .iter()
            .filter_map(|t| t.value(0).and_then(|v| v.as_str()))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn possible_vs_certain_select() {
        let r = meetings();
        let afternoon = Selection::all().cmp_int("start", CmpOp::Ge, 14);
        // Possibly in the afternoon: review (could be 14–16) and retro.
        let possible = r.possible_select(&afternoon).unwrap();
        assert_eq!(names(&possible), vec!["retro", "review"]);
        // Certainly in the afternoon: both too — review is within [14,16],
        // retro after 15; the standup at 9 is certainly not.
        let certain = r.certain_select(&afternoon).unwrap();
        assert_eq!(names(&certain), vec!["retro", "review"]);

        let after_15 = Selection::all().cmp_int("start", CmpOp::Gt, 15);
        // Review might be at 15:30 (possible) but might be at 14 (not
        // certain); retro's candidates include exactly 15, so Gt is not
        // certain either.
        assert_eq!(names(&r.possible_select(&after_15).unwrap()), vec!["retro", "review"]);
        assert_eq!(names(&r.certain_select(&after_15).unwrap()), Vec::<&str>::new());

        let at_9 = Selection::all().cmp_int("start", CmpOp::Eq, 9);
        // Only the definite standup is certain at 9.
        assert_eq!(names(&r.certain_select(&at_9).unwrap()), vec!["standup"]);
    }

    #[test]
    fn certain_is_subset_of_possible() {
        let r = meetings();
        for threshold in [8, 10, 14, 15, 16, 17] {
            for op in [CmpOp::Le, CmpOp::Lt, CmpOp::Ge, CmpOp::Gt, CmpOp::Eq] {
                let sel = Selection::all().cmp_int("start", op, threshold);
                let certain = r.certain_select(&sel).unwrap();
                let possible = r.possible_select(&sel).unwrap();
                for name in names(&certain) {
                    assert!(
                        names(&possible).contains(&name),
                        "{:?} certain but not possible for {} {}",
                        name,
                        op,
                        threshold
                    );
                }
            }
        }
    }

    #[test]
    fn membership_readings() {
        let r = meetings();
        let review_at_15 = [Value::str("review"), Value::int(15)];
        assert!(r.possibly_contains(&review_at_15).unwrap());
        assert!(!r.certainly_contains(&review_at_15).unwrap(), "15 is one of many candidates");
        let standup_at_9 = [Value::str("standup"), Value::int(9)];
        assert!(r.possibly_contains(&standup_at_9).unwrap());
        assert!(r.certainly_contains(&standup_at_9).unwrap(), "the only candidate");
        let standup_at_10 = [Value::str("standup"), Value::int(10)];
        assert!(!r.possibly_contains(&standup_at_10).unwrap());
    }

    #[test]
    fn string_and_null_predicates() {
        let schema =
            Schema::new(vec![AttrDef::str_rel("who"), AttrDef::rat_con("age")]).unwrap();
        let mut rel = HRelation::new(schema);
        rel.insert_with(|b| b.set("who", "ann").range("age", 30, 40)).unwrap();
        rel.insert_with(|b| b.range("age", 30, 40)).unwrap(); // null who
        let r = IndefiniteRelation::new(rel);
        let sel = Selection::all().str_eq("who", "ann");
        assert_eq!(r.certain_select(&sel).unwrap().len(), 1);
        assert_eq!(r.possible_select(&sel).unwrap().len(), 1, "null never matches");
        // Unsatisfiable candidates: no worlds, so never certain.
        let schema = Schema::new(vec![AttrDef::rat_con("x")]).unwrap();
        let mut rel = HRelation::new(schema);
        rel.insert_with(|b| b.range("x", 5, 2)).unwrap();
        let r = IndefiniteRelation::new(rel);
        let sel = Selection::all().cmp_int("x", CmpOp::Ge, 0);
        assert!(r.certain_select(&sel).unwrap().is_empty());
    }
}
