//! Prometheus text-format exposition (version 0.0.4) of a metrics
//! [`Snapshot`] — std-only, no client library.
//!
//! Mapping:
//! * registry names (`exec.filter.checked`) become metric names with
//!   every non-`[a-zA-Z0-9_]` byte replaced by `_` and a `cqa_` prefix
//!   (`cqa_exec_filter_checked`);
//! * counters render as `counter`, high-water-mark gauges as `gauge`;
//! * histograms render the full cumulative series: one
//!   `_bucket{le="…"}` line per bucket (inclusive integer upper bounds —
//!   exact for the power-of-two buckets — plus `+Inf`), then `_sum` and
//!   `_count`.
//!
//! Output order is the snapshot's (name-sorted), so two renders of the
//! same registry state are byte-identical — that is what lets verify.sh
//! diff the shell's `\metrics export` against `GET /metrics`.
//! [`render_canonical`] additionally skips timing histograms (wall-clock
//! sums), producing a golden-diffable exporter document.

use crate::metrics::{bucket_upper_bound, MetricValue, Snapshot, HISTOGRAM_BUCKETS};
use std::fmt::Write as _;

/// Rewrites a registry name into a Prometheus-legal metric name.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("cqa_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn write_histogram(out: &mut String, pname: &str, buckets: &[u64; HISTOGRAM_BUCKETS], sum: u64, count: u64) {
    let _ = writeln!(out, "# TYPE {} histogram", pname);
    let mut cum = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        cum += b;
        if i == HISTOGRAM_BUCKETS - 1 {
            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", pname, cum);
        } else {
            let _ = writeln!(out, "{}_bucket{{le=\"{}\"}} {}", pname, bucket_upper_bound(i), cum);
        }
    }
    let _ = writeln!(out, "{}_sum {}", pname, sum);
    let _ = writeln!(out, "{}_count {}", pname, count);
}

fn render_inner(snap: &Snapshot, skip_timing: bool) -> String {
    let mut out = String::new();
    for (name, v) in snap.entries() {
        let pname = sanitize(name);
        match v {
            MetricValue::Counter(n) => {
                let _ = writeln!(out, "# TYPE {} counter", pname);
                let _ = writeln!(out, "{} {}", pname, n);
            }
            MetricValue::Gauge(n) => {
                let _ = writeln!(out, "# TYPE {} gauge", pname);
                let _ = writeln!(out, "{} {}", pname, n);
            }
            MetricValue::Histogram { count, sum, buckets, timing } => {
                if *timing && skip_timing {
                    continue;
                }
                write_histogram(&mut out, &pname, buckets, *sum, *count);
            }
        }
    }
    out
}

/// Renders the full snapshot, timing histograms included. Deterministic
/// for a fixed registry state (name-sorted, no timestamps).
pub fn render(snap: &Snapshot) -> String {
    render_inner(snap, false)
}

/// Renders the snapshot minus timing histograms, i.e. only series that
/// are pure functions of the workload. This is the golden-snapshot form.
pub fn render_canonical(snap: &Snapshot) -> String {
    render_inner(snap, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize("exec.filter.checked"), "cqa_exec_filter_checked");
        assert_eq!(sanitize("a-b c"), "cqa_a_b_c");
    }

    // One test: the exporter reads the process-global registry, so
    // interleaving with other registry tests would race on values.
    #[test]
    fn renders_all_kinds_cumulatively() {
        metrics::counter("test.prom.hits").add(3);
        metrics::gauge("test.prom.depth").record_max(9);
        let h = metrics::histogram("test.prom.rows");
        h.record(1); // bucket 1 (le 1)
        h.record(5); // bucket 3 (le 7)
        h.record(5);
        metrics::counter("test.prom.zero"); // registered, never incremented
        metrics::timing_histogram("test.prom.lat_us").record(100);

        let snap = metrics::snapshot();
        let text = render(&snap);

        assert!(text.contains("# TYPE cqa_test_prom_hits counter\ncqa_test_prom_hits 3\n"));
        assert!(text.contains("# TYPE cqa_test_prom_depth gauge\ncqa_test_prom_depth 9\n"));
        // Zero-valued series still render (scrapers need the series to
        // exist to rate() it later).
        assert!(text.contains("cqa_test_prom_zero 0\n"));
        // Cumulative buckets: le=1 sees 1 obs, le=7 sees all 3.
        assert!(text.contains("cqa_test_prom_rows_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("cqa_test_prom_rows_bucket{le=\"7\"} 3\n"));
        assert!(text.contains("cqa_test_prom_rows_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("cqa_test_prom_rows_sum 11\n"));
        assert!(text.contains("cqa_test_prom_rows_count 3\n"));
        // Empty histograms render a full all-zero series.
        let empty = metrics::histogram("test.prom.empty");
        assert_eq!(empty.count(), 0);
        let text = render(&metrics::snapshot());
        assert!(text.contains("cqa_test_prom_empty_bucket{le=\"0\"} 0\n"));
        assert!(text.contains("cqa_test_prom_empty_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("cqa_test_prom_empty_count 0\n"));

        // Timing histograms appear in the full render but not the
        // canonical one; deterministic series appear in both.
        assert!(text.contains("cqa_test_prom_lat_us_count 1\n"));
        let canon = render_canonical(&metrics::snapshot());
        assert!(!canon.contains("cqa_test_prom_lat_us"));
        assert!(canon.contains("cqa_test_prom_rows_count 3\n"));

        // Determinism: rendering the same snapshot twice is byte-equal.
        let snap = metrics::snapshot();
        assert_eq!(render(&snap), render(&snap));
    }
}
