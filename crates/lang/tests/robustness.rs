//! Robustness properties of the surface syntax: no input — however
//! malformed — may panic the lexer, the parser, or the `.cdb` loader;
//! they must return positioned errors instead. Also: everything the
//! system prints for a relation's schema round-trips back through the
//! loader.

use cqa_lang::parse::parse_script;
use cqa_lang::schema_def::parse_cdb;

// Property suite: compiled only with `--features proptest` (see
// third_party/README.md).
#[cfg(feature = "proptest")]
mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Arbitrary unicode soup: never panic.
        #[test]
        fn parser_never_panics(input in "\\PC{0,120}") {
            let _ = parse_script(&input);
            let _ = parse_cdb(&input);
        }

        /// Statement-shaped soup: tokens that look like the grammar.
        #[test]
        fn statement_shaped_soup_never_panics(
            target in "[A-Za-z][A-Za-z0-9]{0,6}",
            op in prop::sample::select(vec![
                "select", "project", "join", "union", "diff", "rename",
                "bufferjoin", "knearest", "distance", "spatial", "garbage",
            ]),
            junk in "[A-Za-z0-9 ,<>=+*._\"()-]{0,60}",
        ) {
            let line = format!("{} = {} {}\n", target, op, junk);
            let _ = parse_script(&line);
        }

        /// Cdb-shaped soup.
        #[test]
        fn cdb_shaped_soup_never_panics(
            kw in prop::sample::select(vec!["relation", "tuple", "spatial"]),
            name in "[A-Za-z][A-Za-z0-9]{0,6}",
            body in "[A-Za-z0-9 ;:,<>=+*._\"()-]{0,80}",
        ) {
            let text = format!("{} {} {{ {} }}\n", kw, name, body);
            let _ = parse_cdb(&text);
        }

        /// Numbers with every sign/fraction/decimal shape parse or error
        /// cleanly inside conditions.
        #[test]
        fn numeric_condition_shapes(n in -9999i64..9999, d in 1i64..999, frac in 0u32..1_000_000u32) {
            for lit in [
                format!("{}", n),
                format!("{}/{}", n, d),
                format!("{}.{:06}", n.abs(), frac),
                format!("-{}.{:06}", n.abs(), frac),
            ] {
                let src = format!("R = select x >= {} from T\n", lit);
                prop_assert!(parse_script(&src).is_ok(), "literal {:?}", lit);
            }
        }
    }
}


/// Deterministic torture inputs that previously looked risky.
#[test]
fn torture_inputs() {
    for input in [
        "",
        "\n\n\n",
        "#only a comment",
        "R =",
        "= select x from T",
        "R = select from T",
        "R = select x >= from T",
        "R = select x >= 1 from",
        "R = project T on",
        "R = rename a to in T",
        "R = knearest A and B k -3",
        "R = knearest A and B k 999999999999999999999999",
        "relation { }",
        "relation R { x: }",
        "relation R { x: rational }",
        "tuple R { }",
        "spatial S { feature }",
        "spatial S { feature \"p\" point }",
        "spatial S { feature \"p\" polygon (0,0) (1,1) }",
        "R = select x >= 1/0 from T",
        "\"unterminated",
        "R = select \u{1F300} >= 1 from T",
        "{}{}{}))((",
    ] {
        let _ = parse_script(input);
        let _ = parse_cdb(input);
    }
}
