//! Cheap-filter boxes: conservative `f64` interval bounds per
//! [`Conjunction`], for filter-first evaluation.
//!
//! The paper's multi-step processing idea — approximate geometry first,
//! exact geometry only for survivors — applied to constraint tuples.
//! [`Conjunction::quick_box`] derives, from the *single-variable* atoms
//! only, an axis-aligned box that **encloses** the conjunction's point
//! set. Deriving it is O(atoms) with one small rational division per
//! bound — orders of magnitude cheaper than Fourier–Motzkin — and two
//! boxes that do not overlap prove the two conjunctions jointly
//! unsatisfiable, so the exact check can be skipped.
//!
//! Soundness is one-directional by design:
//!
//! * every bound is widened **outward** by a relative epsilon larger
//!   than any `Rat → f64` rounding error, so the float box always
//!   contains the exact rational box;
//! * strict bounds are treated as closed (again: outward);
//! * multi-variable atoms are ignored (they can only shrink the exact
//!   set, never grow it);
//! * a bound whose `f64` image is non-finite is discarded (unbounded).
//!
//! Hence `quick_disjoint(a, b) == true` **implies** `a ∧ b` is
//! unsatisfiable, while `false` says nothing — exactly the contract a
//! filter needs. The property suite checks the implication against the
//! exact solver.

use crate::{Conjunction, Rel, Var};

/// Outward widening factor; `Rat::to_f64` is within a few ulps
/// (relative error ≤ ~2⁻⁵⁰), so a relative 1e-9 margin dominates it.
const WIDEN_EPS: f64 = 1e-9;

fn widen_down(x: f64) -> f64 {
    x - WIDEN_EPS * (1.0 + x.abs())
}

fn widen_up(x: f64) -> f64 {
    x + WIDEN_EPS * (1.0 + x.abs())
}

/// A conservative per-variable `f64` bounding box for a conjunction's
/// point set over variables `Var(0) .. Var(arity)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuickBox {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl QuickBox {
    /// The box containing no points at all (used for trivially false
    /// conjunctions).
    pub fn empty(arity: usize) -> QuickBox {
        QuickBox { lo: vec![f64::INFINITY; arity], hi: vec![f64::NEG_INFINITY; arity] }
    }

    /// The unbounded box over `arity` variables.
    pub fn full(arity: usize) -> QuickBox {
        QuickBox { lo: vec![f64::NEG_INFINITY; arity], hi: vec![f64::INFINITY; arity] }
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.lo.len()
    }

    /// The (widened) bounds of one dimension.
    pub fn dim(&self, d: usize) -> (f64, f64) {
        (self.lo[d], self.hi[d])
    }

    /// `true` when some dimension admits no value — which proves the
    /// underlying conjunction unsatisfiable (the float bounds are outward
    /// approximations of exact rational bounds on a single variable).
    pub fn is_known_empty(&self) -> bool {
        self.lo.iter().zip(&self.hi).any(|(lo, hi)| lo > hi)
    }

    /// `true` when the boxes provably share no point: some dimension's
    /// intervals are disjoint. Dimensions beyond the shorter box are
    /// treated as unbounded.
    pub fn disjoint(&self, other: &QuickBox) -> bool {
        if self.is_known_empty() || other.is_known_empty() {
            return true;
        }
        let dims = self.arity().min(other.arity());
        (0..dims).any(|d| self.hi[d] < other.lo[d] || other.hi[d] < self.lo[d])
    }
}

impl Conjunction {
    /// Computes the conservative [`QuickBox`] over `Var(0) .. Var(arity)`.
    ///
    /// Cost: one pass over the atoms; one small rational division per
    /// single-variable atom. No Fourier–Motzkin.
    pub fn quick_box(&self, arity: usize) -> QuickBox {
        let mut bx = QuickBox::full(arity);
        for atom in self.atoms() {
            if atom.is_trivially_false() {
                return QuickBox::empty(arity);
            }
            let expr = atom.expr();
            if expr.arity() != 1 {
                continue; // multi-variable: ignoring it only over-approximates
            }
            let (var, coeff) = expr.terms().next().expect("arity-1 expression has a term");
            let Var(v) = var;
            let d = v as usize;
            if d >= arity {
                continue;
            }
            // `c·v + k rel 0`  ⇔  `v rel' -k/c` (rel' flips when c < 0).
            let bound = -(&(expr.constant_term() / coeff));
            let bf = bound.to_f64();
            if !bf.is_finite() {
                continue; // magnitude beyond f64: leave the side unbounded
            }
            let upper_side = coeff.is_positive();
            match atom.rel() {
                Rel::Eq => {
                    bx.lo[d] = bx.lo[d].max(widen_down(bf));
                    bx.hi[d] = bx.hi[d].min(widen_up(bf));
                }
                // Strictness is dropped: closed bounds are outward.
                Rel::Le | Rel::Lt => {
                    if upper_side {
                        bx.hi[d] = bx.hi[d].min(widen_up(bf));
                    } else {
                        bx.lo[d] = bx.lo[d].max(widen_down(bf));
                    }
                }
            }
        }
        bx
    }

    /// `true` only when `self ∧ other` is provably unsatisfiable by the
    /// cheap box test over `Var(0) .. Var(arity)`; `false` is
    /// inconclusive and the exact check must run.
    pub fn quick_disjoint(&self, other: &Conjunction, arity: usize) -> bool {
        self.quick_box(arity).disjoint(&other.quick_box(arity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atom, LinExpr};
    use cqa_num::Rat;

    const X: Var = Var(0);
    const Y: Var = Var(1);

    fn range_conj(v: Var, lo: i64, hi: i64) -> Conjunction {
        Conjunction::from_atoms([
            Atom::ge(LinExpr::var(v), LinExpr::constant_int(lo)),
            Atom::le(LinExpr::var(v), LinExpr::constant_int(hi)),
        ])
    }

    #[test]
    fn boxes_enclose_ranges() {
        let c = range_conj(X, 2, 5);
        let bx = c.quick_box(2);
        let (lo, hi) = bx.dim(0);
        assert!(lo <= 2.0 && 2.0 - lo < 1e-6);
        assert!(hi >= 5.0 && hi - 5.0 < 1e-6);
        assert_eq!(bx.dim(1), (f64::NEG_INFINITY, f64::INFINITY));
    }

    #[test]
    fn disjoint_ranges_are_detected() {
        let a = range_conj(X, 0, 10);
        let b = range_conj(X, 20, 30);
        assert!(a.quick_disjoint(&b, 1));
        assert!(b.quick_disjoint(&a, 1));
        assert!(!a.quick_box(1).disjoint(&a.quick_box(1)));
    }

    #[test]
    fn touching_ranges_are_not_disjoint() {
        // x ≤ 5 meets x ≥ 5 at a point: the filter must NOT reject.
        let a = range_conj(X, 0, 5);
        let b = range_conj(X, 5, 9);
        assert!(!a.quick_disjoint(&b, 1));
        // Strict versions still must not reject (strictness is dropped).
        let sa = Conjunction::from_atoms([Atom::lt(
            LinExpr::var(X),
            LinExpr::constant_int(5),
        )]);
        let sb = Conjunction::from_atoms([Atom::gt(
            LinExpr::var(X),
            LinExpr::constant_int(5),
        )]);
        assert!(!sa.quick_disjoint(&sb, 1));
    }

    #[test]
    fn multi_variable_atoms_are_conservative() {
        // x + y ≤ 0 puts no box bound on either variable.
        let c = Conjunction::from_atoms([Atom::le(
            LinExpr::from_terms([(X, Rat::one()), (Y, Rat::one())], Rat::zero()),
            LinExpr::zero(),
        )]);
        let bx = c.quick_box(2);
        assert_eq!(bx.dim(0), (f64::NEG_INFINITY, f64::INFINITY));
        assert_eq!(bx.dim(1), (f64::NEG_INFINITY, f64::INFINITY));
    }

    #[test]
    fn trivially_false_is_empty() {
        let mut c = Conjunction::tru();
        c.add(Atom::falsum());
        assert!(c.quick_box(3).is_known_empty());
        assert!(c.quick_disjoint(&Conjunction::tru(), 3));
    }

    #[test]
    fn conflicting_bounds_make_empty_box() {
        let c = Conjunction::from_atoms([
            Atom::ge(LinExpr::var(X), LinExpr::constant_int(10)),
            Atom::le(LinExpr::var(X), LinExpr::constant_int(1)),
        ]);
        assert!(c.quick_box(1).is_known_empty());
        assert!(!c.is_satisfiable());
    }

    #[test]
    fn rational_bounds_respect_widening() {
        // x = 1/3: the box must contain the exact value despite f64
        // rounding on either side.
        let third = Rat::from_pair(1, 3);
        let c = Conjunction::from_atoms([Atom::var_eq_const(X, third.clone())]);
        let (lo, hi) = c.quick_box(1).dim(0);
        let f = third.to_f64();
        assert!(lo < f && f < hi);
    }

    #[test]
    fn eq_atoms_bound_both_sides() {
        let a = Conjunction::from_atoms([Atom::var_eq_const(X, Rat::from_int(4))]);
        let b = range_conj(X, 6, 8);
        assert!(a.quick_disjoint(&b, 1));
        let c = range_conj(X, 3, 5);
        assert!(!a.quick_disjoint(&c, 1));
    }
}
