//! Error type of the query layer.

use std::fmt;

/// Errors raised by schema validation, operator application, and plan
/// evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Duplicate attribute name in a schema.
    DuplicateAttribute(String),
    /// A constraint attribute with a non-rational type.
    NonRationalConstraintAttribute(String),
    /// Attribute not present in a schema.
    UnknownAttribute(String),
    /// Relation not present in the catalog.
    UnknownRelation(String),
    /// Two schemas were required to be identical (union, difference).
    SchemaMismatch(String),
    /// A shared join attribute whose C/R flags disagree.
    KindMismatch(String),
    /// A value of the wrong type for an attribute.
    TypeMismatch { attribute: String, expected: &'static str },
    /// A rename target that already exists, or renaming a missing source.
    BadRename(String),
    /// The query violates the closure requirement of §2.4 (e.g. exposes
    /// `distance` as a constraint): its output is not representable in the
    /// system's constraint class.
    UnsafeOperation(String),
    /// A predicate that references an attribute unusable in that position
    /// (e.g. a linear constraint over a string attribute).
    BadPredicate(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DuplicateAttribute(a) => write!(f, "duplicate attribute {:?}", a),
            CoreError::NonRationalConstraintAttribute(a) => {
                write!(f, "constraint attribute {:?} must be rational", a)
            }
            CoreError::UnknownAttribute(a) => write!(f, "unknown attribute {:?}", a),
            CoreError::UnknownRelation(r) => write!(f, "unknown relation {:?}", r),
            CoreError::SchemaMismatch(what) => write!(f, "schema mismatch: {}", what),
            CoreError::KindMismatch(a) => {
                write!(f, "attribute {:?} is constraint on one side and relational on the other", a)
            }
            CoreError::TypeMismatch { attribute, expected } => {
                write!(f, "attribute {:?} expects a {} value", attribute, expected)
            }
            CoreError::BadRename(what) => write!(f, "bad rename: {}", what),
            CoreError::UnsafeOperation(what) => {
                write!(f, "unsafe operation (no closed-form output): {}", what)
            }
            CoreError::BadPredicate(what) => write!(f, "bad predicate: {}", what),
        }
    }
}

impl std::error::Error for CoreError {}

/// Result alias for the query layer.
pub type Result<T> = std::result::Result<T, CoreError>;
