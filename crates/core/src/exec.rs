//! Bottom-up plan evaluation.
//!
//! Plans are checked for safety, then evaluated by materializing each node
//! — the "efficient bottom-up evaluation strategy" of §2.2 in its simplest
//! correct form. Whole-feature operators evaluate against the catalog's
//! spatial relations and produce ordinary (finite, relational) relations
//! keyed by feature IDs, as §4 prescribes.
//!
//! Evaluation is parameterized by [`ExecOptions`]: the tuple-level
//! operators run on the deterministic chunked executor (output identical
//! for every thread count) and consult the conservative bounding-box
//! filter before exact constraint arithmetic. Base-relation scans are
//! borrowed from the catalog (`Cow`), not cloned, so a scan feeding an
//! operator costs nothing.

use std::borrow::Cow;

use crate::catalog::Catalog;
use crate::error::Result;
use crate::ops;
use crate::par::{ExecOptions, ExecStats};
use crate::plan::Plan;
use crate::relation::HRelation;
use crate::safety;
use crate::schema::{AttrDef, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// Evaluates a plan against a catalog with default [`ExecOptions`]
/// (after a safety check).
pub fn execute(plan: &Plan, catalog: &Catalog) -> Result<HRelation> {
    execute_opts(plan, catalog, &ExecOptions::default(), &ExecStats::new())
}

/// Evaluates a plan with explicit execution options; bounding-box filter
/// counters accumulate into `stats` across the whole plan.
///
/// The run is governed: the governor in `opts` is armed (deadline reset,
/// token lowered) before evaluation, operators poll its token between
/// chunks, and budget trips surface as typed errors. A run that fails
/// mid-way returns `Err` with **no** partial output — callers registering
/// results only on `Ok` observe all-or-nothing semantics.
pub fn execute_opts(
    plan: &Plan,
    catalog: &Catalog,
    opts: &ExecOptions,
    stats: &ExecStats,
) -> Result<HRelation> {
    safety::check(plan)?;
    opts.governor.arm();
    Ok(eval(plan, catalog, opts, stats)?.into_owned())
}

/// Per-node evaluation statistics, mirroring the plan tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceNode {
    /// Short operator label (e.g. `Scan R`, `Select`, `Join`).
    pub label: String,
    /// Number of (syntactic) tuples this node produced.
    pub rows: usize,
    /// Wall-clock time spent in this node, *excluding* its children.
    pub elapsed: std::time::Duration,
    /// Candidate pairs/tuples checked by this node's bounding-box filter.
    pub filter_checked: u64,
    /// How many of those the filter rejected before exact arithmetic.
    pub filter_rejected: u64,
    /// Peak intermediate Fourier–Motzkin atom count inside this node.
    pub fm_peak_atoms: u64,
    /// Child traces in plan order.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    fn render(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{}{}  [{} row(s), {:.2?}",
            "  ".repeat(depth),
            self.label,
            self.rows,
            self.elapsed
        );
        if self.filter_checked > 0 {
            let _ = write!(
                out,
                ", bbox filter {}/{} rejected",
                self.filter_rejected, self.filter_checked
            );
        }
        if self.fm_peak_atoms > 0 {
            let _ = write!(out, ", fm peak {} atom(s)", self.fm_peak_atoms);
        }
        let _ = writeln!(out, "]");
        for c in &self.children {
            c.render(out, depth + 1);
        }
    }
}

impl std::fmt::Display for TraceNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.render(&mut out, 0);
        f.write_str(&out)
    }
}

/// Evaluates a plan, also producing a per-node trace (row counts,
/// self-times and filter hit rates) — the `EXPLAIN ANALYZE` of the CQA
/// layer. Uses default [`ExecOptions`].
///
/// The traced path always evaluates operators directly (no index-assisted
/// selection), so the trace reflects the plain algebra; results are
/// identical to [`execute`] either way.
pub fn execute_traced(plan: &Plan, catalog: &Catalog) -> Result<(HRelation, TraceNode)> {
    execute_traced_opts(plan, catalog, &ExecOptions::default())
}

/// [`execute_traced`] with explicit execution options.
pub fn execute_traced_opts(
    plan: &Plan,
    catalog: &Catalog,
    opts: &ExecOptions,
) -> Result<(HRelation, TraceNode)> {
    safety::check(plan)?;
    opts.governor.arm();
    let (rel, trace) = eval_traced(plan, catalog, opts)?;
    Ok((rel.into_owned(), trace))
}

fn eval_traced<'a>(
    plan: &Plan,
    catalog: &'a Catalog,
    opts: &ExecOptions,
) -> Result<(Cow<'a, HRelation>, TraceNode)> {
    let mut children: Vec<TraceNode> = Vec::new();
    let mut child = |p: &Plan| -> Result<Cow<'a, HRelation>> {
        let (rel, trace) = eval_traced(p, catalog, opts)?;
        children.push(trace);
        Ok(rel)
    };
    // Each node gets its own counters so the trace can show per-operator
    // filter hit rates.
    let stats = ExecStats::new();
    let start = std::time::Instant::now();
    let (label, rel): (String, Cow<'a, HRelation>) = match plan {
        Plan::Scan(name) => (format!("Scan {}", name), Cow::Borrowed(catalog.get(name)?)),
        Plan::SpatialScan(name) => (
            format!("SpatialScan {}", name),
            Cow::Owned(crate::spatial_bridge::spatial_to_hrelation(
                catalog.get_spatial(name)?,
            )?),
        ),
        Plan::Select { input, selection } => {
            let rel = child(input)?;
            let t = std::time::Instant::now();
            let out = ops::select_opts(&rel, selection, opts, &stats)?;
            return finish("Select".to_string(), out, t, opts, &stats, children);
        }
        Plan::Project { input, attrs } => {
            let rel = child(input)?;
            let t = std::time::Instant::now();
            let out = ops::project_opts(&rel, attrs, opts, &stats)?;
            return finish(
                format!("Project on {}", attrs.join(", ")),
                out,
                t,
                opts,
                &stats,
                children,
            );
        }
        Plan::Join { left, right } => {
            let (l, r) = (child(left)?, child(right)?);
            let t = std::time::Instant::now();
            let out = ops::join_opts(&l, &r, opts, &stats)?;
            return finish("Join".to_string(), out, t, opts, &stats, children);
        }
        Plan::Union { left, right } => {
            let (l, r) = (child(left)?, child(right)?);
            let t = std::time::Instant::now();
            let out = ops::union(&l, &r)?;
            return finish("Union".to_string(), out, t, opts, &stats, children);
        }
        Plan::Difference { left, right } => {
            let (l, r) = (child(left)?, child(right)?);
            let t = std::time::Instant::now();
            let out = ops::difference_opts(&l, &r, opts, &stats)?;
            return finish("Difference".to_string(), out, t, opts, &stats, children);
        }
        Plan::Rename { input, from, to } => {
            let rel = child(input)?;
            let t = std::time::Instant::now();
            let out = ops::rename(&rel, from, to)?;
            return finish(format!("Rename {} -> {}", from, to), out, t, opts, &stats, children);
        }
        other @ (Plan::BufferJoin { .. } | Plan::KNearest { .. }) => {
            let out = eval(other, catalog, opts, &stats)?;
            let label = match other {
                Plan::BufferJoin { left, right, .. } => format!("BufferJoin {} and {}", left, right),
                Plan::KNearest { left, right, k } => {
                    format!("KNearest {} and {} k {}", left, right, k)
                }
                _ => unreachable!(),
            };
            (label, out)
        }
        Plan::Distance { .. } => unreachable!("rejected by the safety check"),
    };
    let rows = rel.len();
    opts.governor.guard_output(rows)?;
    Ok((
        rel,
        TraceNode {
            label,
            rows,
            elapsed: start.elapsed(),
            filter_checked: stats.checked(),
            filter_rejected: stats.rejected(),
            fm_peak_atoms: stats.fm_peak(),
            children,
        },
    ))
}

fn finish<'a>(
    label: String,
    out: HRelation,
    since: std::time::Instant,
    opts: &ExecOptions,
    stats: &ExecStats,
    children: Vec<TraceNode>,
) -> Result<(Cow<'a, HRelation>, TraceNode)> {
    let rows = out.len();
    opts.governor.guard_output(rows)?;
    Ok((
        Cow::Owned(out),
        TraceNode {
            label,
            rows,
            elapsed: since.elapsed(),
            filter_checked: stats.checked(),
            filter_rejected: stats.rejected(),
            fm_peak_atoms: stats.fm_peak(),
            children,
        },
    ))
}

fn eval<'a>(
    plan: &Plan,
    catalog: &'a Catalog,
    opts: &ExecOptions,
    stats: &ExecStats,
) -> Result<Cow<'a, HRelation>> {
    let rel: Cow<'a, HRelation> = match plan {
        Plan::Scan(name) => Cow::Borrowed(catalog.get(name)?),
        Plan::SpatialScan(name) => Cow::Owned(crate::spatial_bridge::spatial_to_hrelation(
            catalog.get_spatial(name)?,
        )?),
        Plan::Select { input, selection } => {
            if let Plan::Scan(name) = input.as_ref() {
                if let Some(result) = try_index_select(catalog, name, selection, opts, stats)? {
                    return Ok(Cow::Owned(result));
                }
            }
            let rel = eval(input, catalog, opts, stats)?;
            Cow::Owned(ops::select_opts(&rel, selection, opts, stats)?)
        }
        Plan::Project { input, attrs } => {
            let rel = eval(input, catalog, opts, stats)?;
            Cow::Owned(ops::project_opts(&rel, attrs, opts, stats)?)
        }
        Plan::Join { left, right } => {
            let l = eval(left, catalog, opts, stats)?;
            let r = eval(right, catalog, opts, stats)?;
            Cow::Owned(ops::join_opts(&l, &r, opts, stats)?)
        }
        Plan::Union { left, right } => {
            let l = eval(left, catalog, opts, stats)?;
            let r = eval(right, catalog, opts, stats)?;
            Cow::Owned(ops::union(&l, &r)?)
        }
        Plan::Difference { left, right } => {
            let l = eval(left, catalog, opts, stats)?;
            let r = eval(right, catalog, opts, stats)?;
            Cow::Owned(ops::difference_opts(&l, &r, opts, stats)?)
        }
        Plan::Rename { input, from, to } => {
            let rel = eval(input, catalog, opts, stats)?;
            Cow::Owned(ops::rename(&rel, from, to)?)
        }
        Plan::BufferJoin { left, right, distance } => {
            let l = catalog.get_spatial(left)?;
            let r = catalog.get_spatial(right)?;
            let (pairs, _accesses) =
                cqa_spatial::ops::buffer_join_par(l, r, distance, opts.effective_threads());
            Cow::Owned(id_pairs_relation(pairs))
        }
        Plan::KNearest { left, right, k } => {
            let l = catalog.get_spatial(left)?;
            let r = catalog.get_spatial(right)?;
            Cow::Owned(id_pairs_relation(cqa_spatial::ops::k_nearest_par(
                l,
                r,
                *k,
                opts.effective_threads(),
            )))
        }
        Plan::Distance { .. } => unreachable!("rejected by the safety check"),
    };
    // Every node — scans included — answers to the output-tuple budget:
    // a governed run bounds its intermediates wherever they arise.
    opts.governor.guard_output(rel.len())?;
    Ok(rel)
}

/// Index-assisted selection over a base relation (the "through the use of
/// indexing" half of §1.1's optimization story): when the scanned relation
/// has an index whose attributes the selection bounds, probe it for
/// candidate tuples and run the exact selection only on those. Returns
/// `None` when no index applies; the result, when `Some`, is identical to
/// the unindexed path (the filter is conservative, the refinement exact).
fn try_index_select(
    catalog: &Catalog,
    name: &str,
    selection: &crate::plan::Selection,
    opts: &ExecOptions,
    stats: &ExecStats,
) -> Result<Option<HRelation>> {
    use crate::plan::{CmpOp, Predicate};
    let rel = catalog.get(name)?;
    let indexes = catalog.indexes(name);
    if indexes.is_empty() || rel.is_empty() {
        return Ok(None);
    }
    // Surface validation errors exactly as the unindexed path would.
    ops::select::validate(rel.schema(), selection)?;

    // Per-attribute f64 bounds from single-attribute linear predicates.
    // Bounds are *widened* slightly: float rounding must never exclude a
    // true match (the refinement re-checks exactly).
    let mut bounds: std::collections::BTreeMap<&str, (f64, f64)> = Default::default();
    for pred in selection.predicates() {
        let Predicate::Linear { terms, constant, op } = pred else { continue };
        if terms.len() != 1 {
            continue;
        }
        let (attr, coeff) = (&terms[0].0, &terms[0].1);
        if coeff.is_zero() {
            continue;
        }
        // c·a + k op 0  ⇔  a op' −k/c, comparison flipping with c's sign.
        let bound = (-(constant) / coeff).to_f64();
        let eps = 1e-9 * (1.0 + bound.abs());
        let upper = matches!(
            (op, coeff.is_positive()),
            (CmpOp::Le | CmpOp::Lt, true) | (CmpOp::Ge | CmpOp::Gt, false)
        );
        let lower = matches!(
            (op, coeff.is_positive()),
            (CmpOp::Ge | CmpOp::Gt, true) | (CmpOp::Le | CmpOp::Lt, false)
        );
        if *op != CmpOp::Eq && !upper && !lower {
            continue; // e.g. <>: contributes no range bound
        }
        let entry = bounds
            .entry(attr.as_str())
            .or_insert((f64::NEG_INFINITY, f64::INFINITY));
        if *op == CmpOp::Eq {
            entry.0 = entry.0.max(bound - eps);
            entry.1 = entry.1.min(bound + eps);
        } else if upper {
            entry.1 = entry.1.min(bound + eps);
        } else if lower {
            entry.0 = entry.0.max(bound - eps);
        }
    }
    if bounds.is_empty() {
        return Ok(None);
    }
    // Contradictory bounds (x ≥ 10 ∧ x ≤ 5): no tuple can pass the
    // selection's conjunction, and an inverted probe rectangle would be
    // rejected by the index. Answer directly.
    if bounds.values().any(|(lo, hi)| lo > hi) {
        return Ok(Some(HRelation::new(rel.schema().clone())));
    }

    // Pick the index covering the most bounded attributes.
    let best = indexes
        .iter()
        .max_by_key(|ix| ix.attrs().iter().filter(|a| bounds.contains_key(a.as_str())).count());
    let Some(index) = best else { return Ok(None) };
    let covered =
        index.attrs().iter().filter(|a| bounds.contains_key(a.as_str())).count();
    if covered == 0 {
        return Ok(None);
    }
    let probe: Vec<Option<(f64, f64)>> = index
        .attrs()
        .iter()
        .map(|a| bounds.get(a.as_str()).copied())
        .collect();
    let candidates = index.probe(&probe);

    // Exact refinement on the candidates only, preserving scan order.
    let mut filtered = HRelation::new(rel.schema().clone());
    for i in candidates {
        filtered.insert(rel.tuples()[i].clone());
    }
    Ok(Some(ops::select_opts(&filtered, selection, opts, stats)?))
}

/// Schema of whole-feature operator outputs: two relational string
/// attributes `id1`, `id2`.
pub fn id_pair_schema() -> Schema {
    Schema::new(vec![AttrDef::str_rel("id1"), AttrDef::str_rel("id2")])
        .expect("static schema is valid")
}

fn id_pairs_relation(pairs: Vec<(String, String)>) -> HRelation {
    let schema = id_pair_schema();
    let mut rel = HRelation::new(schema);
    for (a, b) in pairs {
        let t = Tuple::builder(rel.schema())
            .set("id1", Value::str(a))
            .set("id2", Value::str(b))
            .build()
            .expect("id pair tuple is valid");
        rel.insert(t);
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CmpOp, Selection};
    use crate::schema::AttrKind;
    use cqa_num::Rat;
    use cqa_spatial::{Feature, Geometry, Point, SpatialRelation};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let schema = Schema::new(vec![
            AttrDef::str_rel("id"),
            AttrDef { name: "x".into(), ty: crate::schema::AttrType::Rat, kind: AttrKind::Constraint },
        ])
        .unwrap();
        let mut r = HRelation::new(schema);
        r.insert_with(|b| b.set("id", "a").range("x", 0, 10)).unwrap();
        r.insert_with(|b| b.set("id", "b").range("x", 20, 30)).unwrap();
        cat.register("R", r);

        let cities = SpatialRelation::from_features([
            Feature::new("c0", Geometry::Point(Point::from_ints(0, 0))),
            Feature::new("c1", Geometry::Point(Point::from_ints(10, 0))),
        ]);
        let probes = SpatialRelation::from_features([Feature::new(
            "p",
            Geometry::Point(Point::from_ints(1, 0)),
        )]);
        cat.register_spatial("Cities", cities);
        cat.register_spatial("Probes", probes);
        cat
    }

    #[test]
    fn scan_select_project_pipeline() {
        let cat = catalog();
        let plan = Plan::scan("R")
            .select(Selection::all().cmp_int("x", CmpOp::Ge, 5))
            .project(&["id"]);
        let out = execute(&plan, &cat).unwrap();
        assert_eq!(out.len(), 2, "both intervals reach x ≥ 5");
        let plan = Plan::scan("R")
            .select(Selection::all().cmp_int("x", CmpOp::Ge, 15))
            .project(&["id"]);
        let out = execute(&plan, &cat).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0].value(0), Some(&Value::str("b")));
    }

    #[test]
    fn missing_relation_is_an_error() {
        let cat = catalog();
        assert!(execute(&Plan::scan("Nope"), &cat).is_err());
        assert!(execute(
            &Plan::BufferJoin { left: "Nope".into(), right: "Cities".into(), distance: Rat::one() },
            &cat
        )
        .is_err());
    }

    #[test]
    fn buffer_join_produces_id_pairs() {
        let cat = catalog();
        let plan = Plan::BufferJoin {
            left: "Probes".into(),
            right: "Cities".into(),
            distance: Rat::from_int(2),
        };
        let out = execute(&plan, &cat).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out
            .contains_point(&[Value::str("p"), Value::str("c0")])
            .unwrap());
        assert!(out.schema().is_purely_relational(), "whole-feature output is traditional");
    }

    #[test]
    fn knearest_composes_with_algebra() {
        let cat = catalog();
        let plan = Plan::KNearest { left: "Probes".into(), right: "Cities".into(), k: 2 }
            .select(Selection::all().str_eq("id2", "c1"));
        let out = execute(&plan, &cat).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn traced_execution_matches_and_counts() {
        let cat = catalog();
        let plan = Plan::scan("R")
            .select(Selection::all().cmp_int("x", CmpOp::Ge, 5))
            .project(&["id"]);
        let plain = execute(&plan, &cat).unwrap();
        let (traced, trace) = execute_traced(&plan, &cat).unwrap();
        assert_eq!(plain, traced);
        // Trace shape mirrors the plan: Project -> Select -> Scan.
        assert!(trace.label.starts_with("Project"));
        assert_eq!(trace.rows, traced.len());
        assert_eq!(trace.children.len(), 1);
        assert!(trace.children[0].label.starts_with("Select"));
        let scan = &trace.children[0].children[0];
        assert_eq!(scan.label, "Scan R");
        assert_eq!(scan.rows, 2);
        let shown = trace.to_string();
        assert!(shown.contains("row(s)"), "{}", shown);
        // The Select node checked its residuals against the bbox filter.
        assert_eq!(trace.children[0].filter_checked, 2);
        // Safety still enforced.
        let bad = Plan::Distance { left: "Probes".into(), right: "Cities".into() };
        assert!(execute_traced(&bad, &cat).is_err());
    }

    #[test]
    fn execute_opts_matches_default_across_thread_counts() {
        let cat = catalog();
        let plan = Plan::scan("R")
            .select(Selection::all().cmp_int("x", CmpOp::Ge, 5))
            .project(&["id"]);
        let base = execute(&plan, &cat).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let stats = ExecStats::new();
            let out =
                execute_opts(&plan, &cat, &ExecOptions::with_threads(threads), &stats).unwrap();
            assert_eq!(base, out, "threads={}", threads);
        }
        // The serial pre-parallelism baseline agrees too (filter off).
        let stats = ExecStats::new();
        let out = execute_opts(&plan, &cat, &ExecOptions::serial(), &stats).unwrap();
        assert_eq!(base, out);
        assert_eq!(stats.checked(), 0, "serial baseline never consults the filter");
    }

    #[test]
    fn index_backed_select_matches_plain_select() {
        // A bigger relation with mixed intervals and a null.
        let schema = Schema::new(vec![
            AttrDef::str_rel("id"),
            AttrDef {
                name: "x".into(),
                ty: crate::schema::AttrType::Rat,
                kind: AttrKind::Constraint,
            },
            AttrDef {
                name: "y".into(),
                ty: crate::schema::AttrType::Rat,
                kind: AttrKind::Constraint,
            },
        ])
        .unwrap();
        let mut rel = HRelation::new(schema);
        for i in 0..200i64 {
            let lo = (i * 7) % 500;
            rel.insert_with(|b| {
                b.set("id", format!("t{}", i).as_str())
                    .range("x", lo, lo + 10)
                    .range("y", (i * 3) % 300, (i * 3) % 300 + 5)
            })
            .unwrap();
        }
        // A broad tuple (no constraints at all) must still be found.
        rel.insert_with(|b| b.set("id", "broad")).unwrap();

        let mut plain = Catalog::new();
        plain.register("R", rel.clone());
        let mut indexed = Catalog::new();
        indexed.register("R", rel);
        indexed.build_index("R", &["x", "y"]).unwrap();
        indexed.build_index("R", &["x"]).unwrap();

        let selections = [
            Selection::all().cmp_int("x", CmpOp::Ge, 100).cmp_int("x", CmpOp::Le, 150),
            Selection::all()
                .cmp_int("x", CmpOp::Ge, 100)
                .cmp_int("x", CmpOp::Lt, 150)
                .cmp_int("y", CmpOp::Le, 50),
            Selection::all().cmp_int("y", CmpOp::Eq, 33),
            Selection::all().cmp_int("x", CmpOp::Gt, 10_000), // empty result
            Selection::all().str_eq("id", "t5").cmp_int("x", CmpOp::Ge, 0),
        ];
        for sel in selections {
            let plan = Plan::scan("R").select(sel.clone());
            let a = execute(&plan, &plain).unwrap();
            let b = execute(&plan, &indexed).unwrap();
            assert_eq!(a, b, "selection {:?}", sel);
        }
        // The index actually got used.
        assert!(
            indexed.indexes("R").iter().any(|ix| ix.accesses() > 0),
            "index probes should have been charged"
        );
    }

    #[test]
    fn index_handles_contradictory_bounds() {
        // x ≥ 10 ∧ x ≤ 5 would form an inverted probe rectangle; the
        // index path must answer "empty" directly instead.
        let mut cat = catalog();
        cat.build_index("R", &["x"]).unwrap();
        let plan = Plan::scan("R").select(
            Selection::all().cmp_int("x", CmpOp::Ge, 10).cmp_int("x", CmpOp::Le, 5),
        );
        let out = execute(&plan, &cat).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn index_ignored_when_it_cannot_help() {
        let cat = {
            let mut c = catalog();
            c.build_index("R", &["x"]).unwrap();
            c
        };
        // A selection that bounds nothing the index covers.
        let plan = Plan::scan("R").select(Selection::all().str_eq("id", "a"));
        let out = execute(&plan, &cat).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(cat.indexes("R")[0].accesses(), 0, "no probe charged");
    }

    #[test]
    fn index_build_rejects_bad_attrs() {
        let mut cat = catalog();
        assert!(cat.build_index("R", &["id"]).is_err(), "string attribute");
        assert!(cat.build_index("R", &[]).is_err());
        assert!(cat.build_index("R", &["x", "x", "x"]).is_err());
        assert!(cat.build_index("Nope", &["x"]).is_err());
        // Re-registering drops stale indexes.
        cat.build_index("R", &["x"]).unwrap();
        assert_eq!(cat.indexes("R").len(), 1);
        let rel = cat.get("R").unwrap().clone();
        cat.register("R", rel);
        assert!(cat.indexes("R").is_empty());
    }

    #[test]
    fn governor_trips_are_typed_errors() {
        use crate::error::CoreError;
        let cat = catalog();
        let plan = Plan::scan("R").select(Selection::all().cmp_int("x", CmpOp::Ge, 0));

        // Output-tuple budget: the scan node itself (2 tuples) exceeds 1.
        let mut opts = ExecOptions::default();
        opts.governor.budgets.max_output_tuples = Some(1);
        assert!(matches!(
            execute_opts(&plan, &cat, &opts, &ExecStats::new()),
            Err(CoreError::BudgetExceeded { what: "output tuples", used: 2, limit: 1 })
        ));

        // An already-elapsed deadline: DeadlineExceeded on every thread count.
        for threads in [1usize, 4] {
            let mut opts = ExecOptions::with_threads(threads);
            opts.governor.timeout = Some(std::time::Duration::ZERO);
            assert_eq!(
                execute_opts(&plan, &cat, &opts, &ExecStats::new()),
                Err(CoreError::DeadlineExceeded),
                "threads={}",
                threads
            );
        }

        // Deterministic cancellation at the first governor check.
        let opts = ExecOptions::default();
        opts.governor.trip_after(1);
        assert_eq!(
            execute_opts(&plan, &cat, &opts, &ExecStats::new()),
            Err(CoreError::Cancelled)
        );

        // A generous governor changes nothing.
        let mut opts = ExecOptions::default();
        opts.governor.timeout = Some(std::time::Duration::from_secs(3600));
        opts.governor.budgets.max_output_tuples = Some(1_000_000);
        assert_eq!(
            execute_opts(&plan, &cat, &opts, &ExecStats::new()).unwrap(),
            execute(&plan, &cat).unwrap()
        );
    }

    #[test]
    fn fm_and_dnf_budgets_bound_the_expensive_operators() {
        use crate::error::CoreError;
        let cat = catalog();

        // Projection eliminates x from 2-atom intervals; a 1-atom FM
        // budget trips, a generous one records the peak instead.
        let plan = Plan::scan("R").project(&["id"]);
        let mut opts = ExecOptions::default();
        opts.governor.budgets.max_fm_atoms = Some(1);
        assert!(matches!(
            execute_opts(&plan, &cat, &opts, &ExecStats::new()),
            Err(CoreError::BudgetExceeded { what: "fm atoms", .. })
        ));
        let stats = ExecStats::new();
        execute_opts(&plan, &cat, &ExecOptions::default(), &stats).unwrap();
        assert!(stats.fm_peak() >= 2, "peak gauge saw the interval atoms");

        // Difference's negation expansion answers to the DNF budget.
        let plan = Plan::Difference {
            left: Box::new(Plan::scan("R")),
            right: Box::new(Plan::scan("R")),
        };
        let mut opts = ExecOptions::default();
        opts.governor.budgets.max_dnf_conjunctions = Some(0);
        assert!(matches!(
            execute_opts(&plan, &cat, &opts, &ExecStats::new()),
            Err(CoreError::BudgetExceeded { what: "dnf conjunctions", .. })
        ));
    }

    #[test]
    fn unsafe_distance_rejected_before_evaluation() {
        let cat = catalog();
        let plan = Plan::Distance { left: "Probes".into(), right: "Cities".into() };
        assert!(matches!(
            execute(&plan, &cat),
            Err(crate::error::CoreError::UnsafeOperation(_))
        ));
    }
}
