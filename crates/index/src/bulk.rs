//! Sort-tile-recursive (STR) bulk loading.
//!
//! Building a tree by repeated insertion is the configuration the paper's
//! experiments measure, but a production system loads existing relations in
//! bulk; STR packs leaves at full fan-out, giving smaller trees and fewer
//! query accesses. The representation bench uses it to separate build
//! effects from query effects.

use crate::rect::Rect;
use crate::rstar::{RStarParams, RStarTree};

/// Bulk-loads entries into a fresh tree using sort-tile-recursive packing,
/// with the per-slab sorts spread over all hardware threads.
///
/// The resulting tree satisfies all R\*-tree invariants; subsequent inserts
/// and removes behave normally.
pub fn str_load<const D: usize, T: Clone + PartialEq + Send + Sync>(
    params: RStarParams,
    entries: Vec<(Rect<D>, T)>,
) -> RStarTree<D, T> {
    str_load_threads(params, entries, 0)
}

/// [`str_load`] with an explicit worker-thread count (`0` = all hardware
/// threads).
///
/// The thread count never changes the result: the axis-0 sort is serial,
/// the slab boundaries are fixed before any worker runs, each slab's
/// axis-1 sort is an independent deterministic comparison sort, and the
/// chunked executor concatenates slabs in input order — so the insertion
/// sequence, and therefore the tree, is identical for every `threads`
/// value (`same_structure` in the tests pins this).
pub fn str_load_threads<const D: usize, T: Clone + PartialEq + Send + Sync>(
    params: RStarParams,
    mut entries: Vec<(Rect<D>, T)>,
    threads: usize,
) -> RStarTree<D, T> {
    let mut tree = RStarTree::new(params);
    if entries.is_empty() {
        return tree;
    }
    // Pack leaves by recursive tiling, then insert the packed runs in
    // Hilbert-ish order via plain inserts of sorted runs. To keep the
    // implementation honest and simple we sort by the first axis, tile into
    // vertical slabs, sort each slab by the second axis, and insert in that
    // order: ordered insertion into an R*-tree produces well-packed nodes.
    let capacity = params.max_entries;
    let slab = ((entries.len() as f64 / capacity as f64).sqrt().ceil() as usize).max(1);
    entries.sort_by(|a, b| a.0.center()[0].partial_cmp(&b.0.center()[0]).unwrap());
    let per_slab = entries.len().div_ceil(slab).max(1);
    let slabs: Vec<&[(Rect<D>, T)]> = entries.chunks(per_slab).collect();
    let ordered = cqa_num::par::flat_map_chunks(&slabs, threads, |chunk| {
        let mut chunk: Vec<(Rect<D>, T)> = chunk.to_vec();
        if D > 1 {
            chunk.sort_by(|a, b| a.0.center()[1].partial_cmp(&b.0.center()[1]).unwrap());
        }
        chunk
    });
    for (r, t) in ordered {
        tree.insert(r, t);
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_and_queries() {
        let entries: Vec<(Rect<2>, usize)> = (0..200)
            .map(|i| {
                let x = (i % 20) as f64 * 5.0;
                let y = (i / 20) as f64 * 5.0;
                (Rect::new([x, y], [x + 1.0, y + 1.0]), i)
            })
            .collect();
        let tree = str_load(RStarParams::with_max(10), entries.clone());
        assert_eq!(tree.len(), 200);
        tree.check_invariants();
        for (r, i) in &entries {
            assert!(tree.search(r).contains(i));
        }
    }

    #[test]
    fn parallel_load_builds_node_identical_tree() {
        let mut entries: Vec<(Rect<2>, usize)> = Vec::new();
        let mut state = 7u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0) * 1000.0
        };
        for i in 0..700 {
            let (x, y) = (rnd(), rnd());
            entries.push((Rect::new([x, y], [x + 5.0, y + 5.0]), i));
        }
        let params = RStarParams::with_max(12);
        let serial = str_load_threads(params, entries.clone(), 1);
        serial.check_invariants();
        for threads in [2, 8] {
            let par = str_load_threads(params, entries.clone(), threads);
            par.check_invariants();
            assert!(
                serial.same_structure(&par),
                "threads={} built a structurally different tree",
                threads
            );
        }
        // The default entry point (all hardware threads) is covered too.
        assert!(serial.same_structure(&str_load(params, entries)));
        // Empty trees compare equal regardless of thread count.
        let e1: RStarTree<2, usize> = str_load_threads(params, Vec::new(), 1);
        let e8: RStarTree<2, usize> = str_load_threads(params, Vec::new(), 8);
        assert!(e1.same_structure(&e8));
    }

    #[test]
    fn empty_load() {
        let tree: RStarTree<2, u32> = str_load(RStarParams::with_max(8), Vec::new());
        assert!(tree.is_empty());
        tree.check_invariants();
    }

    #[test]
    fn bulk_tree_not_worse_than_random_insertion() {
        // Compare query accesses on the same data.
        let mut entries: Vec<(Rect<2>, usize)> = Vec::new();
        let mut state = 99u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0) * 1000.0
        };
        for i in 0..1000 {
            let (x, y) = (rnd(), rnd());
            entries.push((Rect::new([x, y], [x + 10.0, y + 10.0]), i));
        }
        let params = RStarParams::with_max(16);
        let bulk = str_load(params, entries.clone());
        let mut incremental = RStarTree::new(params);
        for (r, i) in entries {
            incremental.insert(r, i);
        }
        let q = Rect::new([100.0, 100.0], [200.0, 200.0]);
        let (hits_b, acc_b) = bulk.search_with_stats(&q);
        let (hits_i, acc_i) = incremental.search_with_stats(&q);
        let (mut hb, mut hi) = (hits_b, hits_i);
        hb.sort();
        hi.sort();
        assert_eq!(hb, hi);
        // Bulk loading should not be drastically worse.
        assert!(acc_b <= acc_i * 2, "bulk {} vs incremental {}", acc_b, acc_i);
    }
}
