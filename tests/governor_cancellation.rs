//! Cancellation determinism: aborting a run at *any* governor check, under
//! *any* thread count, must behave exactly like a run that never started.
//!
//! The contract under test (the governor's all-or-nothing guarantee):
//!
//! * the run returns a typed error (`execution cancelled`), never a panic
//!   and never a partial result;
//! * the catalog is bit-identical to its pre-run state — the script
//!   runner registers a query target only on `Ok`, and the chunked
//!   executor discards all partial output when the token is raised;
//! * runs that are *not* tripped produce bit-identical results for every
//!   thread count.
//!
//! The trip point is driven by `Governor::trip_after(n)`, which raises
//! the cancellation token at the n-th governor check — a deterministic
//! stand-in for "a user hit Ctrl-C at an arbitrary moment".

use cqa::core::HRelation;
use cqa::lang::schema_def::parse_cdb;
use cqa::lang::ScriptRunner;

/// ~30 interval tuples: enough to cross the parallel executor's minimum
/// item count, so multi-thread cells genuinely run chunked.
fn dataset() -> String {
    let mut src = String::from(
        "relation R {\n  id: string relational;\n  x: rational constraint;\n}\n",
    );
    for i in 0..30 {
        src.push_str(&format!(
            "tuple R {{ id = \"t{:02}\"; {} <= x; x <= {} }}\n",
            i,
            i,
            i + 2
        ));
    }
    src
}

fn runner() -> ScriptRunner {
    let mut catalog = cqa::core::Catalog::new();
    parse_cdb(&dataset()).expect("static dataset").load_into(&mut catalog);
    ScriptRunner::new(catalog)
}

/// The query: difference runs on the chunked executor and checks the
/// governor once per left tuple, so every trip point 1..=30 is reachable.
const QUERY: &str = "Out = diff R and R\n";

/// Catalog snapshot for exact state comparison.
fn snapshot(r: &ScriptRunner) -> Vec<(String, HRelation)> {
    let mut names: Vec<String> = r.catalog().names().map(str::to_string).collect();
    names.sort();
    names
        .into_iter()
        .map(|n| {
            let rel = r.catalog().get(&n).expect("listed name resolves").clone();
            (n, rel)
        })
        .collect()
}

const THREADS: [usize; 5] = [0, 1, 2, 4, 8];

#[test]
fn tripped_runs_error_and_leave_no_trace() {
    for threads in THREADS {
        for trip_at in [1u64, 2, 3, 5, 9, 17, 30] {
            let mut r = runner();
            let mut opts = r.exec_options().clone();
            opts.threads = threads;
            opts.governor.trip_after(trip_at);
            r.set_exec_options(opts);

            let before = snapshot(&r);
            let err = r.run(QUERY).expect_err("tripped run must fail");
            assert!(
                err.to_string().contains("cancelled"),
                "threads={} trip={}: expected a cancellation error, got {}",
                threads,
                trip_at,
                err
            );
            assert_eq!(
                snapshot(&r),
                before,
                "threads={} trip={}: catalog must be as if the run never happened",
                threads,
                trip_at
            );
            assert!(
                !r.catalog().contains("Out"),
                "threads={} trip={}: no partial target registered",
                threads,
                trip_at
            );
        }
    }
}

#[test]
fn untripped_runs_are_bit_identical_across_thread_counts() {
    let baseline = {
        let mut r = runner();
        let mut opts = r.exec_options().clone();
        opts.threads = 1;
        r.set_exec_options(opts);
        r.run(QUERY).expect("baseline run")
    };
    for threads in THREADS {
        let mut r = runner();
        let mut opts = r.exec_options().clone();
        opts.threads = threads;
        r.set_exec_options(opts);
        let out = r.run(QUERY).expect("untripped run succeeds");
        assert_eq!(out, baseline, "threads={}: result must match serial run", threads);
        assert!(r.catalog().contains("Out"));
    }
}

#[test]
fn rearming_after_a_trip_recovers_fully() {
    // A governor trip must not poison the runner: the very next run with
    // the hook cleared succeeds and matches an untainted runner's output.
    let mut r = runner();
    let mut opts = r.exec_options().clone();
    opts.threads = 4;
    opts.governor.trip_after(2);
    r.set_exec_options(opts.clone());
    r.run(QUERY).expect_err("first run trips");

    opts.governor.trip_after(0); // disable the hook
    r.set_exec_options(opts);
    let recovered = r.run(QUERY).expect("second run succeeds");
    let fresh = runner().run(QUERY).expect("fresh run");
    assert_eq!(recovered, fresh);
}

/// Property form of the same contract: random trip points and thread
/// counts. Compiled only with `--features proptest` (tier-1 stays lean).
#[cfg(feature = "proptest")]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn any_trip_point_is_all_or_nothing(
            threads in 0usize..9,
            trip_at in 1u64..40,
        ) {
            let mut r = runner();
            let mut opts = r.exec_options().clone();
            opts.threads = threads;
            opts.governor.trip_after(trip_at);
            r.set_exec_options(opts);
            let before = snapshot(&r);
            match r.run(QUERY) {
                // Trip points beyond the run's total check count never fire.
                Ok(_) => prop_assert!(r.catalog().contains("Out")),
                Err(e) => {
                    prop_assert!(e.to_string().contains("cancelled"));
                    prop_assert_eq!(snapshot(&r), before);
                }
            }
        }
    }
}
