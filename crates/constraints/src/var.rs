//! Constraint variables.
//!
//! Variables are opaque integer identifiers. Higher layers (the
//! heterogeneous data model in `cqa-core`) decide what a variable *means* —
//! typically it names a constraint attribute of a relation schema — and own
//! the mapping from attribute names to [`Var`]s.

use std::fmt;

/// A constraint variable, identified by a small integer.
///
/// The `Ord` instance is used pervasively to keep expressions and atom sets
/// in canonical order, so equal formulas compare structurally equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The identifier.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_id() {
        assert!(Var(0) < Var(1));
        assert_eq!(Var(3), Var(3));
        assert_eq!(Var(7).to_string(), "v7");
        assert_eq!(Var(7).id(), 7);
    }
}
