//! Structured JSONL event log with size-based rotation.
//!
//! One JSON object per line, appended to an operator-chosen file. The
//! exec layer emits `query_start` / `query_finish` events (query text
//! hash, latency, per-node rows/selectivity, governor headroom, outcome);
//! other layers are free to [`emit`] their own objects. Writes happen on
//! the emitting thread under one mutex — queries are serialized through
//! the shell anyway, and an uninstalled or disabled log costs a single
//! relaxed load.
//!
//! Rotation: when the active file exceeds `max_bytes` after a write, it
//! is renamed to `<path>.1` (shifting `<path>.1` → `<path>.2`, …, and
//! dropping the oldest beyond `max_files`), and a fresh file is opened.
//! Rotation is by rename, so a crash never leaves a half-copied log.
//!
//! I/O errors never propagate into query execution: the write is
//! dropped, `obs.eventlog.errors` is incremented, and the log disables
//! itself after the error to avoid hot-looping on a dead disk.

use crate::json::Json;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

/// Default rotation threshold (1 MiB).
pub const DEFAULT_MAX_BYTES: u64 = 1 << 20;
/// Default number of rotated files kept besides the active one.
pub const DEFAULT_MAX_FILES: usize = 4;

struct LogState {
    path: PathBuf,
    file: File,
    written: u64,
    max_bytes: u64,
    max_files: usize,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);

fn state() -> &'static Mutex<Option<LogState>> {
    static STATE: OnceLock<Mutex<Option<LogState>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

fn lock_state() -> MutexGuard<'static, Option<LogState>> {
    state().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether an event log is installed and accepting events. Emitting
/// sites check this (one relaxed load) before building event payloads.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Monotonic event-correlation id: a `query_start` and its
/// `query_finish` share one value.
pub fn next_seq() -> u64 {
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub fn now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

/// Opens (appending) the event log at `path` and starts accepting
/// events. `max_bytes`/`max_files` bound the on-disk footprint to
/// roughly `max_bytes * (max_files + 1)`.
pub fn install(
    path: impl Into<PathBuf>,
    max_bytes: u64,
    max_files: usize,
) -> std::io::Result<()> {
    let path = path.into();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let file = OpenOptions::new().create(true).append(true).open(&path)?;
    let written = file.metadata().map(|m| m.len()).unwrap_or(0);
    let mut st = lock_state();
    *st = Some(LogState { path, file, written, max_bytes: max_bytes.max(1), max_files, });
    ENABLED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Stops accepting events and closes the file.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Relaxed);
    *lock_state() = None;
}

fn rotated_name(path: &Path, i: usize) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(format!(".{}", i));
    PathBuf::from(os)
}

fn rotate(st: &mut LogState) -> std::io::Result<()> {
    if st.max_files == 0 {
        // No archives kept: truncate in place.
        st.file = File::create(&st.path)?;
        st.written = 0;
        return Ok(());
    }
    let _ = std::fs::remove_file(rotated_name(&st.path, st.max_files));
    for i in (1..st.max_files).rev() {
        let from = rotated_name(&st.path, i);
        if from.exists() {
            let _ = std::fs::rename(from, rotated_name(&st.path, i + 1));
        }
    }
    std::fs::rename(&st.path, rotated_name(&st.path, 1))?;
    st.file = OpenOptions::new().create(true).append(true).open(&st.path)?;
    st.written = 0;
    Ok(())
}

/// Appends one event as a JSONL line, rotating afterwards if the file
/// crossed its size bound. Best-effort: on I/O failure the log counts
/// the error and disables itself.
pub fn emit(event: &Json) {
    if !enabled() {
        return;
    }
    let mut line = event.render();
    line.push('\n');
    let mut st = lock_state();
    let Some(ls) = st.as_mut() else { return };
    let r = ls.file.write_all(line.as_bytes()).and_then(|()| {
        ls.written += line.len() as u64;
        if ls.written >= ls.max_bytes {
            rotate(ls)
        } else {
            Ok(())
        }
    });
    if r.is_err() {
        crate::metrics::counter("obs.eventlog.errors").inc();
        ENABLED.store(false, Ordering::Relaxed);
        *st = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cqa-eventlog-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    // The event log is process-global; exercise the whole lifecycle in
    // one test so parallel scheduling can't interleave installs.
    #[test]
    fn lifecycle_and_rotation() {
        assert!(!enabled(), "event log defaults to uninstalled");
        emit(&Json::Obj(vec![("dropped".into(), Json::Bool(true))])); // no-op

        let dir = tmpdir("rotate");
        let path = dir.join("events.jsonl");
        // Tiny rotation threshold: every event rotates.
        install(&path, 64, 2).unwrap();
        assert!(enabled());
        for i in 0..5u64 {
            emit(&Json::Obj(vec![
                ("event".into(), Json::str("test")),
                ("i".into(), Json::from_u64(i)),
                ("pad".into(), Json::str("x".repeat(48))),
            ]));
        }
        uninstall();
        assert!(!enabled());

        // Active file plus at most max_files archives; oldest dropped.
        assert!(rotated_name(&path, 1).exists());
        assert!(rotated_name(&path, 2).exists());
        assert!(!rotated_name(&path, 3).exists());

        // Every line in every generation parses as JSON.
        let mut seen = 0;
        for p in [path.clone(), rotated_name(&path, 1), rotated_name(&path, 2)] {
            let text = std::fs::read_to_string(&p).unwrap_or_default();
            for line in text.lines() {
                let v = crate::json::parse(line).unwrap();
                assert_eq!(v.get("event").unwrap().as_str(), Some("test"));
                seen += 1;
            }
        }
        assert!(seen >= 2, "rotation keeps the newest window, saw {}", seen);

        // Reinstall appends to an existing file and accounts its size.
        install(&path, DEFAULT_MAX_BYTES, DEFAULT_MAX_FILES).unwrap();
        emit(&Json::Obj(vec![("event".into(), Json::str("test"))]));
        uninstall();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().count() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
