//! Whole-feature spatial operators (§4) and representation flexibility (§6).
//!
//! Builds a small GIS-style database of roads and towns in the *vector*
//! model, runs Buffer-Join and k-Nearest, shows that the raw `distance`
//! operator is rejected as unsafe, and converts a feature between vector
//! and constraint representations.
//!
//! Run with: `cargo run -p cqa --example spatial_features`

use cqa::constraints::Var;
use cqa::core::plan::Plan;
use cqa::core::{exec, Catalog};
use cqa::num::Rat;
use cqa::spatial::convert::{conjunction_to_geometry, project_extent};
use cqa::spatial::decompose::geometry_to_dnf;
use cqa::spatial::{Feature, Geometry, Point, SpatialRelation};

fn p(x: i64, y: i64) -> Point {
    Point::from_ints(x, y)
}

fn main() {
    // Roads are polylines; towns are polygons (one concave); wells points.
    let roads = SpatialRelation::from_features([
        Feature::new("route-66", Geometry::polyline(vec![p(0, 0), p(20, 0), p(40, 10)]).unwrap()),
        Feature::new("coastal", Geometry::polyline(vec![p(0, 30), p(40, 30)]).unwrap()),
    ]);
    let towns = SpatialRelation::from_features([
        Feature::new(
            "springfield",
            Geometry::polygon(vec![p(5, 2), p(10, 2), p(10, 7), p(5, 7)]).unwrap(),
        ),
        Feature::new(
            "shelbyville", // concave L-shape
            Geometry::polygon(vec![p(25, 20), p(35, 20), p(35, 24), p(30, 24), p(30, 28), p(25, 28)]).unwrap(),
        ),
        Feature::new("ogdenville", Geometry::polygon(vec![p(0, 40), p(6, 40), p(3, 45)]).unwrap()),
    ]);

    let mut catalog = Catalog::new();
    catalog.register_spatial("Roads", roads);
    catalog.register_spatial("Towns", towns);

    // --- Buffer-Join: towns within distance 3 of each road. -------------
    let plan = Plan::BufferJoin {
        left: "Roads".into(),
        right: "Towns".into(),
        distance: Rat::from_int(3),
    };
    let near = exec::execute(&plan, &catalog).unwrap();
    println!("Buffer-Join(Roads, Towns, 3) — a safe whole-feature operator:");
    print!("{}", near);

    // --- k-Nearest: the two towns nearest each road. --------------------
    let plan = Plan::KNearest { left: "Roads".into(), right: "Towns".into(), k: 2 };
    let nearest = exec::execute(&plan, &catalog).unwrap();
    println!("k-Nearest(Roads, Towns, k=2):");
    print!("{}", nearest);

    // --- The raw distance operator is *unsafe* (§4). ---------------------
    let plan = Plan::Distance { left: "Roads".into(), right: "Towns".into() };
    let err = exec::execute(&plan, &catalog).unwrap_err();
    println!("distance(Roads, Towns) is rejected by the safety checker:\n  {}\n", err);

    // --- §6: vector -> constraint -> vector round trip. ------------------
    let (vx, vy) = (Var(0), Var(1));
    let shelbyville = catalog.get_spatial("Towns").unwrap().by_id("shelbyville").unwrap();
    let dnf = geometry_to_dnf(&shelbyville.geom, vx, vy);
    println!(
        "shelbyville (concave, 6 vertices) as constraints: {} convex constraint tuple(s):",
        dnf.len()
    );
    for conj in dnf.conjunctions() {
        println!("  {}", conj);
    }
    let piece = conjunction_to_geometry(&dnf.conjunctions()[0], vx, vy).unwrap();
    println!("first constraint tuple converted back to vector form: {:?}", piece);

    // Example 8: projection evaluated directly on the vector model.
    let (lo, hi) = project_extent(&shelbyville.geom, 0);
    println!("Example 8: x-extent of shelbyville via vertex extrema = [{}, {}]", lo, hi);
}
