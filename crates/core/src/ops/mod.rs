//! The six primitive CQA operators (§2.4), reinterpreted over the
//! heterogeneous data model of §3.
//!
//! Each operator is syntactic — it manipulates finite constraint
//! representations — and correct with respect to the semantic layer: its
//! output denotes exactly the point set the equivalent relational-algebra
//! operation would produce on the (possibly infinite) extents. That is the
//! closure principle of §2.5, and the property-based integration tests
//! check it pointwise.

mod difference;
mod join;
mod project;
mod rename;
pub(crate) mod select;
mod union;

pub use difference::{difference, difference_opts};
pub use join::{join, join_opts};
pub use project::{project, project_opts};
pub use rename::rename;
pub use select::{select, select_opts, CmpOp, Predicate, Selection};
pub use union::union;
