//! The two indexing strategies compared in §5.4 of the paper.
//!
//! * [`JointIndex`]: one 2-dimensional R\*-tree over both attributes. A
//!   query constraining only one attribute searches with the other bound
//!   set "from minimum to maximum" (§5.4).
//! * [`SeparateIndices`]: one 1-dimensional R\*-tree per attribute. A
//!   two-attribute query searches each index and intersects the result
//!   sets; the disk-access count is "the sum of the numbers for the two
//!   subqueries" (§5.4.1).
//!
//! Payloads are `u64` tuple identifiers, which is what both the heap-file
//! record ids and the experiment generators use.

use crate::rect::Rect;
use crate::rstar::{RStarParams, RStarTree};
use std::collections::HashSet;

/// A rectangle query over two attributes; `None` leaves an attribute
/// unconstrained (the §5.4 "queries involve one attribute" case).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxQuery {
    /// Bounds on the first attribute.
    pub x: Option<(f64, f64)>,
    /// Bounds on the second attribute.
    pub y: Option<(f64, f64)>,
}

impl BoxQuery {
    /// A query constraining both attributes.
    pub fn both(x: (f64, f64), y: (f64, f64)) -> BoxQuery {
        BoxQuery { x: Some(x), y: Some(y) }
    }

    /// A query constraining only the first attribute.
    pub fn x_only(x: (f64, f64)) -> BoxQuery {
        BoxQuery { x: Some(x), y: None }
    }

    /// A query constraining only the second attribute.
    pub fn y_only(y: (f64, f64)) -> BoxQuery {
        BoxQuery { x: None, y: Some(y) }
    }

    /// The implied 2-D rectangle, with unconstrained attributes stretched
    /// over `world` (the "minimum to maximum" bounds of §5.4).
    pub fn to_rect(&self, world: (f64, f64)) -> Rect<2> {
        let x = self.x.unwrap_or(world);
        let y = self.y.unwrap_or(world);
        Rect::new([x.0, y.0], [x.1, y.1])
    }
}

/// Result of running one query against a strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Matching tuple ids (sorted, deduplicated).
    pub ids: Vec<u64>,
    /// Disk (node) accesses charged to the query.
    pub accesses: u64,
}

/// An attribute-indexing strategy: answers box queries over two attributes.
pub trait IndexStrategy {
    /// Inserts a tuple's bounding box.
    fn insert(&mut self, x: (f64, f64), y: (f64, f64), id: u64);

    /// Runs a query, returning matches and the disk-access count.
    fn query(&self, q: &BoxQuery) -> QueryOutcome;

    /// A short name for reports.
    fn name(&self) -> &'static str;
}

/// One 2-dimensional R\*-tree over both attributes.
pub struct JointIndex {
    tree: RStarTree<2, u64>,
    world: (f64, f64),
}

impl JointIndex {
    /// Creates the index; `world` bounds substitute for unconstrained
    /// attributes in one-attribute queries.
    pub fn new(params: RStarParams, world: (f64, f64)) -> JointIndex {
        JointIndex { tree: RStarTree::new(params), world }
    }

    /// Access to the underlying tree (for bulk loading, inspection).
    pub fn tree_mut(&mut self) -> &mut RStarTree<2, u64> {
        &mut self.tree
    }

    /// Read access to the underlying tree.
    pub fn tree(&self) -> &RStarTree<2, u64> {
        &self.tree
    }
}

impl IndexStrategy for JointIndex {
    fn insert(&mut self, x: (f64, f64), y: (f64, f64), id: u64) {
        self.tree.insert(Rect::new([x.0, y.0], [x.1, y.1]), id);
    }

    fn query(&self, q: &BoxQuery) -> QueryOutcome {
        let (mut ids, accesses) = self.tree.search_with_stats(&q.to_rect(self.world));
        ids.sort_unstable();
        ids.dedup();
        QueryOutcome { ids, accesses }
    }

    fn name(&self) -> &'static str {
        "joint"
    }
}

/// One 1-dimensional R\*-tree per attribute.
pub struct SeparateIndices {
    x_tree: RStarTree<1, u64>,
    y_tree: RStarTree<1, u64>,
}

impl SeparateIndices {
    /// Creates both single-attribute indexes.
    pub fn new(params: RStarParams) -> SeparateIndices {
        SeparateIndices { x_tree: RStarTree::new(params), y_tree: RStarTree::new(params) }
    }

    /// The per-attribute trees.
    pub fn trees(&self) -> (&RStarTree<1, u64>, &RStarTree<1, u64>) {
        (&self.x_tree, &self.y_tree)
    }
}

impl IndexStrategy for SeparateIndices {
    fn insert(&mut self, x: (f64, f64), y: (f64, f64), id: u64) {
        self.x_tree.insert(Rect::new([x.0], [x.1]), id);
        self.y_tree.insert(Rect::new([y.0], [y.1]), id);
    }

    fn query(&self, q: &BoxQuery) -> QueryOutcome {
        match (q.x, q.y) {
            (Some(x), None) => {
                let (mut ids, acc) = self.x_tree.search_with_stats(&Rect::new([x.0], [x.1]));
                ids.sort_unstable();
                ids.dedup();
                QueryOutcome { ids, accesses: acc }
            }
            (None, Some(y)) => {
                let (mut ids, acc) = self.y_tree.search_with_stats(&Rect::new([y.0], [y.1]));
                ids.sort_unstable();
                ids.dedup();
                QueryOutcome { ids, accesses: acc }
            }
            (Some(x), Some(y)) => {
                // Search each index, sum the accesses, intersect the sets
                // (§5.4.1).
                let (xs, ax) = self.x_tree.search_with_stats(&Rect::new([x.0], [x.1]));
                let (ys, ay) = self.y_tree.search_with_stats(&Rect::new([y.0], [y.1]));
                let xset: HashSet<u64> = xs.into_iter().collect();
                let mut ids: Vec<u64> = ys.into_iter().filter(|id| xset.contains(id)).collect();
                ids.sort_unstable();
                ids.dedup();
                QueryOutcome { ids, accesses: ax + ay }
            }
            (None, None) => {
                // Unconstrained: a full scan of one index.
                let (mut ids, acc) = self.x_tree.search_with_stats(&self.x_tree.bounds());
                ids.sort_unstable();
                ids.dedup();
                QueryOutcome { ids, accesses: acc }
            }
        }
    }

    fn name(&self) -> &'static str {
        "separate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> (JointIndex, SeparateIndices) {
        let params = RStarParams::with_max(8);
        let mut joint = JointIndex::new(params, (0.0, 100.0));
        let mut sep = SeparateIndices::new(params);
        // A 10×10 grid of unit boxes, id = col * 10 + row.
        for i in 0..10u64 {
            for j in 0..10u64 {
                let x = (i as f64 * 10.0, i as f64 * 10.0 + 1.0);
                let y = (j as f64 * 10.0, j as f64 * 10.0 + 1.0);
                joint.insert(x, y, i * 10 + j);
                sep.insert(x, y, i * 10 + j);
            }
        }
        (joint, sep)
    }

    #[test]
    fn same_answers_two_attribute_query() {
        let (joint, sep) = build();
        let q = BoxQuery::both((0.0, 10.5), (0.0, 10.5));
        let a = joint.query(&q);
        let b = sep.query(&q);
        assert_eq!(a.ids, b.ids);
        assert_eq!(a.ids, vec![0, 1, 10, 11]);
        assert!(a.accesses > 0 && b.accesses > 0);
    }

    #[test]
    fn same_answers_one_attribute_query() {
        let (joint, sep) = build();
        for q in [BoxQuery::x_only((20.0, 30.5)), BoxQuery::y_only((20.0, 30.5))] {
            let a = joint.query(&q);
            let b = sep.query(&q);
            assert_eq!(a.ids, b.ids, "query {:?}", q);
            assert_eq!(a.ids.len(), 20, "two grid lines of ten");
        }
    }

    #[test]
    fn separate_sums_subquery_accesses() {
        let (_, sep) = build();
        let two = sep.query(&BoxQuery::both((0.0, 10.5), (0.0, 10.5)));
        let just_x = sep.query(&BoxQuery::x_only((0.0, 10.5)));
        let just_y = sep.query(&BoxQuery::y_only((0.0, 10.5)));
        assert_eq!(two.accesses, just_x.accesses + just_y.accesses);
    }

    #[test]
    fn joint_wins_on_selective_conjunction() {
        // §5.3 scenario: each predicate alone matches half the data, the
        // conjunction matches almost nothing.
        let params = RStarParams::with_max(16);
        let mut joint = JointIndex::new(params, (0.0, 1000.0));
        let mut sep = SeparateIndices::new(params);
        // Half the tuples on the left edge, half on the bottom edge.
        for i in 0..500u64 {
            let t = i as f64;
            joint.insert((0.0, 1.0), (t, t + 1.0), i);
            sep.insert((0.0, 1.0), (t, t + 1.0), i);
            joint.insert((t, t + 1.0), (0.0, 1.0), 500 + i);
            sep.insert((t, t + 1.0), (0.0, 1.0), 500 + i);
        }
        // x small AND y small: only the corner qualifies.
        let q = BoxQuery::both((0.0, 2.0), (0.0, 2.0));
        let a = joint.query(&q);
        let b = sep.query(&q);
        assert_eq!(a.ids, b.ids);
        assert!(
            a.accesses * 5 < b.accesses,
            "joint ({}) should be far cheaper than separate ({})",
            a.accesses,
            b.accesses
        );
    }

    #[test]
    fn unconstrained_query_returns_everything() {
        let (joint, sep) = build();
        let q = BoxQuery { x: None, y: None };
        assert_eq!(joint.query(&q).ids.len(), 100);
        assert_eq!(sep.query(&q).ids.len(), 100);
    }
}
