//! The projection operator `π_X(R)` (§2.4).
//!
//! Relational attributes are simply restricted; constraint attributes that
//! are dropped are **existentially quantified away** by exact quantifier
//! elimination, so the output's semantics is precisely the shadow
//! `{t[X] : R(t)}` of Definition (3) — in closed form, as the framework's
//! safety requirement demands.

use crate::error::Result;
use crate::par::{ExecOptions, ExecStats};
use crate::relation::{remap_vars, HRelation};
use crate::schema::AttrKind;
use crate::tuple::Tuple;
use cqa_constraints::Var;

/// Applies `π_X` with `X` given as attribute names (output order follows
/// `names`), with default [`ExecOptions`].
pub fn project(rel: &HRelation, names: &[String]) -> Result<HRelation> {
    project_opts(rel, names, &ExecOptions::default(), &ExecStats::new())
}

/// Applies `π_X` with explicit execution options.
///
/// Quantifier elimination is the operator's hot spot and its memory
/// hazard: Fourier–Motzkin can square the atom count per eliminated
/// variable. The loop consults the governor per tuple (cancellation,
/// deadline) and runs each elimination under the governor's FM budget,
/// recording the peak intermediate size into `stats`.
pub fn project_opts(
    rel: &HRelation,
    names: &[String],
    opts: &ExecOptions,
    stats: &ExecStats,
) -> Result<HRelation> {
    let schema = rel.schema();
    let out_schema = schema.project(names)?;
    let positions: Vec<usize> =
        names.iter().map(|n| schema.position(n)).collect::<Result<_>>()?;

    // Constraint variables to eliminate: constraint attrs not kept.
    let keep: Vec<bool> = {
        let mut keep = vec![false; schema.arity()];
        for &p in &positions {
            keep[p] = true;
        }
        keep
    };
    let eliminate: Vec<Var> = schema
        .constraint_positions()
        .filter(|&i| !keep[i])
        .map(|i| schema.var(i))
        .collect();
    // Var remapping old position → new position for kept constraint attrs.
    let mapping: Vec<(Var, Var)> = positions
        .iter()
        .enumerate()
        .filter(|(_, &old)| schema.attrs()[old].kind == AttrKind::Constraint)
        .map(|(new, &old)| (schema.var(old), Var(new as u32)))
        .collect();

    let governor = &opts.governor;
    let mut out = HRelation::new(out_schema);
    for tuple in rel.tuples() {
        governor.check()?;
        let values = positions.iter().map(|&p| tuple.values()[p].clone()).collect();
        // One span per elimination call when tracing: this serial loop is
        // a span site, so the recorded sequence is thread-count-invariant.
        let span_start = cqa_obs::spans_enabled().then(std::time::Instant::now);
        let atoms_in = tuple.constraint().len() as u64;
        let conj = tuple
            .constraint()
            .eliminate_budgeted(eliminate.iter().copied(), governor.fm_budget(stats))?;
        if let Some(t0) = span_start {
            cqa_obs::record_span(
                "fm.eliminate",
                String::new(),
                t0.elapsed().as_nanos() as u64,
                vec![
                    ("atoms_in", atoms_in),
                    ("atoms_out", conj.len() as u64),
                    ("vars", eliminate.len() as u64),
                ],
            );
        }
        if conj.is_trivially_false() {
            continue;
        }
        let conj = remap_vars(&conj, &mapping);
        out.insert(Tuple::from_parts(values, conj));
    }
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::select::{select, CmpOp, Selection};
    use crate::schema::{AttrDef, Schema};
    use crate::value::Value;
    use cqa_num::Rat;

    fn land() -> HRelation {
        let schema = Schema::new(vec![
            AttrDef::str_rel("landId"),
            AttrDef::rat_con("x"),
            AttrDef::rat_con("y"),
        ])
        .unwrap();
        let mut r = HRelation::new(schema);
        // Parcel A: [0,2]×[3,6]; parcel B: the triangle x,y ≥ 0, x+y ≤ 2.
        r.insert_with(|b| b.set("landId", "A").range("x", 0, 2).range("y", 3, 6)).unwrap();
        r.insert_with(|b| {
            use cqa_constraints::{Atom, LinExpr, Var};
            b.set("landId", "B")
                .atom(Atom::ge(LinExpr::var(Var(1)), LinExpr::zero()))
                .atom(Atom::ge(LinExpr::var(Var(2)), LinExpr::zero()))
                .atom(Atom::le(
                    LinExpr::from_terms(
                        [(Var(1), Rat::one()), (Var(2), Rat::one())],
                        Rat::zero(),
                    ),
                    LinExpr::constant_int(2),
                ))
        })
        .unwrap();
        r
    }

    #[test]
    fn project_restricts_relational_and_eliminates_constraint() {
        let r = land();
        let out = project(&r, &["landId".into(), "x".into()]).unwrap();
        assert_eq!(out.schema().arity(), 2);
        // A's x-shadow is [0,2]; B's x-shadow is [0,2] too (triangle).
        assert!(out.contains_point(&[Value::str("A"), Value::int(1)]).unwrap());
        assert!(out.contains_point(&[Value::str("B"), Value::int(2)]).unwrap());
        assert!(!out.contains_point(&[Value::str("B"), Value::int(3)]).unwrap());
        // y is gone from the schema.
        assert!(!out.schema().contains("y"));
    }

    #[test]
    fn projection_reorders() {
        let r = land();
        let out = project(&r, &["y".into(), "landId".into()]).unwrap();
        assert_eq!(out.schema().attrs()[0].name, "y");
        // Variable positions remapped: y is now Var(0).
        assert!(out.contains_point(&[Value::int(4), Value::str("A")]).unwrap());
        assert!(!out.contains_point(&[Value::int(7), Value::str("A")]).unwrap());
    }

    #[test]
    fn projection_deduplicates() {
        let schema =
            Schema::new(vec![AttrDef::str_rel("id"), AttrDef::rat_con("x")]).unwrap();
        let mut r = HRelation::new(schema);
        r.insert_with(|b| b.set("id", "same").range("x", 0, 1)).unwrap();
        r.insert_with(|b| b.set("id", "same").range("x", 5, 9)).unwrap();
        let out = project(&r, &["id".into()]).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn shadow_is_exact_not_boxy() {
        // Projecting the triangle x + y ≤ 2 (x, y ≥ 0) after selecting
        // y ≥ 1 must give x ≤ 1, not x ≤ 2: projection interacts with the
        // other attribute's constraints.
        let r = land();
        let narrowed = select(&r, &Selection::all().cmp_int("y", CmpOp::Ge, 1)).unwrap();
        let out = project(&narrowed, &["landId".into(), "x".into()]).unwrap();
        assert!(out.contains_point(&[Value::str("B"), Value::int(1)]).unwrap());
        assert!(!out
            .contains_point(&[Value::str("B"), Value::rat(Rat::from_pair(3, 2))])
            .unwrap());
    }

    #[test]
    fn empty_projection_list_keeps_tuple_presence() {
        let r = land();
        let out = project(&r, &[]).unwrap();
        assert_eq!(out.schema().arity(), 0);
        assert_eq!(out.len(), 1, "all tuples collapse to the empty tuple");
    }
}
