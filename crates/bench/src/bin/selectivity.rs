//! The §5.3 scenario: two predicates with low individual selectivity whose
//! conjunction is highly selective. The paper claims the joint index
//! "reduc\[es\] the time performance from linear to logarithmic in the size
//! of data" — this harness sweeps the data size and prints both curves.

use cqa_bench::experiments::selectivity_scenario;

fn main() {
    println!("# §5.3: low-selectivity conjunction, joint vs separate accesses");
    println!("{:>10} {:>10} {:>12} {:>18}", "tuples", "joint", "separate", "separate/joint");
    for &n in &[500usize, 1000, 2000, 4000, 8000, 16000] {
        let (joint, separate, total) = selectivity_scenario(n);
        println!(
            "{:>10} {:>10} {:>12} {:>17.1}x",
            total,
            joint,
            separate,
            separate as f64 / joint as f64
        );
    }
    println!();
    println!("# Expected shape: joint stays ~flat (logarithmic), separate grows ~linearly.");
}
