//! Sampling strategies (`prop::sample::{select, Index}`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;

/// Uniformly picks one of `items` per case.
pub fn select<T: Clone + Debug>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select from empty list");
    Select { items }
}

/// See [`select`].
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}

/// A length-agnostic random index: resolved against a concrete length
/// with [`Index::index`]. Generated via `any::<prop::sample::Index>()`.
#[derive(Debug, Clone, Copy)]
pub struct Index {
    raw: u64,
}

impl Index {
    pub(crate) fn from_raw(raw: u64) -> Self {
        Index { raw }
    }

    /// Resolves to an index in `[0, len)`; `len` must be positive.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index(0)");
        (self.raw % len as u64) as usize
    }

    /// Picks an element of `slice` (`None` when empty).
    pub fn get<'a, T>(&self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn select_picks_members() {
        let mut rng = TestRng::from_seed(2);
        let s = select(vec!["a", "b", "c"]);
        for _ in 0..50 {
            assert!(["a", "b", "c"].contains(&s.sample_value(&mut rng)));
        }
    }

    #[test]
    fn index_resolves_in_bounds() {
        let mut rng = TestRng::from_seed(6);
        for _ in 0..100 {
            let idx = any::<Index>().sample_value(&mut rng);
            assert!(idx.index(7) < 7);
        }
    }
}
