//! Variable assignments — the semantic (set-of-points) side of the model.
//!
//! A constraint tuple *denotes* the set of assignments satisfying its
//! formula (Definition 1 of the paper); an [`Assignment`] is one candidate
//! point of `Dᵏ`.

use crate::var::Var;
use cqa_num::Rat;
use std::collections::BTreeMap;
use std::fmt;

/// A partial mapping from variables to rational values.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Assignment {
    map: BTreeMap<Var, Rat>,
}

impl Assignment {
    /// The empty assignment.
    pub fn new() -> Assignment {
        Assignment::default()
    }

    /// Builds an assignment from pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Var, Rat)>) -> Assignment {
        Assignment { map: pairs.into_iter().collect() }
    }

    /// Sets `v := value`, replacing any previous binding.
    pub fn set(&mut self, v: Var, value: Rat) {
        self.map.insert(v, value);
    }

    /// The value bound to `v`, if any.
    pub fn get(&self, v: Var) -> Option<&Rat> {
        self.map.get(&v)
    }

    /// Whether `v` is bound.
    pub fn binds(&self, v: Var) -> bool {
        self.map.contains_key(&v)
    }

    /// Iterates over bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &Rat)> + '_ {
        self.map.iter().map(|(v, r)| (*v, r))
    }

    /// Restricts the assignment to the given variables.
    pub fn restrict(&self, vars: impl IntoIterator<Item = Var>) -> Assignment {
        let keep: std::collections::BTreeSet<Var> = vars.into_iter().collect();
        Assignment {
            map: self.map.iter().filter(|(v, _)| keep.contains(v)).map(|(v, r)| (*v, r.clone())).collect(),
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl fmt::Debug for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, r)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", v, r)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_restrict() {
        let mut a = Assignment::new();
        assert!(a.is_empty());
        a.set(Var(0), Rat::from_int(1));
        a.set(Var(1), Rat::from_int(2));
        a.set(Var(0), Rat::from_int(3)); // overwrite
        assert_eq!(a.get(Var(0)), Some(&Rat::from_int(3)));
        assert_eq!(a.len(), 2);
        let r = a.restrict([Var(1)]);
        assert!(!r.binds(Var(0)));
        assert_eq!(r.get(Var(1)), Some(&Rat::from_int(2)));
        assert_eq!(format!("{:?}", r), "{v1=2}");
    }
}
