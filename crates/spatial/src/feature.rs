//! Spatial features — the "whole features" of §4.
//!
//! A feature couples an identifier with a geometry in the vector model: a
//! point, a polyline (roads, rivers, hurricane trajectories), or a simple
//! polygon (lakes, towns, temperature zones) — the running examples of §6.2.

use crate::geom::{signed_area2, Point, Segment};
use cqa_num::Rat;
use std::fmt;

/// A geometry in the vector model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Geometry {
    /// A single point.
    Point(Point),
    /// An open chain of segments (at least two points).
    Polyline(Vec<Point>),
    /// A simple polygon given as its ring of vertices in counter-clockwise
    /// order (the closing edge is implicit).
    Polygon(Vec<Point>),
}

/// Validation failures for vector geometries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// A polyline needs at least two points.
    PolylineTooShort,
    /// A polygon needs at least three vertices.
    PolygonTooSmall,
    /// The polygon ring crosses itself.
    SelfIntersecting,
    /// The polygon has zero area.
    DegeneratePolygon,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::PolylineTooShort => write!(f, "polyline needs at least 2 points"),
            GeometryError::PolygonTooSmall => write!(f, "polygon needs at least 3 vertices"),
            GeometryError::SelfIntersecting => write!(f, "polygon ring is self-intersecting"),
            GeometryError::DegeneratePolygon => write!(f, "polygon has zero area"),
        }
    }
}

impl std::error::Error for GeometryError {}

impl Geometry {
    /// Builds a validated polyline.
    pub fn polyline(points: Vec<Point>) -> Result<Geometry, GeometryError> {
        if points.len() < 2 {
            return Err(GeometryError::PolylineTooShort);
        }
        Ok(Geometry::Polyline(points))
    }

    /// Builds a validated simple polygon; a clockwise ring is reversed so
    /// the stored ring is always counter-clockwise.
    pub fn polygon(mut ring: Vec<Point>) -> Result<Geometry, GeometryError> {
        if ring.len() < 3 {
            return Err(GeometryError::PolygonTooSmall);
        }
        let area2 = signed_area2(&ring);
        if area2.is_zero() {
            return Err(GeometryError::DegeneratePolygon);
        }
        if area2.is_negative() {
            ring.reverse();
        }
        // Simplicity: no two non-adjacent edges may intersect.
        let n = ring.len();
        let edge = |i: usize| Segment::new(ring[i].clone(), ring[(i + 1) % n].clone());
        for i in 0..n {
            for j in i + 1..n {
                let adjacent = j == i + 1 || (i == 0 && j == n - 1);
                if adjacent {
                    continue;
                }
                if edge(i).intersects(&edge(j)) {
                    return Err(GeometryError::SelfIntersecting);
                }
            }
        }
        Ok(Geometry::Polygon(ring))
    }

    /// The segments making up the geometry (empty for a point).
    pub fn segments(&self) -> Vec<Segment> {
        match self {
            Geometry::Point(_) => Vec::new(),
            Geometry::Polyline(pts) => pts
                .windows(2)
                .map(|w| Segment::new(w[0].clone(), w[1].clone()))
                .collect(),
            Geometry::Polygon(ring) => (0..ring.len())
                .map(|i| Segment::new(ring[i].clone(), ring[(i + 1) % ring.len()].clone()))
                .collect(),
        }
    }

    /// The vertices of the geometry.
    pub fn points(&self) -> &[Point] {
        match self {
            Geometry::Point(p) => std::slice::from_ref(p),
            Geometry::Polyline(pts) => pts,
            Geometry::Polygon(ring) => ring,
        }
    }

    /// Exact squared distance between two geometries' *boundaries* (for a
    /// polygon, containment also counts as distance zero).
    pub fn dist2(&self, other: &Geometry) -> Rat {
        // Point-in-polygon containment gives distance zero even without
        // boundary contact.
        if self.contains_point_of(other) || other.contains_point_of(self) {
            return Rat::zero();
        }
        let (sa, sb) = (self.segments(), other.segments());
        match (self, other) {
            (Geometry::Point(p), Geometry::Point(q)) => p.dist2(q),
            (Geometry::Point(p), _) => sb
                .iter()
                .map(|s| s.dist2_to_point(p))
                .min()
                .expect("non-point geometry has segments"),
            (_, Geometry::Point(q)) => sa
                .iter()
                .map(|s| s.dist2_to_point(q))
                .min()
                .expect("non-point geometry has segments"),
            _ => sa
                .iter()
                .flat_map(|s1| sb.iter().map(move |s2| s1.dist2_to_segment(s2)))
                .min()
                .expect("both geometries have segments"),
        }
    }

    /// For polygons: whether any vertex of `other` lies strictly inside.
    fn contains_point_of(&self, other: &Geometry) -> bool {
        match self {
            Geometry::Polygon(_) => other.points().iter().any(|p| self.contains_point(p)),
            _ => false,
        }
    }

    /// Point-in-geometry test: on a point it is equality, on a polyline it
    /// is incidence, on a polygon it is (closed) containment, decided
    /// exactly by the even–odd crossing rule.
    pub fn contains_point(&self, p: &Point) -> bool {
        match self {
            Geometry::Point(q) => p == q,
            Geometry::Polyline(_) => self.segments().iter().any(|s| s.contains(p)),
            Geometry::Polygon(ring) => {
                // Boundary counts as inside.
                if self.segments().iter().any(|s| s.contains(p)) {
                    return true;
                }
                // Even–odd rule with exact arithmetic: count edges that
                // cross the upward ray from p.
                let mut inside = false;
                let n = ring.len();
                for i in 0..n {
                    let a = &ring[i];
                    let b = &ring[(i + 1) % n];
                    let (ya, yb) = (&a.y, &b.y);
                    // Does edge straddle the horizontal line through p?
                    if (ya > &p.y) != (yb > &p.y) {
                        // x coordinate of the crossing at height p.y
                        let t = (&p.y - ya) / (yb - ya);
                        let cx = &a.x + &(&(&b.x - &a.x) * &t);
                        if cx > p.x {
                            inside = !inside;
                        }
                    }
                }
                inside
            }
        }
    }

    /// Axis-aligned bounding box as `f64` (conservative, for index keys).
    pub fn bbox_f64(&self) -> ([f64; 2], [f64; 2]) {
        let mut lo = [f64::INFINITY; 2];
        let mut hi = [f64::NEG_INFINITY; 2];
        for p in self.points() {
            let (x, y) = (p.x.to_f64(), p.y.to_f64());
            lo[0] = lo[0].min(x);
            lo[1] = lo[1].min(y);
            hi[0] = hi[0].max(x);
            hi[1] = hi[1].max(y);
        }
        // Nudge outward one ulp-ish step so rational→f64 rounding can never
        // shrink the box.
        let eps = 1e-9;
        ([lo[0] - eps, lo[1] - eps], [hi[0] + eps, hi[1] + eps])
    }
}

/// A feature: an identifier plus a geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feature {
    /// The feature identifier (the key of a spatial constraint relation).
    pub id: String,
    /// The extent.
    pub geom: Geometry,
}

impl Feature {
    /// A feature with the given id and geometry.
    pub fn new(id: impl Into<String>, geom: Geometry) -> Feature {
        Feature { id: id.into(), geom }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: i64, y: i64) -> Point {
        Point::from_ints(x, y)
    }

    #[test]
    fn polygon_validation() {
        assert!(Geometry::polygon(vec![p(0, 0), p(1, 0)]).is_err());
        assert!(matches!(
            Geometry::polygon(vec![p(0, 0), p(1, 1), p(2, 2)]),
            Err(GeometryError::DegeneratePolygon)
        ));
        // An (asymmetric) bowtie is self-intersecting; the symmetric one
        // has zero signed area and is caught as degenerate instead.
        assert!(matches!(
            Geometry::polygon(vec![p(0, 0), p(4, 4), p(4, 0), p(0, 2)]),
            Err(GeometryError::SelfIntersecting)
        ));
        assert!(matches!(
            Geometry::polygon(vec![p(0, 0), p(2, 2), p(2, 0), p(0, 2)]),
            Err(GeometryError::DegeneratePolygon)
        ));
        // Clockwise ring is normalized to counter-clockwise.
        let g = Geometry::polygon(vec![p(0, 0), p(0, 2), p(2, 2), p(2, 0)]).unwrap();
        match &g {
            Geometry::Polygon(ring) => assert!(signed_area2(ring).is_positive()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn polyline_validation() {
        assert!(Geometry::polyline(vec![p(0, 0)]).is_err());
        let g = Geometry::polyline(vec![p(0, 0), p(1, 0), p(1, 1)]).unwrap();
        assert_eq!(g.segments().len(), 2);
    }

    #[test]
    fn point_in_polygon() {
        let square = Geometry::polygon(vec![p(0, 0), p(4, 0), p(4, 4), p(0, 4)]).unwrap();
        assert!(square.contains_point(&p(2, 2)));
        assert!(square.contains_point(&p(0, 0))); // corner
        assert!(square.contains_point(&p(2, 0))); // edge
        assert!(!square.contains_point(&p(5, 2)));
        assert!(!square.contains_point(&p(-1, 2)));
        // Concave: an L-shape.
        let ell = Geometry::polygon(vec![
            p(0, 0),
            p(4, 0),
            p(4, 2),
            p(2, 2),
            p(2, 4),
            p(0, 4),
        ])
        .unwrap();
        assert!(ell.contains_point(&p(1, 3)));
        assert!(!ell.contains_point(&p(3, 3))); // in the notch
    }

    #[test]
    fn distances() {
        let a = Geometry::Point(p(0, 0));
        let b = Geometry::Point(p(3, 4));
        assert_eq!(a.dist2(&b), Rat::from_int(25));

        let square = Geometry::polygon(vec![p(0, 0), p(2, 0), p(2, 2), p(0, 2)]).unwrap();
        let far = Geometry::Point(p(5, 1));
        assert_eq!(square.dist2(&far), Rat::from_int(9));
        // A point inside the polygon has distance zero.
        let inside = Geometry::Point(p(1, 1));
        assert_eq!(square.dist2(&inside), Rat::zero());

        let road = Geometry::polyline(vec![p(0, 5), p(10, 5)]).unwrap();
        assert_eq!(square.dist2(&road), Rat::from_int(9));
        // Polygon containing a polyline vertex.
        let crossing = Geometry::polyline(vec![p(1, 1), p(1, 10)]).unwrap();
        assert_eq!(square.dist2(&crossing), Rat::zero());
    }

    #[test]
    fn bbox() {
        let g = Geometry::polyline(vec![p(1, 2), p(5, -3)]).unwrap();
        let (lo, hi) = g.bbox_f64();
        assert!(lo[0] <= 1.0 && hi[0] >= 5.0);
        assert!(lo[1] <= -3.0 && hi[1] >= 2.0);
    }
}
