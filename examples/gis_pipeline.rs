//! A GIS round trip (§6.2): digitized WKT in, constraint queries in the
//! middle, WKT and a durable database out.
//!
//! Run with: `cargo run -p cqa --example gis_pipeline`

use cqa::core::{exec, optimizer, Catalog};
use cqa::core::plan::{CmpOp, Plan, Selection};
use cqa::lang::db::{open_catalog, save_catalog};
use cqa::lang::schema_def::parse_cdb;
use cqa::spatial::convert::dnf_to_geometries;
use cqa::spatial::decompose::geometry_to_dnf;
use cqa::spatial::wkt::to_wkt;
use cqa::constraints::Var;

fn main() {
    // 1. "Digitized" input: features arrive as WKT, as a GIS would emit.
    let mut catalog = Catalog::new();
    parse_cdb(
        r#"
spatial Parcels {
  feature "farm"   wkt "POLYGON ((0 0, 30 0, 30 20, 0 20, 0 0))";
  feature "forest" wkt "POLYGON ((40 0, 70 0, 70 30, 55 30, 55 15, 40 15, 40 0))";
  feature "pond"   wkt "POLYGON ((10 25, 20 25, 20 35, 10 35, 10 25))";
}
"#,
    )
    .unwrap()
    .load_into(&mut catalog);

    // 2. Constraint middle layer: parcels become a spatial constraint
    //    relation and an algebra query slices them.
    let plan = Plan::spatial_scan("Parcels")
        .select(Selection::all().cmp_int("y", CmpOp::Ge, 10).cmp_int("y", CmpOp::Le, 28));
    let plan = optimizer::optimize(&plan, &catalog).unwrap();
    let (band, trace) = exec::execute_traced(&plan, &catalog).unwrap();
    println!("Parcel pieces intersecting the survey band 10 <= y <= 28:");
    print!("{}", trace);
    print!("{}", band);

    // 3. Back out to geometry: each surviving constraint tuple converts to
    //    a polygon for display, then to WKT for interchange.
    let (vx, vy) = (Var(1), Var(2));
    println!("\nAs WKT (per piece):");
    for tuple in band.tuples() {
        let dnf = cqa::constraints::Dnf::from_conjunction(tuple.constraint().clone());
        for geom in dnf_to_geometries(&dnf, vx, vy) {
            let id = tuple.value(0).and_then(|v| v.as_str().map(str::to_string));
            println!("  {}: {}", id.unwrap_or_default(), to_wkt(&geom));
        }
    }

    // 4. Durability: save the whole catalog, reopen, re-query — identical.
    let dir = std::env::temp_dir().join(format!("cqa_gis_{}", std::process::id()));
    save_catalog(&catalog, &dir).unwrap();
    let reopened = open_catalog(&dir).unwrap();
    let band2 = exec::execute(&plan, &reopened).unwrap();
    assert_eq!(band, band2);
    println!("\nsaved to {:?}, reopened, and re-queried: identical results", dir);
    std::fs::remove_dir_all(&dir).unwrap();

    // 5. Sanity: the vector→constraint→vector loop is lossless for the
    //    original features.
    for (id, geom) in catalog.get_spatial("Parcels").unwrap().geometries() {
        let dnf = geometry_to_dnf(geom, Var(0), Var(1));
        let pieces = dnf_to_geometries(&dnf, Var(0), Var(1));
        assert!(!pieces.is_empty());
        let _ = id;
    }
    println!("vector -> constraint -> vector round trip verified for all parcels");
}
