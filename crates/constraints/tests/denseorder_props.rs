//! Property tests for the dense-order constraint class (§2.3 / Definition
//! 3): closure of quantifier elimination within the class, and agreement
//! of its satisfiability with the linear engine.


// Property suite: compiled only with `--features proptest` so the
// offline tier-1 run stays lean; see third_party/README.md.
#![cfg(feature = "proptest")]

use cqa_constraints::denseorder::{OrderAtom, OrderConjunction, Term};
use cqa_constraints::Var;
use cqa_num::Rat;
use proptest::prelude::*;

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0u32..4).prop_map(|i| Term::Var(Var(i))),
        (-3i64..4).prop_map(|c| Term::Const(Rat::from_int(c))),
    ]
}

fn arb_atom() -> impl Strategy<Value = OrderAtom> {
    (arb_term(), 0u8..3, arb_term()).prop_map(|(l, rel, r)| match rel {
        0 => OrderAtom::lt(l, r),
        1 => OrderAtom::le(l, r),
        _ => OrderAtom::eq(l, r),
    })
}

fn arb_conj() -> impl Strategy<Value = OrderConjunction> {
    prop::collection::vec(arb_atom(), 0..6).prop_map(OrderConjunction::from_atoms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The headline property: eliminating any variable from a dense-order
    /// conjunction never leaves the class — the closure requirement of
    /// §2.4, executable.
    #[test]
    fn elimination_closed_in_class(conj in arb_conj(), v in 0u32..4) {
        let out = conj.eliminate([Var(v)]);
        prop_assert!(out.is_ok(), "left the class: {:?}", out.err());
    }

    /// Eliminating all variables decides satisfiability consistently with
    /// the linear embedding.
    #[test]
    fn elimination_preserves_satisfiability(conj in arb_conj()) {
        let vars: Vec<Var> = (0..4).map(Var).collect();
        let out = conj.eliminate(vars).unwrap();
        prop_assert_eq!(out.is_satisfiable(), conj.is_satisfiable());
    }

    /// Elimination result is implied by the original (soundness of ∃).
    #[test]
    fn elimination_is_implied(conj in arb_conj(), v in 0u32..4) {
        if !conj.is_satisfiable() {
            return Ok(());
        }
        let out = conj.eliminate([Var(v)]).unwrap();
        let lin_in = conj.to_linear();
        for atom in out.atoms() {
            prop_assert!(
                lin_in.implies_atom(&atom.to_linear()),
                "{} not implied by {}", atom, conj
            );
        }
    }

    /// Round trip: every generated atom embeds into the linear class and
    /// comes back with identical semantics.
    #[test]
    fn atoms_roundtrip(atom in arb_atom()) {
        let lin = atom.to_linear();
        if lin.ground_truth().is_some() {
            return Ok(()); // ground atoms normalize away
        }
        let back = OrderAtom::from_linear(&lin).unwrap();
        prop_assert_eq!(back.to_linear(), lin);
    }
}
