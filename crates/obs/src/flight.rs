//! Flight recorder: crash-forensics dumps.
//!
//! When installed, the recorder captures a post-mortem artifact on two
//! trigger conditions:
//!
//! * **panic** — [`install_panic_hook`] chains a hook that dumps before
//!   the previous hook (usually the default backtrace printer) runs;
//! * **governor abort** — the exec layer calls [`record_abort`] when a
//!   query dies with `DeadlineExceeded` / `BudgetExceeded` / `Cancelled`.
//!
//! A dump is one JSON document, `flight-<unix_ms>-<n>.json`, containing
//! the newest N spans (peeked, never drained — the operator's trace
//! survives the dump), a full metrics snapshot, and whatever context the
//! host registered (the shell stores the active query's plan tree under
//! `"active_query"`). The file is written to a temp name and renamed, so
//! a reader never observes a half-written dump. Everything renders
//! through [`crate::json::Json`], so dumps round-trip through
//! [`crate::json::parse`].

use crate::error::ObsError;
use crate::json::Json;
use crate::span::{peek_spans, Span};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, Once, OnceLock, PoisonError};

/// Default span-tail length captured per dump.
pub const DEFAULT_SPAN_TAIL: usize = 256;

struct Config {
    dir: PathBuf,
    span_tail: usize,
}

static INSTALLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);
static HOOK: Once = Once::new();

fn config() -> &'static Mutex<Option<Config>> {
    static CFG: OnceLock<Mutex<Option<Config>>> = OnceLock::new();
    CFG.get_or_init(|| Mutex::new(None))
}

fn context() -> &'static Mutex<Vec<(String, Json)>> {
    static CTX: OnceLock<Mutex<Vec<(String, Json)>>> = OnceLock::new();
    CTX.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether a recorder is installed (one relaxed load; exec checks this
/// before building abort payloads).
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Installs the recorder: dumps go to `dir` (created if missing) and
/// carry the newest `span_tail` spans.
pub fn install(dir: impl Into<PathBuf>, span_tail: usize) -> std::io::Result<()> {
    let dir = dir.into();
    std::fs::create_dir_all(&dir)?;
    *lock(config()) = Some(Config { dir, span_tail: span_tail.max(1) });
    INSTALLED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Uninstalls the recorder (context is kept; a later reinstall resumes).
pub fn uninstall() {
    INSTALLED.store(false, Ordering::Relaxed);
    *lock(config()) = None;
}

/// Upserts one context entry carried verbatim in every future dump (the
/// shell stores the active query's plan tree here).
pub fn set_context(key: &str, value: Json) {
    let mut ctx = lock(context());
    if let Some(slot) = ctx.iter_mut().find(|(k, _)| k == key) {
        slot.1 = value;
    } else {
        ctx.push((key.to_string(), value));
    }
}

/// Removes one context entry.
pub fn clear_context(key: &str) {
    lock(context()).retain(|(k, _)| k != key);
}

fn span_json(s: &Span) -> Json {
    Json::Obj(vec![
        ("seq".into(), Json::from_u64(s.seq)),
        ("kind".into(), Json::str(s.kind)),
        ("label".into(), Json::str(s.label.clone())),
        ("elapsed_ns".into(), Json::from_u64(s.elapsed_ns)),
        (
            "counters".into(),
            Json::Obj(s.counters.iter().map(|(n, v)| (n.to_string(), Json::from_u64(*v))).collect()),
        ),
    ])
}

fn build_dump(reason: &str, span_tail: usize) -> Json {
    let trace = peek_spans(span_tail);
    Json::Obj(vec![
        ("schema".into(), Json::from_u64(1)),
        ("kind".into(), Json::str("flight")),
        ("reason".into(), Json::str(reason)),
        ("ts_ms".into(), Json::from_u64(crate::eventlog::now_ms())),
        ("spans_dropped".into(), Json::from_u64(trace.dropped)),
        ("spans".into(), Json::Arr(trace.spans.iter().map(span_json).collect())),
        ("metrics".into(), crate::metrics::snapshot().to_json()),
        ("context".into(), Json::Obj(lock(context()).clone())),
    ])
}

/// Writes one dump now. Errors are typed ([`ObsError::Io`]); callers on
/// crash paths use [`record_abort`], which swallows them.
pub fn dump(reason: &str) -> Result<PathBuf, ObsError> {
    let (dir, span_tail) = {
        let cfg = lock(config());
        let Some(c) = cfg.as_ref() else {
            return Err(ObsError::Io { op: "flight dump", msg: "recorder not installed".into() });
        };
        (c.dir.clone(), c.span_tail)
    };
    let doc = build_dump(reason, span_tail);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let name = format!("flight-{}-{}.json", crate::eventlog::now_ms(), n);
    let path = dir.join(&name);
    let tmp = dir.join(format!(".{}.tmp", name));
    std::fs::write(&tmp, doc.render()).map_err(|e| ObsError::io("flight dump", e))?;
    std::fs::rename(&tmp, &path).map_err(|e| ObsError::io("flight dump", e))?;
    Ok(path)
}

/// Best-effort dump on a governor abort (or any other "the query died"
/// site): no-op when the recorder is uninstalled, and I/O failures are
/// counted rather than raised — forensics must never turn a typed query
/// error into a second failure.
pub fn record_abort(reason: &str) -> Option<PathBuf> {
    if !installed() {
        return None;
    }
    match dump(reason) {
        Ok(p) => Some(p),
        Err(_) => {
            crate::metrics::counter("obs.flight.errors").inc();
            None
        }
    }
}

/// Installs a process-wide panic hook (once) that writes a flight dump
/// before delegating to the previously installed hook. Safe to call
/// repeatedly; dumps only happen while a recorder is installed.
pub fn install_panic_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            let at = info.location().map(|l| format!(" at {}:{}", l.file(), l.line()));
            let _ = record_abort(&format!("panic: {}{}", msg, at.unwrap_or_default()));
            prev(info);
        }));
    });
}

/// Lists the dump files currently in `dir`, newest-named last
/// (lexicographic order matches the timestamped names).
pub fn list_dumps(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flight-") && n.ends_with(".json"))
        })
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{record_span, reset_spans, set_spans_enabled};

    // Global recorder state: one lifecycle test, mirroring the span-ring
    // and event-log test strategy.
    #[test]
    fn dump_roundtrips_and_panic_hook_fires() {
        let _guard = crate::test_guard();
        let dir =
            std::env::temp_dir().join(format!("cqa-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        assert!(!installed());
        assert!(record_abort("ignored").is_none(), "uninstalled recorder is a no-op");
        assert!(dump("x").is_err());

        install(&dir, 8).unwrap();
        set_spans_enabled(true);
        reset_spans();
        for i in 0..12u64 {
            record_span("test.flight", format!("s{}", i), 0, vec![("rows", i)]);
        }
        set_context("active_query", Json::str("Join\n  Scan \"R\"\n  Scan \"S\""));
        let p = dump("governor abort: deadline exceeded").unwrap();
        let doc = crate::json::parse(&std::fs::read_to_string(&p).unwrap()).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_num(), Some(1.0));
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("flight"));
        let spans = doc.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans.len(), 8, "span tail is bounded");
        assert_eq!(spans.last().unwrap().get("label").unwrap().as_str(), Some("s11"));
        assert!(doc
            .get("context")
            .unwrap()
            .get("active_query")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("Join"));
        assert!(
            matches!(doc.get("metrics"), Some(Json::Obj(_))),
            "metrics snapshot embedded as an object"
        );
        // Dumping peeked, didn't drain: the ring still holds the spans.
        assert_eq!(crate::span::peek_spans(100).spans.len(), 12);

        // Panic hook writes a second dump before unwinding continues.
        install_panic_hook();
        let before = list_dumps(&dir).len();
        let r = std::panic::catch_unwind(|| panic!("injected test panic"));
        assert!(r.is_err());
        let dumps = list_dumps(&dir);
        assert_eq!(dumps.len(), before + 1);
        let doc =
            crate::json::parse(&std::fs::read_to_string(dumps.last().unwrap()).unwrap()).unwrap();
        let reason = doc.get("reason").unwrap().as_str().unwrap();
        assert!(reason.contains("injected test panic"), "{}", reason);

        uninstall();
        clear_context("active_query");
        set_spans_enabled(false);
        reset_spans();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
