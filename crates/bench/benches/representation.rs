//! §6 representation benchmarks: projection evaluated on the vector model
//! (Example 8 — vertex extrema) vs on the constraint model (quantifier
//! elimination over the convex decomposition), and the cost of converting
//! between the two representations.

use criterion::{criterion_group, criterion_main, Criterion};
use cqa::constraints::Var;
use cqa::num::Rat;
use cqa::spatial::convert::{dnf_to_geometries, project_extent};
use cqa::spatial::decompose::geometry_to_dnf;
use cqa::spatial::{Geometry, Point};

/// A comb-shaped (highly concave) polygon with `teeth` teeth.
fn comb(teeth: usize) -> Geometry {
    let mut ring = vec![Point::from_ints(0, 0)];
    for i in 0..teeth {
        let x = (i * 4) as i64;
        ring.push(Point::from_ints(x + 2, 0));
        ring.push(Point::from_ints(x + 2, 8));
        ring.push(Point::from_ints(x + 3, 8));
        ring.push(Point::from_ints(x + 3, 0));
    }
    let right = (teeth * 4) as i64;
    ring.push(Point::from_ints(right, 0));
    ring.push(Point::from_ints(right, -4));
    ring.push(Point::from_ints(0, -4));
    Geometry::polygon(ring).unwrap()
}

fn bench_projection(c: &mut Criterion) {
    let (vx, vy) = (Var(0), Var(1));
    let geom = comb(12);
    let dnf = geometry_to_dnf(&geom, vx, vy);

    c.bench_function("project_vector_model", |b| b.iter(|| project_extent(&geom, 0)));
    c.bench_function("project_constraint_model", |b| {
        b.iter(|| {
            let projected = dnf.eliminate([vy]);
            let mut lo: Option<Rat> = None;
            let mut hi: Option<Rat> = None;
            for conj in projected.conjunctions() {
                let bounds = conj.bounds(vx);
                let l = bounds.lo().unwrap().value.clone();
                let h = bounds.hi().unwrap().value.clone();
                lo = Some(lo.map_or(l.clone(), |v: Rat| v.min(l)));
                hi = Some(hi.map_or(h.clone(), |v: Rat| v.max(h)));
            }
            (lo, hi)
        })
    });
}

fn bench_conversion(c: &mut Criterion) {
    let (vx, vy) = (Var(0), Var(1));
    let geom = comb(12);
    c.bench_function("vector_to_constraint", |b| b.iter(|| geometry_to_dnf(&geom, vx, vy)));
    let dnf = geometry_to_dnf(&geom, vx, vy);
    c.bench_function("constraint_to_vector", |b| b.iter(|| dnf_to_geometries(&dnf, vx, vy)));
}

criterion_group!(benches, bench_projection, bench_conversion);
criterion_main!(benches);
