//! Property-based tests for the R\*-tree: random interleavings of inserts
//! and removes, checked against a linear-scan oracle, with structural
//! invariants verified after every mutation.


// Property suite: compiled only with `--features proptest` so the
// offline tier-1 run stays lean; see third_party/README.md.
#![cfg(feature = "proptest")]

use cqa_index::{RStarParams, RStarTree, Rect};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert { x: i16, y: i16, w: u8, h: u8 },
    /// Remove the i-th live entry (mod current size).
    Remove(u16),
    Query { x: i16, y: i16, w: u8, h: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<i16>(), any::<i16>(), any::<u8>(), any::<u8>())
            .prop_map(|(x, y, w, h)| Op::Insert { x, y, w, h }),
        1 => any::<u16>().prop_map(Op::Remove),
        2 => (any::<i16>(), any::<i16>(), any::<u8>(), any::<u8>())
            .prop_map(|(x, y, w, h)| Op::Query { x, y, w, h }),
    ]
}

fn rect(x: i16, y: i16, w: u8, h: u8) -> Rect<2> {
    let (x, y) = (x as f64, y as f64);
    Rect::new([x, y], [x + w as f64, y + h as f64])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_linear_scan_oracle(ops in prop::collection::vec(arb_op(), 0..120)) {
        let mut tree: RStarTree<2, u64> = RStarTree::new(RStarParams::with_max(5));
        let mut oracle: Vec<(Rect<2>, u64)> = Vec::new();
        let mut next_id = 0u64;
        for op in ops {
            match op {
                Op::Insert { x, y, w, h } => {
                    let r = rect(x, y, w, h);
                    tree.insert(r, next_id);
                    oracle.push((r, next_id));
                    next_id += 1;
                }
                Op::Remove(i) => {
                    if oracle.is_empty() {
                        continue;
                    }
                    let idx = i as usize % oracle.len();
                    let (r, id) = oracle.swap_remove(idx);
                    prop_assert!(tree.remove(&r, &id), "remove of live entry must succeed");
                }
                Op::Query { x, y, w, h } => {
                    let q = rect(x, y, w, h);
                    let mut got = tree.search(&q);
                    got.sort_unstable();
                    let mut want: Vec<u64> = oracle
                        .iter()
                        .filter(|(r, _)| r.intersects(&q))
                        .map(|(_, id)| *id)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
            }
            tree.check_invariants();
            prop_assert_eq!(tree.len(), oracle.len());
        }
        // Drain everything: the tree must return to the empty state.
        for (r, id) in oracle {
            prop_assert!(tree.remove(&r, &id));
            tree.check_invariants();
        }
        prop_assert!(tree.is_empty());
        prop_assert_eq!(tree.height(), 1);
    }

    #[test]
    fn bulk_load_equals_incremental(entries in prop::collection::vec(
        (any::<i16>(), any::<i16>(), any::<u8>(), any::<u8>()), 0..200
    )) {
        let items: Vec<(Rect<2>, u64)> = entries
            .iter()
            .enumerate()
            .map(|(i, &(x, y, w, h))| (rect(x, y, w, h), i as u64))
            .collect();
        let bulk = cqa_index::bulk::str_load(RStarParams::with_max(6), items.clone());
        bulk.check_invariants();
        let mut incr: RStarTree<2, u64> = RStarTree::new(RStarParams::with_max(6));
        for (r, id) in &items {
            incr.insert(*r, *id);
        }
        let q = Rect::new([-10000.0, -10000.0], [10000.0, 10000.0]);
        let mut a = bulk.search(&q);
        let mut b = incr.search(&q);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
