//! Whole-feature operator benchmarks (§4): Buffer-Join and k-Nearest over
//! growing feature sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqa::num::Rat;
use cqa::spatial::ops::{buffer_join, k_nearest};
use cqa::spatial::{Feature, Geometry, Point, SpatialRelation};

fn grid_points(n: usize, offset: i64) -> SpatialRelation {
    SpatialRelation::from_features((0..n).map(|i| {
        let x = (i % 32) as i64 * 10 + offset;
        let y = (i / 32) as i64 * 10 + offset;
        Feature::new(format!("p{}", i), Geometry::Point(Point::from_ints(x, y)))
    }))
}

fn roads(n: usize) -> SpatialRelation {
    SpatialRelation::from_features((0..n).map(|i| {
        let y = i as i64 * 25;
        Feature::new(
            format!("r{}", i),
            Geometry::polyline(vec![Point::from_ints(0, y), Point::from_ints(320, y + 7)]).unwrap(),
        )
    }))
}

fn bench_buffer_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_join");
    for &n in &[64usize, 256] {
        let cities = grid_points(n, 3);
        let rds = roads(12);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| buffer_join(&rds, &cities, &Rat::from_int(5)))
        });
    }
    group.finish();
}

fn bench_k_nearest(c: &mut Criterion) {
    let mut group = c.benchmark_group("k_nearest");
    for &n in &[64usize, 256] {
        let cities = grid_points(n, 3);
        let rds = roads(12);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| k_nearest(&rds, &cities, 3))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_buffer_join, bench_k_nearest);
criterion_main!(benches);
