//! Execution options and statistics for the parallel, filter-and-refine
//! evaluator.
//!
//! Two independent switches, both defaulting to "on":
//!
//! * **Parallelism** ([`ExecOptions::threads`]): operators fan their outer
//!   tuple loop out over the deterministic chunked executor in
//!   [`cqa_num::par`]. Results are bit-identical for every thread count.
//! * **Cheap filter** ([`ExecOptions::bbox_filter`]): operators consult
//!   conservative [`cqa_constraints::QuickBox`] bounds before running
//!   exact (big-rational) satisfiability. For `select` and `join` the
//!   filter only skips work whose outcome is already decided, so output
//!   is bit-identical with the filter off; for `difference` it prunes
//!   provably-redundant subtrahends, which preserves semantics but may
//!   simplify the syntactic output.
//!
//! [`ExecStats`] counts filter consultations and rejections with atomics,
//! so the same counters work unchanged under the parallel executor.

use crate::governor::Governor;
use std::sync::atomic::{AtomicU64, Ordering};

pub use cqa_num::par::{
    effective_threads, flat_map_chunks, map_chunks, try_flat_map_chunks, try_map_chunks,
    CancelToken, Cancelled,
};

/// Evaluation knobs, threaded from the shell/driver down to operators.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads for operator-level data parallelism; `0` means all
    /// hardware threads.
    pub threads: usize,
    /// Whether operators run the cheap bounding-box filter before exact
    /// constraint arithmetic.
    pub bbox_filter: bool,
    /// Cancellation token, wall-clock deadline, and resource budgets.
    /// Defaults to unlimited — a plain run never observes it.
    pub governor: Governor,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { threads: 0, bbox_filter: true, governor: Governor::default() }
    }
}

impl ExecOptions {
    /// The pre-parallelism baseline: one thread, no filtering. Useful as
    /// the reference side of determinism checks and benchmarks.
    pub fn serial() -> ExecOptions {
        ExecOptions { threads: 1, bbox_filter: false, ..ExecOptions::default() }
    }

    /// Default options with an explicit thread count.
    pub fn with_threads(threads: usize) -> ExecOptions {
        ExecOptions { threads, ..ExecOptions::default() }
    }

    /// The resolved worker count (`0` → hardware parallelism).
    pub fn effective_threads(&self) -> usize {
        effective_threads(self.threads)
    }
}

/// Filter counters for one evaluation (or one plan node, in traces).
///
/// Atomic so operator workers can record from any thread; totals are
/// order-independent, hence identical to a serial run's.
#[derive(Debug, Default)]
pub struct ExecStats {
    filter_checked: AtomicU64,
    filter_rejected: AtomicU64,
    /// Peak intermediate atom count seen by any Fourier–Motzkin
    /// elimination (a gauge, combined by max rather than sum).
    fm_peak_atoms: AtomicU64,
}

impl ExecStats {
    /// Fresh zeroed counters.
    pub fn new() -> ExecStats {
        ExecStats::default()
    }

    /// Records one filter consultation and whether it rejected.
    pub fn record(&self, rejected: bool) {
        self.filter_checked.fetch_add(1, Ordering::Relaxed);
        if rejected {
            self.filter_rejected.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// How many candidates consulted the filter.
    pub fn checked(&self) -> u64 {
        self.filter_checked.load(Ordering::Relaxed)
    }

    /// How many candidates the filter rejected (exact check skipped).
    pub fn rejected(&self) -> u64 {
        self.filter_rejected.load(Ordering::Relaxed)
    }

    /// Peak intermediate Fourier–Motzkin atom count observed so far.
    pub fn fm_peak(&self) -> u64 {
        self.fm_peak_atoms.load(Ordering::Relaxed)
    }

    /// The cell [`cqa_constraints::FmBudget`] records its peak into.
    pub(crate) fn fm_peak_cell(&self) -> &AtomicU64 {
        &self.fm_peak_atoms
    }

    /// Folds another counter set into this one (counters add, gauges max).
    pub fn absorb(&self, other: &ExecStats) {
        self.filter_checked.fetch_add(other.checked(), Ordering::Relaxed);
        self.filter_rejected.fetch_add(other.rejected(), Ordering::Relaxed);
        self.fm_peak_atoms.fetch_max(other.fm_peak(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_serial() {
        let d = ExecOptions::default();
        assert_eq!(d.threads, 0);
        assert!(d.bbox_filter);
        assert!(d.effective_threads() >= 1);
        let s = ExecOptions::serial();
        assert_eq!(s.threads, 1);
        assert!(!s.bbox_filter);
        assert_eq!(ExecOptions::with_threads(3).threads, 3);
    }

    #[test]
    fn stats_count_and_absorb() {
        let s = ExecStats::new();
        s.record(false);
        s.record(true);
        s.record(true);
        assert_eq!(s.checked(), 3);
        assert_eq!(s.rejected(), 2);
        let t = ExecStats::new();
        t.record(true);
        t.absorb(&s);
        assert_eq!(t.checked(), 4);
        assert_eq!(t.rejected(), 3);
    }

    #[test]
    fn fm_peak_is_a_gauge() {
        let s = ExecStats::new();
        s.fm_peak_cell().fetch_max(7, Ordering::Relaxed);
        let t = ExecStats::new();
        t.fm_peak_cell().fetch_max(3, Ordering::Relaxed);
        t.absorb(&s);
        assert_eq!(t.fm_peak(), 7, "absorb takes the max, not the sum");
    }
}
