//! Tokenizer for query scripts and `.cdb` files.

use cqa_num::Rat;
use std::fmt;

/// A lexical or syntactic error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Description.
    pub msg: String,
}

impl LangError {
    pub(crate) fn new(line: usize, col: usize, msg: impl Into<String>) -> LangError {
        LangError { line, col, msg: msg.into() }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for LangError {}

/// A token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier (keywords are recognized contextually by the parser).
    Ident(String),
    /// String literal (quotes removed).
    Str(String),
    /// Numeric literal (decimal or integer), kept exact.
    Num(Rat),
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/` (inside numeric literals like `1/3` handled by parser as division of constants)
    Slash,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// End of one logical line (newline outside braces/parens).
    Newline,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier {:?}", s),
            Tok::Str(s) => write!(f, "string {:?}", s),
            Tok::Num(n) => write!(f, "number {}", n),
            Tok::Eq => f.write_str("'='"),
            Tok::Ne => f.write_str("'<>'"),
            Tok::Le => f.write_str("'<='"),
            Tok::Lt => f.write_str("'<'"),
            Tok::Ge => f.write_str("'>='"),
            Tok::Gt => f.write_str("'>'"),
            Tok::Plus => f.write_str("'+'"),
            Tok::Minus => f.write_str("'-'"),
            Tok::Star => f.write_str("'*'"),
            Tok::Slash => f.write_str("'/'"),
            Tok::Comma => f.write_str("','"),
            Tok::Semi => f.write_str("';'"),
            Tok::Colon => f.write_str("':'"),
            Tok::LParen => f.write_str("'('"),
            Tok::RParen => f.write_str("')'"),
            Tok::LBrace => f.write_str("'{'"),
            Tok::RBrace => f.write_str("'}'"),
            Tok::Newline => f.write_str("end of line"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The kind.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Tokenizes input. Newlines become [`Tok::Newline`] tokens only at nesting
/// depth zero, so multi-line `{ … }` blocks parse naturally while query
/// scripts stay line-oriented.
pub fn lex(input: &str) -> Result<Vec<Token>, LangError> {
    let mut out: Vec<Token> = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut depth = 0usize;
    let mut chars = input.chars().peekable();

    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            out.push(Token { tok: $tok, line: $l, col: $c })
        };
    }

    while let Some(&c) = chars.peek() {
        let (tl, tc) = (line, col);
        match c {
            '\n' => {
                chars.next();
                if depth == 0 {
                    // Collapse runs of newlines.
                    if !matches!(out.last().map(|t| &t.tok), Some(Tok::Newline) | None) {
                        push!(Tok::Newline, tl, tc);
                    }
                }
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                chars.next();
                col += 1;
            }
            '#' => {
                // Comment to end of line.
                while let Some(&c2) = chars.peek() {
                    if c2 == '\n' {
                        break;
                    }
                    chars.next();
                    col += 1;
                }
            }
            '"' => {
                chars.next();
                col += 1;
                let mut s = String::new();
                loop {
                    match chars.next() {
                        None | Some('\n') => {
                            return Err(LangError::new(tl, tc, "unterminated string literal"))
                        }
                        Some('"') => {
                            col += 1;
                            break;
                        }
                        Some(c2) => {
                            s.push(c2);
                            col += 1;
                        }
                    }
                }
                push!(Tok::Str(s), tl, tc);
            }
            '0'..='9' | '.' => {
                let mut s = String::new();
                while let Some(&c2) = chars.peek() {
                    if c2.is_ascii_digit() || c2 == '.' {
                        s.push(c2);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                let num = Rat::from_decimal_str(&s)
                    .map_err(|_| LangError::new(tl, tc, format!("bad number {:?}", s)))?;
                push!(Tok::Num(num), tl, tc);
            }
            c2 if c2.is_alphabetic() || c2 == '_' => {
                let mut s = String::new();
                while let Some(&c3) = chars.peek() {
                    if c3.is_alphanumeric() || c3 == '_' {
                        s.push(c3);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                push!(Tok::Ident(s), tl, tc);
            }
            '<' => {
                chars.next();
                col += 1;
                match chars.peek() {
                    Some('=') => {
                        chars.next();
                        col += 1;
                        push!(Tok::Le, tl, tc);
                    }
                    Some('>') => {
                        chars.next();
                        col += 1;
                        push!(Tok::Ne, tl, tc);
                    }
                    _ => push!(Tok::Lt, tl, tc),
                }
            }
            '>' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    push!(Tok::Ge, tl, tc);
                } else {
                    push!(Tok::Gt, tl, tc);
                }
            }
            '=' => {
                chars.next();
                col += 1;
                push!(Tok::Eq, tl, tc);
            }
            '+' => {
                chars.next();
                col += 1;
                push!(Tok::Plus, tl, tc);
            }
            '-' => {
                chars.next();
                col += 1;
                push!(Tok::Minus, tl, tc);
            }
            '*' => {
                chars.next();
                col += 1;
                push!(Tok::Star, tl, tc);
            }
            '/' => {
                chars.next();
                col += 1;
                push!(Tok::Slash, tl, tc);
            }
            ',' => {
                chars.next();
                col += 1;
                push!(Tok::Comma, tl, tc);
            }
            ';' => {
                chars.next();
                col += 1;
                push!(Tok::Semi, tl, tc);
            }
            ':' => {
                chars.next();
                col += 1;
                push!(Tok::Colon, tl, tc);
            }
            '(' => {
                chars.next();
                col += 1;
                push!(Tok::LParen, tl, tc);
            }
            ')' => {
                chars.next();
                col += 1;
                push!(Tok::RParen, tl, tc);
            }
            '{' => {
                chars.next();
                col += 1;
                depth += 1;
                push!(Tok::LBrace, tl, tc);
            }
            '}' => {
                chars.next();
                col += 1;
                depth = depth.saturating_sub(1);
                push!(Tok::RBrace, tl, tc);
            }
            other => {
                return Err(LangError::new(tl, tc, format!("unexpected character {:?}", other)))
            }
        }
    }
    if !matches!(out.last().map(|t| &t.tok), Some(Tok::Newline) | None) {
        push!(Tok::Newline, line, col);
    }
    push!(Tok::Eof, line, col);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Tok> {
        lex(input).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_statement() {
        let toks = kinds("R0 = select t >= 4 from H");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("R0".into()),
                Tok::Eq,
                Tok::Ident("select".into()),
                Tok::Ident("t".into()),
                Tok::Ge,
                Tok::Num(Rat::from_int(4)),
                Tok::Ident("from".into()),
                Tok::Ident("H".into()),
                Tok::Newline,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        let toks = kinds(r#"x = 2.5 y = "hello # not a comment""#);
        assert!(toks.contains(&Tok::Num(Rat::from_pair(5, 2))));
        assert!(toks.contains(&Tok::Str("hello # not a comment".into())));
    }

    #[test]
    fn comments_and_blank_lines_collapse() {
        let toks = kinds("# a comment\n\n\nR = join A and B # trailing\n");
        assert_eq!(toks.iter().filter(|t| matches!(t, Tok::Newline)).count(), 1);
    }

    #[test]
    fn newlines_inside_braces_ignored() {
        let toks = kinds("relation R {\n a: string;\n}\n");
        let newlines = toks.iter().filter(|t| matches!(t, Tok::Newline)).count();
        assert_eq!(newlines, 1, "only the final one");
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a <= b < c >= d > e <> f = g")
                .into_iter()
                .filter(|t| !matches!(t, Tok::Ident(_) | Tok::Newline | Tok::Eof))
                .collect::<Vec<_>>(),
            vec![Tok::Le, Tok::Lt, Tok::Ge, Tok::Gt, Tok::Ne, Tok::Eq]
        );
    }

    #[test]
    fn errors_have_positions() {
        let err = lex("ok\n  @bad").unwrap_err();
        assert_eq!((err.line, err.col), (2, 3));
        let err = lex("\"unterminated").unwrap_err();
        assert!(err.msg.contains("unterminated"));
        let err = lex("1.2.3").unwrap_err();
        assert!(err.msg.contains("bad number"));
    }
}
