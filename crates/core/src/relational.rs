//! A reference relational-algebra engine over finite tables.
//!
//! §3.2 claims: "Unlike the constraint data model, the heterogeneous data
//! model is completely upwardly compatible with the relational data model."
//! This module is the oracle that claim is tested against: a deliberately
//! naive implementation of the six operators on ordinary finite tables with
//! SQL-style nulls. The `upward_compat` integration tests run the same
//! queries through the CQA engine (on purely relational schemas) and
//! through this one, and compare results row for row.

use crate::error::{CoreError, Result};
use crate::ops::select::{CmpOp, Predicate, Selection};
use crate::value::Value;
use std::collections::BTreeSet;

/// A row of optional values (None = null).
pub type Row = Vec<Option<Value>>;

/// A finite relational table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelTable {
    attrs: Vec<String>,
    rows: Vec<Row>,
}

impl RelTable {
    /// An empty table with the given attribute names.
    pub fn new(attrs: Vec<String>) -> RelTable {
        RelTable { attrs, rows: Vec::new() }
    }

    /// The attribute names.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row (arity-checked).
    pub fn insert(&mut self, row: Row) {
        assert_eq!(row.len(), self.attrs.len(), "row arity mismatch");
        self.rows.push(row);
    }

    fn position(&self, name: &str) -> Result<usize> {
        self.attrs
            .iter()
            .position(|a| a == name)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_string()))
    }

    /// Set-semantics normalization: sorted, deduplicated rows.
    pub fn normalized(&self) -> RelTable {
        let set: BTreeSet<Row> = self.rows.iter().cloned().collect();
        RelTable { attrs: self.attrs.clone(), rows: set.into_iter().collect() }
    }

    /// `ς_ξ`: rows satisfying every predicate; nulls never satisfy one.
    pub fn select(&self, selection: &Selection) -> Result<RelTable> {
        let mut out = RelTable::new(self.attrs.clone());
        'rows: for row in &self.rows {
            for p in selection.predicates() {
                if !self.row_satisfies(row, p)? {
                    continue 'rows;
                }
            }
            out.rows.push(row.clone());
        }
        Ok(out)
    }

    fn row_satisfies(&self, row: &Row, p: &Predicate) -> Result<bool> {
        match p {
            Predicate::Str { attr, op, value } => {
                let i = self.position(attr)?;
                match &row[i] {
                    None => Ok(false),
                    Some(Value::Str(s)) => Ok(match op {
                        CmpOp::Eq => s == value,
                        CmpOp::Ne => s != value,
                        other => {
                            return Err(CoreError::BadPredicate(format!(
                                "operator {} is not defined on strings",
                                other
                            )))
                        }
                    }),
                    Some(_) => Err(CoreError::BadPredicate(format!(
                        "string predicate on non-string attribute {:?}",
                        attr
                    ))),
                }
            }
            Predicate::Linear { terms, constant, op } => {
                let mut acc = constant.clone();
                for (name, coeff) in terms {
                    let i = self.position(name)?;
                    match &row[i] {
                        None => return Ok(false),
                        Some(Value::Rat(v)) => acc += &(coeff * v),
                        Some(_) => {
                            return Err(CoreError::BadPredicate(format!(
                                "numeric predicate on string attribute {:?}",
                                name
                            )))
                        }
                    }
                }
                Ok(match op {
                    CmpOp::Eq => acc.is_zero(),
                    CmpOp::Ne => !acc.is_zero(),
                    CmpOp::Le => !acc.is_positive(),
                    CmpOp::Lt => acc.is_negative(),
                    CmpOp::Ge => !acc.is_negative(),
                    CmpOp::Gt => acc.is_positive(),
                })
            }
        }
    }

    /// `π_X` with duplicate elimination.
    pub fn project(&self, names: &[String]) -> Result<RelTable> {
        let idx: Vec<usize> = names.iter().map(|n| self.position(n)).collect::<Result<_>>()?;
        let mut out = RelTable::new(names.to_vec());
        for row in &self.rows {
            out.rows.push(idx.iter().map(|&i| row[i].clone()).collect());
        }
        Ok(out.normalized())
    }

    /// Natural join; shared attributes match by value, nulls never match.
    pub fn join(&self, other: &RelTable) -> Result<RelTable> {
        let shared: Vec<(usize, usize)> = self
            .attrs
            .iter()
            .enumerate()
            .filter_map(|(i, a)| other.attrs.iter().position(|b| b == a).map(|j| (i, j)))
            .collect();
        let right_extra: Vec<usize> = (0..other.attrs.len())
            .filter(|j| !shared.iter().any(|&(_, sj)| sj == *j))
            .collect();
        let mut attrs = self.attrs.clone();
        attrs.extend(right_extra.iter().map(|&j| other.attrs[j].clone()));
        let mut out = RelTable::new(attrs);
        for lr in &self.rows {
            for rr in &other.rows {
                let ok = shared.iter().all(|&(i, j)| {
                    matches!((&lr[i], &rr[j]), (Some(a), Some(b)) if a == b)
                });
                if ok {
                    let mut row = lr.clone();
                    row.extend(right_extra.iter().map(|&j| rr[j].clone()));
                    out.rows.push(row);
                }
            }
        }
        Ok(out)
    }

    /// `∪` with set semantics.
    pub fn union(&self, other: &RelTable) -> Result<RelTable> {
        if self.attrs != other.attrs {
            return Err(CoreError::SchemaMismatch("union over different attributes".into()));
        }
        let mut out = self.clone();
        out.rows.extend(other.rows.iter().cloned());
        Ok(out.normalized())
    }

    /// `ρ`.
    pub fn rename(&self, from: &str, to: &str) -> Result<RelTable> {
        if self.attrs.iter().any(|a| a == to) {
            return Err(CoreError::BadRename(format!("{:?} already exists", to)));
        }
        let i = self
            .position(from)
            .map_err(|_| CoreError::BadRename(format!("{:?} does not exist", from)))?;
        let mut out = self.clone();
        out.attrs[i] = to.to_string();
        Ok(out)
    }

    /// `−` with set semantics; nulls compare equal for row identity.
    pub fn difference(&self, other: &RelTable) -> Result<RelTable> {
        if self.attrs != other.attrs {
            return Err(CoreError::SchemaMismatch("difference over different attributes".into()));
        }
        let exclude: BTreeSet<&Row> = other.rows.iter().collect();
        let mut out = RelTable::new(self.attrs.clone());
        for row in &self.rows {
            if !exclude.contains(row) {
                out.rows.push(row.clone());
            }
        }
        Ok(out.normalized())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> RelTable {
        let mut t = RelTable::new(vec!["name".into(), "age".into()]);
        t.insert(vec![Some(Value::str("ann")), Some(Value::int(40))]);
        t.insert(vec![Some(Value::str("bob")), Some(Value::int(25))]);
        t.insert(vec![Some(Value::str("cat")), None]); // unknown age
        t
    }

    #[test]
    fn select_with_nulls() {
        let t = people();
        let forty = t.select(&Selection::all().cmp_int("age", CmpOp::Eq, 40)).unwrap();
        assert_eq!(forty.len(), 1, "cat's null age does not match (the paper's example)");
        let not_forty = t.select(&Selection::all().cmp_int("age", CmpOp::Ne, 40)).unwrap();
        assert_eq!(not_forty.len(), 1, "null fails <> too");
    }

    #[test]
    fn project_dedups() {
        let mut t = RelTable::new(vec!["a".into(), "b".into()]);
        t.insert(vec![Some(Value::int(1)), Some(Value::int(2))]);
        t.insert(vec![Some(Value::int(1)), Some(Value::int(3))]);
        let p = t.project(&["a".into()]).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn join_union_difference() {
        let mut owns = RelTable::new(vec!["name".into(), "land".into()]);
        owns.insert(vec![Some(Value::str("ann")), Some(Value::str("L1"))]);
        owns.insert(vec![Some(Value::str("dee")), Some(Value::str("L2"))]);
        let joined = people().join(&owns).unwrap();
        assert_eq!(joined.len(), 1);
        assert_eq!(joined.attrs(), &["name", "age", "land"]);

        let u = owns.union(&owns).unwrap();
        assert_eq!(u.len(), 2, "set semantics");

        let d = owns.difference(&owns).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn rename_checks() {
        let t = people();
        let r = t.rename("age", "years").unwrap();
        assert!(r.attrs().contains(&"years".to_string()));
        assert!(t.rename("age", "name").is_err());
        assert!(t.rename("ghost", "x").is_err());
    }
}
