//! `cqa-shell` — an interactive shell for CQA/CDB.
//!
//! Usage:
//!
//! ```text
//! cqa-shell [data.cdb ...] [--script queries.cqa]
//! ```
//!
//! Loads the given `.cdb` files into the catalog, runs `--script` files
//! non-interactively if given, then (on a TTY or pipe) reads statements
//! from stdin, one per line, in the paper's §3.3 syntax:
//!
//! ```text
//! cqa> R0 = select landId = "A" from Landownership
//! cqa> R1 = project R0 on name, t
//! ```
//!
//! Meta-commands: `\list` (relations), `\schema NAME`, `\show NAME`,
//! `\plan STATEMENT` (optimized plan), `\trace [json] STATEMENT`,
//! `\explain analyze STATEMENT`, `\metrics [reset|export]`, `\top [N]`,
//! `\load FILE.cdb`, `\help`, `\quit`.
//!
//! Telemetry flags:
//!
//! * `--telemetry-port N` — serve Prometheus text format on
//!   `127.0.0.1:N/metrics` for the lifetime of the shell;
//! * `--event-log FILE` — append query start/finish events as JSONL
//!   (size-rotated);
//! * `--flight-dir DIR` — install the flight recorder: panics and
//!   governor aborts dump spans + metrics + the active plan to
//!   `DIR/flight-*.json`.

use cqa::core::{exec, optimizer, Catalog};
use cqa::lang::lower::lower_expr;
use cqa::lang::parse::parse_script;
use cqa::lang::schema_def::parse_cdb;
use cqa::lang::ScriptRunner;
use cqa::obs::sampler::Sampler;
use std::io::{BufRead, Write};

/// Shell-owned telemetry handles: dropped (and thus cleanly shut down)
/// when the shell exits.
#[derive(Default)]
struct Telemetry {
    server: Option<cqa::obs::http::TelemetryServer>,
    sampler: Option<Sampler>,
}

fn main() {
    let mut catalog = Catalog::new();
    let mut scripts: Vec<String> = Vec::new();
    let mut telemetry = Telemetry::default();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--script" => match args.next() {
                Some(path) => scripts.push(path),
                None => {
                    eprintln!("--script needs a file argument");
                    std::process::exit(2);
                }
            },
            "--telemetry-port" => {
                let Some(port) = args.next().and_then(|p| p.parse::<u16>().ok()) else {
                    eprintln!("--telemetry-port needs a port number");
                    std::process::exit(2);
                };
                match cqa::obs::http::serve(("127.0.0.1", port)) {
                    Ok(server) => {
                        println!("telemetry: http://127.0.0.1:{}/metrics", server.port());
                        telemetry.server = Some(server);
                    }
                    Err(e) => {
                        eprintln!("cannot bind telemetry port {}: {}", port, e);
                        std::process::exit(1);
                    }
                }
            }
            "--event-log" => {
                let Some(path) = args.next() else {
                    eprintln!("--event-log needs a file argument");
                    std::process::exit(2);
                };
                if let Err(e) = cqa::obs::eventlog::install(
                    &path,
                    cqa::obs::eventlog::DEFAULT_MAX_BYTES,
                    cqa::obs::eventlog::DEFAULT_MAX_FILES,
                ) {
                    eprintln!("cannot open event log {}: {}", path, e);
                    std::process::exit(1);
                }
                println!("event log: {}", path);
            }
            "--flight-dir" => {
                let Some(dir) = args.next() else {
                    eprintln!("--flight-dir needs a directory argument");
                    std::process::exit(2);
                };
                if let Err(e) = cqa::obs::flight::install(&dir, cqa::obs::flight::DEFAULT_SPAN_TAIL)
                {
                    eprintln!("cannot prepare flight dir {}: {}", dir, e);
                    std::process::exit(1);
                }
                cqa::obs::flight::install_panic_hook();
                // Dumps carry a span tail, so keep the ring recording.
                cqa::obs::set_spans_enabled(true);
                println!("flight recorder: {}", dir);
            }
            "--help" | "-h" => {
                println!(
                    "usage: cqa-shell [data.cdb ...] [--script queries.cqa] \
                     [--telemetry-port N] [--event-log FILE] [--flight-dir DIR]"
                );
                return;
            }
            path => {
                if let Err(e) = load_cdb(&mut catalog, path) {
                    eprintln!("error loading {}: {}", path, e);
                    std::process::exit(1);
                }
                println!("loaded {}", path);
            }
        }
    }

    let mut runner = ScriptRunner::new(catalog);
    for path in scripts {
        match std::fs::read_to_string(&path) {
            Ok(src) => match runner.run(&src) {
                Ok(result) => {
                    println!("# {} =>", path);
                    print!("{}", result);
                }
                Err(e) => {
                    eprintln!("error in {}: {}", path, e);
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!("cannot read {}: {}", path, e);
                std::process::exit(1);
            }
        }
    }

    repl(&mut runner, &mut telemetry);
    cqa::obs::eventlog::uninstall();
}

fn load_cdb(catalog: &mut Catalog, path: &str) -> Result<(), String> {
    let src = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse_cdb(&src).map_err(|e| e.to_string())?.load_into(catalog);
    Ok(())
}

fn repl(runner: &mut ScriptRunner, telemetry: &mut Telemetry) {
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    let interactive = is_tty();
    loop {
        if interactive {
            print!("cqa> ");
            let _ = out.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {}", e);
                return;
            }
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('\\') {
            if !meta_command(runner, telemetry, rest) {
                return;
            }
            continue;
        }
        match runner.run(&format!("{}\n", line)) {
            Ok(result) => print!("{}", result),
            Err(e) => eprintln!("error: {}", e),
        }
    }
}

/// Handles a meta command; returns false to quit.
fn meta_command(runner: &mut ScriptRunner, telemetry: &mut Telemetry, cmd: &str) -> bool {
    let (head, rest) = match cmd.split_once(char::is_whitespace) {
        Some((h, r)) => (h, r.trim()),
        None => (cmd, ""),
    };
    match head {
        "quit" | "q" => return false,
        "help" | "?" => {
            println!("statements:  NAME = select COND, ... from REL");
            println!("             NAME = project REL on attr, ...");
            println!("             NAME = join|union|diff A and B");
            println!("             NAME = rename a to b in REL");
            println!("             NAME = bufferjoin A and B distance D");
            println!("             NAME = knearest A and B k N");
            println!("ddl/dml:     create relation NAME {{ attr: type kind; ... }}");
            println!("             insert into NAME {{ conds }}");
            println!("             drop NAME");
            println!("meta:        \\list  \\schema NAME  \\show NAME  \\plan STMT");
            println!("             \\trace [json] STMT  \\explain analyze STMT");
            println!("             \\metrics [reset|export]  \\top [N]");
            println!("             \\set threads N  \\set filter on|off  \\set");
            println!("             \\set timeout MS|off  \\set budget fm|dnf|tuples N|off");
            println!("             \\stats governor");
            println!("             \\load FILE.cdb  \\save DIR  \\open DIR  \\quit");
        }
        "list" | "l" => {
            for name in runner.catalog().names() {
                if let Ok(rel) = runner.catalog().get(name) {
                    println!("{}  {} ({} tuples)", name, rel.schema(), rel.len());
                }
            }
            for name in runner.catalog().spatial_names() {
                if let Ok(rel) = runner.catalog().get_spatial(name) {
                    println!("{}  (spatial, {} features)", name, rel.len());
                }
            }
        }
        "schema" => match runner.catalog().get(rest) {
            Ok(rel) => println!("{}", rel.schema()),
            Err(e) => eprintln!("error: {}", e),
        },
        "show" => match runner.catalog().get(rest) {
            Ok(rel) => print!("{}", rel),
            Err(e) => eprintln!("error: {}", e),
        },
        "trace" => {
            // `\trace json STMT` emits the span tree as JSON; `\trace STMT`
            // renders it as text followed by the result.
            let (json, stmt) = match rest.strip_prefix("json") {
                Some(r) if r.starts_with(char::is_whitespace) => (true, r.trim()),
                _ => (false, rest),
            };
            match runner.run_traced(&format!("{}\n", stmt)) {
                Ok((result, trace)) if json => {
                    println!("{}", trace.to_json().render());
                    drop(result);
                }
                Ok((result, trace)) => {
                    print!("{}", trace);
                    print!("{}", result);
                }
                Err(e) => eprintln!("error: {}", e),
            }
        }
        "explain" => {
            let Some(stmt) = rest.strip_prefix("analyze").map(str::trim).filter(|s| !s.is_empty())
            else {
                eprintln!("usage: \\explain analyze STATEMENT");
                return true;
            };
            match runner.run_traced(&format!("{}\n", stmt)) {
                Ok((_result, trace)) => {
                    print!("{}", exec::render_explain_analyze(&trace, runner.exec_options()));
                }
                Err(e) => eprintln!("error: {}", e),
            }
        }
        "metrics" => match rest {
            "" => print!("{}", cqa::obs::snapshot().render_text()),
            "reset" => {
                cqa::obs::reset_metrics();
                println!("metrics reset");
            }
            // Byte-identical to what `GET /metrics` serves for the same
            // registry state (both call `prom::render` on a snapshot).
            "export" => print!("{}", cqa::obs::prom::render(&cqa::obs::snapshot())),
            other => {
                eprintln!("unknown metrics argument {:?} (try \\metrics reset|export)", other)
            }
        },
        "top" => {
            let n = rest.parse::<usize>().unwrap_or(10);
            let sampler = telemetry.sampler.get_or_insert_with(|| {
                Sampler::start(std::time::Duration::from_secs(1), 120)
            });
            match sampler.latest() {
                None => println!(
                    "sampler started ({} ms interval); no samples yet — re-run \\top shortly",
                    sampler.interval().as_millis()
                ),
                Some(sample) => {
                    println!(
                        "sample #{} ({} ms interval, {} retained)",
                        sample.seq,
                        sampler.interval().as_millis(),
                        sampler.samples().len()
                    );
                    let mut moved: Vec<(&str, u64, &str)> = sample
                        .counters
                        .iter()
                        .filter(|(_, d)| *d > 0)
                        .map(|(name, d)| (*name, *d, ""))
                        .chain(
                            sample
                                .histograms
                                .iter()
                                .filter(|(_, d)| *d > 0)
                                .map(|(name, d)| (*name, *d, " observations")),
                        )
                        .collect();
                    moved.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
                    if moved.is_empty() {
                        println!("  (idle: nothing moved in the last interval)");
                    }
                    for (name, delta, suffix) in moved.iter().take(n) {
                        println!("  {:<40} +{}{}", name, delta, suffix);
                    }
                    for (name, v) in sample.gauges.iter().filter(|(_, v)| *v > 0) {
                        println!("  {:<40} {} (gauge)", name, v);
                    }
                }
            }
        }
        "plan" => match parse_script(&format!("{}\n", rest)) {
            Ok(script) if script.statements.len() == 1 => {
                let stmt = &script.statements[0];
                let Some((expr, line)) = stmt_query(stmt) else {
                    eprintln!("\\plan takes a query statement");
                    return true;
                };
                match lower_expr(expr, line) {
                    Ok(plan) => match optimizer::optimize(&plan, runner.catalog()) {
                        Ok(optimized) => {
                            println!("unoptimized:\n{}", plan);
                            println!("optimized:\n{}", optimized);
                        }
                        Err(e) => eprintln!("error: {}", e),
                    },
                    Err(e) => eprintln!("error: {}", e),
                }
            }
            Ok(_) => eprintln!("\\plan takes exactly one statement"),
            Err(e) => eprintln!("error: {}", e),
        },
        "set" => {
            let mut opts = runner.exec_options().clone();
            match rest.split_once(char::is_whitespace).map(|(k, v)| (k, v.trim())) {
                Some(("threads", v)) => match v.parse::<usize>() {
                    Ok(n) => {
                        opts.threads = n;
                        runner.set_exec_options(opts);
                    }
                    Err(_) => eprintln!("\\set threads takes a number (0 = all cores)"),
                },
                Some(("filter", v)) => match v {
                    "on" => {
                        opts.bbox_filter = true;
                        runner.set_exec_options(opts);
                    }
                    "off" => {
                        opts.bbox_filter = false;
                        runner.set_exec_options(opts);
                    }
                    _ => eprintln!("\\set filter takes on|off"),
                },
                Some(("timeout", v)) => match v {
                    "off" => {
                        opts.governor.timeout = None;
                        runner.set_exec_options(opts);
                    }
                    _ => match v.parse::<u64>() {
                        Ok(ms) => {
                            opts.governor.timeout =
                                Some(std::time::Duration::from_millis(ms));
                            runner.set_exec_options(opts);
                        }
                        Err(_) => eprintln!("\\set timeout takes milliseconds or off"),
                    },
                },
                Some(("budget", v)) => {
                    let (which, amount) = match v.split_once(char::is_whitespace) {
                        Some((w, a)) => (w, a.trim()),
                        None => {
                            eprintln!("usage: \\set budget fm|dnf|tuples N|off");
                            return true;
                        }
                    };
                    let parsed = match amount {
                        "off" => Ok(None),
                        _ => amount.parse::<u64>().map(Some).map_err(|_| ()),
                    };
                    match (which, parsed) {
                        ("fm", Ok(n)) => {
                            opts.governor.budgets.max_fm_atoms = n;
                            runner.set_exec_options(opts);
                        }
                        ("dnf", Ok(n)) => {
                            opts.governor.budgets.max_dnf_conjunctions = n;
                            runner.set_exec_options(opts);
                        }
                        ("tuples", Ok(n)) => {
                            opts.governor.budgets.max_output_tuples = n;
                            runner.set_exec_options(opts);
                        }
                        (_, Err(())) => eprintln!("\\set budget takes a number or off"),
                        (other, _) => {
                            eprintln!("unknown budget {:?} (fm, dnf, tuples)", other)
                        }
                    }
                }
                Some((other, _)) => {
                    eprintln!("unknown setting {:?} (threads, filter, timeout, budget)", other)
                }
                None if rest.is_empty() => {
                    let o = runner.exec_options();
                    println!(
                        "threads = {} (effective {}), filter = {}",
                        o.threads,
                        o.effective_threads(),
                        if o.bbox_filter { "on" } else { "off" }
                    );
                    println!(
                        "timeout = {}, budget fm = {}, budget dnf = {}, budget tuples = {}",
                        fmt_timeout(o.governor.timeout),
                        fmt_limit(o.governor.budgets.max_fm_atoms),
                        fmt_limit(o.governor.budgets.max_dnf_conjunctions),
                        fmt_limit(o.governor.budgets.max_output_tuples),
                    );
                }
                None => eprintln!(
                    "usage: \\set threads N | \\set filter on|off | \\set timeout MS|off | \\set budget fm|dnf|tuples N|off | \\set"
                ),
            }
        }
        "stats" => match rest {
            "governor" | "" => {
                let o = runner.exec_options();
                let stats = runner.exec_stats();
                println!(
                    "timeout = {}, budget fm = {}, budget dnf = {}, budget tuples = {}",
                    fmt_timeout(o.governor.timeout),
                    fmt_limit(o.governor.budgets.max_fm_atoms),
                    fmt_limit(o.governor.budgets.max_dnf_conjunctions),
                    fmt_limit(o.governor.budgets.max_output_tuples),
                );
                println!(
                    "governor checks (last run) = {}, fm peak atoms = {}",
                    o.governor.checks(),
                    stats.fm_peak(),
                );
                println!(
                    "bbox filter: {} checked, {} rejected",
                    stats.checked(),
                    stats.rejected(),
                );
                let snap = cqa::obs::snapshot();
                match (
                    snap.histogram_quantile("exec.query.latency_us", 0.50),
                    snap.histogram_quantile("exec.query.latency_us", 0.95),
                    snap.histogram_quantile("exec.query.latency_us", 0.99),
                ) {
                    (Some(p50), Some(p95), Some(p99)) => println!(
                        "query latency (µs): p50<={} p95<={} p99<={}",
                        p50, p95, p99
                    ),
                    _ => println!("query latency: no queries recorded yet"),
                }
            }
            other => eprintln!("unknown stats {:?} (try \\stats governor)", other),
        },
        "load" => match load_cdb(runner.catalog_mut(), rest) {
            Ok(()) => println!("loaded {}", rest),
            Err(e) => eprintln!("error: {}", e),
        },
        "save" => match cqa::lang::db::save_catalog(runner.catalog(), rest) {
            Ok(()) => println!("saved database to {}", rest),
            Err(e) => eprintln!("error: {}", e),
        },
        "open" => match cqa::lang::db::open_catalog(rest) {
            Ok(catalog) => {
                *runner = ScriptRunner::new(catalog);
                println!("opened database {}", rest);
            }
            Err(e) => eprintln!("error: {}", e),
        },
        other => eprintln!("unknown meta command \\{} (try \\help)", other),
    }
    true
}

fn fmt_timeout(t: Option<std::time::Duration>) -> String {
    match t {
        Some(d) => format!("{} ms", d.as_millis()),
        None => "off".into(),
    }
}

fn fmt_limit(l: Option<u64>) -> String {
    match l {
        Some(n) => n.to_string(),
        None => "off".into(),
    }
}

fn stmt_query(
    stmt: &cqa::lang::ast::Statement,
) -> Option<(&cqa::lang::ast::QueryExpr, usize)> {
    match stmt {
        cqa::lang::ast::Statement::Query { expr, line, .. } => Some((expr, *line)),
        _ => None,
    }
}

#[cfg(unix)]
fn is_tty() -> bool {
    // Avoid a libc dependency: /proc-free heuristic via isatty on fd 0
    // is unavailable without libc, so fall back to the TERM heuristic.
    std::env::var_os("TERM").is_some() && std::env::var_os("CQA_NONINTERACTIVE").is_none()
}

#[cfg(not(unix))]
fn is_tty() -> bool {
    true
}
