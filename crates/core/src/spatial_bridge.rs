//! The spatial ⇄ heterogeneous bridge.
//!
//! §1.1 states the goal of CQA/CDB: "a system that can handle both
//! non-spatial and spatial data in a homogeneous fashion". This module
//! realizes it: a vector-model [`SpatialRelation`] converts into a
//! *spatial constraint relation* (§4.2) — a heterogeneous relation whose
//! only relational attribute is the feature ID and whose constraint
//! attributes are the spatial coordinates, one constraint tuple per convex
//! piece or segment. From there the full algebra applies.

use crate::error::Result;
use crate::relation::HRelation;
use crate::schema::{AttrDef, Schema};
use crate::tuple::Tuple;
use crate::value::Value;
use cqa_constraints::Var;
use cqa_spatial::decompose::geometry_to_dnf;
use cqa_spatial::SpatialRelation;

/// The schema of a converted spatial relation:
/// `[id: string relational; x, y: rational constraint]`.
pub fn spatial_schema() -> Schema {
    Schema::new(vec![
        AttrDef::str_rel("id"),
        AttrDef::rat_con("x"),
        AttrDef::rat_con("y"),
    ])
    .expect("static schema is valid")
}

/// Converts a vector-model relation into its constraint representation.
///
/// Each feature contributes one tuple per constraint-model piece (convex
/// polygon piece, polyline segment, or point), all sharing the feature's
/// ID — exactly the first §6.2 redundancy, which the spatial-constraint-
/// relation layout minimizes by keeping the ID as the only non-spatial
/// attribute.
pub fn spatial_to_hrelation(rel: &SpatialRelation) -> Result<HRelation> {
    let schema = spatial_schema();
    let (vx, vy) = (Var(1), Var(2));
    let mut out = HRelation::new(schema);
    for feature in rel.features() {
        let dnf = geometry_to_dnf(&feature.geom, vx, vy);
        for conj in dnf.conjunctions() {
            let mut builder = Tuple::builder(out.schema()).set("id", Value::str(&*feature.id));
            for atom in conj.atoms() {
                builder = builder.atom(atom.clone());
            }
            out.insert(builder.build()?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_num::Rat;
    use cqa_spatial::{Feature, Geometry, Point};

    fn p(x: i64, y: i64) -> Point {
        Point::from_ints(x, y)
    }

    #[test]
    fn conversion_preserves_membership() {
        let rel = SpatialRelation::from_features([
            Feature::new("square", Geometry::polygon(vec![p(0, 0), p(4, 0), p(4, 4), p(0, 4)]).unwrap()),
            Feature::new(
                "ell",
                Geometry::polygon(vec![p(10, 0), p(14, 0), p(14, 2), p(12, 2), p(12, 4), p(10, 4)]).unwrap(),
            ),
            Feature::new("road", Geometry::polyline(vec![p(0, 10), p(10, 10)]).unwrap()),
            Feature::new("well", Geometry::Point(p(20, 20))),
        ]);
        let h = spatial_to_hrelation(&rel).unwrap();
        assert!(h.len() >= 5, "ell decomposes into several pieces");

        for (id, geom) in rel.geometries() {
            for xi in 0..22 {
                for yi in 0..22 {
                    let inside = geom.contains_point(&p(xi, yi));
                    let member = h
                        .contains_point(&[Value::str(id), Value::int(xi), Value::int(yi)])
                        .unwrap();
                    assert_eq!(member, inside, "{} at ({}, {})", id, xi, yi);
                }
            }
        }
    }

    #[test]
    fn converted_relation_queries_like_any_other() {
        use crate::ops;
        use crate::plan::{CmpOp, Selection};
        let rel = SpatialRelation::from_features([
            Feature::new("a", Geometry::Point(p(1, 1))),
            Feature::new("b", Geometry::Point(p(5, 5))),
        ]);
        let h = spatial_to_hrelation(&rel).unwrap();
        let out =
            ops::select(&h, &Selection::all().cmp("x", CmpOp::Le, Rat::from_int(3))).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0].value(0), Some(&Value::str("a")));
        let ids = ops::project(&h, &["id".into()]).unwrap();
        assert_eq!(ids.len(), 2);
    }
}
