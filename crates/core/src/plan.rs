//! Query plans: the algebra's abstract syntax.
//!
//! A [`Plan`] is the "recipe for evaluating a query" of §2.2 — the form
//! into which the ASCII query scripts of §3.3 are translated, which the
//! [`optimizer`](crate::optimizer) rewrites, and which
//! [`exec`](crate::exec) evaluates bottom-up.

pub use crate::ops::select::{CmpOp, Predicate, Selection};
use cqa_num::Rat;
use std::fmt;

/// A query plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// A named relation from the catalog.
    Scan(String),
    /// A named *spatial* relation from the catalog, materialized in its
    /// constraint representation (one tuple per convex piece or segment;
    /// schema `[id: string relational; x, y: rational constraint]`). The
    /// homogeneous-data goal of §1.1: spatial features as first-class
    /// algebra inputs.
    SpatialScan(String),
    /// `ς_ξ(input)`.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// The condition ξ.
        selection: Selection,
    },
    /// `π_X(input)`.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// The attribute list X, in output order.
        attrs: Vec<String>,
    },
    /// `left ⋈ right` (natural join).
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// `left ∪ right`.
    Union {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// `left − right`.
    Difference {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// `ρ_{to|from}(input)`.
    Rename {
        /// Input plan.
        input: Box<Plan>,
        /// Attribute to rename.
        from: String,
        /// New attribute name.
        to: String,
    },
    /// Whole-feature `Buffer-Join` over two named *spatial* relations
    /// (§4): pairs of features within `distance`. Safe: the output is a
    /// finite relation of feature-ID pairs.
    BufferJoin {
        /// Left spatial relation name.
        left: String,
        /// Right spatial relation name.
        right: String,
        /// The buffer distance.
        distance: Rat,
    },
    /// Whole-feature `k-Nearest` over two named spatial relations (§4).
    KNearest {
        /// Left spatial relation name.
        left: String,
        /// Right spatial relation name.
        right: String,
        /// Number of neighbours per left feature.
        k: usize,
    },
    /// The raw `distance` operator of §4's discussion: distance as a
    /// *constraint output attribute*. **Unsafe** — kept in the algebra so
    /// that the safety checker has something to reject; the evaluator never
    /// sees it.
    Distance {
        /// Left spatial relation name.
        left: String,
        /// Right spatial relation name.
        right: String,
    },
}

impl Plan {
    /// A scan leaf.
    pub fn scan(name: impl Into<String>) -> Plan {
        Plan::Scan(name.into())
    }

    /// A spatial scan leaf (constraint form of a vector relation).
    pub fn spatial_scan(name: impl Into<String>) -> Plan {
        Plan::SpatialScan(name.into())
    }

    /// Wraps in a selection.
    pub fn select(self, selection: Selection) -> Plan {
        Plan::Select { input: Box::new(self), selection }
    }

    /// Wraps in a projection.
    pub fn project(self, attrs: &[&str]) -> Plan {
        Plan::Project {
            input: Box::new(self),
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Joins with another plan.
    pub fn join(self, other: Plan) -> Plan {
        Plan::Join { left: Box::new(self), right: Box::new(other) }
    }

    /// Unions with another plan.
    pub fn union(self, other: Plan) -> Plan {
        Plan::Union { left: Box::new(self), right: Box::new(other) }
    }

    /// Subtracts another plan.
    pub fn minus(self, other: Plan) -> Plan {
        Plan::Difference { left: Box::new(self), right: Box::new(other) }
    }

    /// Renames an attribute.
    pub fn rename(self, from: &str, to: &str) -> Plan {
        Plan::Rename { input: Box::new(self), from: from.to_string(), to: to.to_string() }
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            Plan::Scan(name) => writeln!(f, "{}Scan {}", pad, name),
            Plan::SpatialScan(name) => writeln!(f, "{}SpatialScan {}", pad, name),
            Plan::Select { input, selection } => {
                writeln!(f, "{}Select [{} predicate(s)]", pad, selection.predicates().len())?;
                input.fmt_indent(f, depth + 1)
            }
            Plan::Project { input, attrs } => {
                writeln!(f, "{}Project on {}", pad, attrs.join(", "))?;
                input.fmt_indent(f, depth + 1)
            }
            Plan::Join { left, right } => {
                writeln!(f, "{}Join", pad)?;
                left.fmt_indent(f, depth + 1)?;
                right.fmt_indent(f, depth + 1)
            }
            Plan::Union { left, right } => {
                writeln!(f, "{}Union", pad)?;
                left.fmt_indent(f, depth + 1)?;
                right.fmt_indent(f, depth + 1)
            }
            Plan::Difference { left, right } => {
                writeln!(f, "{}Difference", pad)?;
                left.fmt_indent(f, depth + 1)?;
                right.fmt_indent(f, depth + 1)
            }
            Plan::Rename { input, from, to } => {
                writeln!(f, "{}Rename {} -> {}", pad, from, to)?;
                input.fmt_indent(f, depth + 1)
            }
            Plan::BufferJoin { left, right, distance } => {
                writeln!(f, "{}BufferJoin {} and {} distance {}", pad, left, right, distance)
            }
            Plan::KNearest { left, right, k } => {
                writeln!(f, "{}KNearest {} and {} k {}", pad, left, right, k)
            }
            Plan::Distance { left, right } => {
                writeln!(f, "{}Distance {} and {} (unsafe)", pad, left, right)
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_display() {
        let p = Plan::scan("Land")
            .join(Plan::scan("Landownership"))
            .select(Selection::all().cmp_int("t", CmpOp::Ge, 4))
            .project(&["name"]);
        let shown = p.to_string();
        assert!(shown.contains("Project on name"));
        assert!(shown.contains("Join"));
        assert!(shown.contains("Scan Land"));
        let indent_scan = shown.lines().find(|l| l.contains("Scan Land")).unwrap();
        assert!(indent_scan.starts_with("      "), "tree indentation: {:?}", indent_scan);
    }
}
