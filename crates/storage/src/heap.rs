//! Heap files: unordered collections of variable-length records.
//!
//! A heap file is a chain-free bag of pages owned by one relation; the
//! file tracks its page list, appends records into the last page with room
//! (first-fit on the tail is enough for an append-mostly constraint store),
//! and scans pages in order. Records are addressed by [`Rid`].

use crate::buffer::BufferPool;
use crate::disk::DiskManager;
use crate::page::{PageId, SlottedPage};
use crate::{Result, StorageError};

/// A record identifier: page plus slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rid {
    /// The page holding the record.
    pub page: PageId,
    /// The slot within the page.
    pub slot: u16,
}

/// A heap file over pages drawn from a shared buffer pool.
///
/// The page list is kept in memory; a full system would persist it in a
/// catalog page, which is orthogonal to everything measured here.
pub struct HeapFile {
    pages: Vec<PageId>,
}

impl HeapFile {
    /// An empty heap file.
    pub fn create() -> HeapFile {
        HeapFile { pages: Vec::new() }
    }

    /// Re-attaches to an existing page list (e.g. read from a catalog).
    pub fn from_pages(pages: Vec<PageId>) -> HeapFile {
        HeapFile { pages }
    }

    /// The pages owned by this file, in insertion order.
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Appends a record, allocating a page when needed.
    pub fn insert<D: DiskManager>(
        &mut self,
        pool: &mut BufferPool<D>,
        record: &[u8],
    ) -> Result<Rid> {
        if record.len() > SlottedPage::max_record() {
            return Err(StorageError::RecordTooLarge(record.len()));
        }
        if let Some(&last) = self.pages.last() {
            let fits = pool.with_page(last, |data| {
                let mut buf = data.to_vec();
                SlottedPage::new(&mut buf).fits(record.len())
            })?;
            if fits {
                let slot = pool
                    .with_page_mut(last, |data| SlottedPage::new(data).insert(record))?
                    .map_err(|e| e.at_page(last))?;
                return Ok(Rid { page: last, slot });
            }
        }
        let page = pool.allocate()?;
        pool.with_page_mut(page, |data| {
            SlottedPage::init(data);
        })?;
        let slot = pool
            .with_page_mut(page, |data| SlottedPage::new(data).insert(record))?
            .map_err(|e| e.at_page(page))?;
        self.pages.push(page);
        Ok(Rid { page, slot })
    }

    /// Reads a record by id.
    pub fn get<D: DiskManager>(&self, pool: &mut BufferPool<D>, rid: Rid) -> Result<Vec<u8>> {
        if !self.pages.contains(&rid.page) {
            return Err(StorageError::BadRid(rid));
        }
        pool.with_page(rid.page, |data| {
            let mut buf = data.to_vec();
            let page = SlottedPage::new(&mut buf);
            page.get(rid.slot).map(|r| r.to_vec())
        })?
        .ok_or(StorageError::BadRid(rid))
    }

    /// Deletes a record by id. Returns whether a live record was removed.
    pub fn delete<D: DiskManager>(&self, pool: &mut BufferPool<D>, rid: Rid) -> Result<bool> {
        if !self.pages.contains(&rid.page) {
            return Err(StorageError::BadRid(rid));
        }
        pool.with_page_mut(rid.page, |data| SlottedPage::new(data).delete(rid.slot))
    }

    /// Scans every live record into a vector of `(rid, bytes)`.
    ///
    /// Returning materialized records keeps the borrow story simple; the
    /// relations measured in the experiments are scanned page-at-a-time
    /// through the pool, so access counting is faithful either way.
    pub fn scan<D: DiskManager>(&self, pool: &mut BufferPool<D>) -> Result<Vec<(Rid, Vec<u8>)>> {
        let mut out = Vec::new();
        for &pid in &self.pages {
            pool.with_page(pid, |data| {
                let mut buf = data.to_vec();
                let page = SlottedPage::new(&mut buf);
                for (slot, rec) in page.iter() {
                    out.push((Rid { page: pid, slot }, rec.to_vec()));
                }
            })?;
        }
        Ok(out)
    }

    /// Number of live records (scans the file).
    pub fn len<D: DiskManager>(&self, pool: &mut BufferPool<D>) -> Result<usize> {
        Ok(self.scan(pool)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool() -> BufferPool<MemDisk> {
        BufferPool::new(MemDisk::new(), 8)
    }

    #[test]
    fn insert_get_scan() {
        let mut pool = pool();
        let mut heap = HeapFile::create();
        let r1 = heap.insert(&mut pool, b"alpha").unwrap();
        let r2 = heap.insert(&mut pool, b"beta").unwrap();
        assert_eq!(heap.get(&mut pool, r1).unwrap(), b"alpha");
        assert_eq!(heap.get(&mut pool, r2).unwrap(), b"beta");
        let all = heap.scan(&mut pool).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1, b"alpha");
    }

    #[test]
    fn spills_to_new_pages() {
        let mut pool = pool();
        let mut heap = HeapFile::create();
        let rec = vec![9u8; 1000];
        for _ in 0..10 {
            heap.insert(&mut pool, &rec).unwrap();
        }
        assert!(heap.pages().len() >= 3, "1000-byte records, 4 per page");
        assert_eq!(heap.len(&mut pool).unwrap(), 10);
    }

    #[test]
    fn delete_hides_record() {
        let mut pool = pool();
        let mut heap = HeapFile::create();
        let r = heap.insert(&mut pool, b"x").unwrap();
        assert!(heap.delete(&mut pool, r).unwrap());
        assert!(heap.get(&mut pool, r).is_err());
        assert_eq!(heap.len(&mut pool).unwrap(), 0);
        assert!(!heap.delete(&mut pool, r).unwrap());
    }

    #[test]
    fn bad_rid_rejected() {
        let mut pool = pool();
        let mut heap = HeapFile::create();
        heap.insert(&mut pool, b"x").unwrap();
        let bogus = Rid { page: PageId(999), slot: 0 };
        assert!(heap.get(&mut pool, bogus).is_err());
        let bad_slot = Rid { page: heap.pages()[0], slot: 42 };
        assert!(heap.get(&mut pool, bad_slot).is_err());
    }

    #[test]
    fn survives_tiny_pool() {
        // Pool smaller than the file: every page fetch may evict.
        let mut pool = BufferPool::new(MemDisk::new(), 1);
        let mut heap = HeapFile::create();
        let rec = vec![1u8; 1500];
        let mut rids = Vec::new();
        for i in 0..6 {
            let mut r = rec.clone();
            r[0] = i as u8;
            rids.push(heap.insert(&mut pool, &r).unwrap());
        }
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(heap.get(&mut pool, *rid).unwrap()[0], i as u8);
        }
    }
}
