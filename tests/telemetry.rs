//! End-to-end telemetry export: the HTTP listener, the shell-equivalent
//! exporter, the JSONL event log, flight dumps on governor aborts, and
//! the query-latency histogram — exercised together in one process.
//!
//! This file holds a single test on purpose: the metrics registry, the
//! event log, and the flight recorder are global to the process, and the
//! byte-identity check below requires that nothing mutates the registry
//! between the two renders.

use cqa::core::plan::Plan;
use cqa::core::{exec, ExecOptions, ExecStats};
use cqa::lang::schema_def::parse_cdb;
use cqa::lang::ScriptRunner;
use cqa::obs::json::Json;
use std::io::{Read as _, Write as _};

const POINTS: &str = r#"
relation P {
  id: string relational;
  x: rational constraint;
}
tuple P { id = "a"; x >= 0; x <= 10 }
tuple P { id = "b"; x >= 5; x <= 15 }
tuple P { id = "c"; x >= 20; x <= 30 }
"#;

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    write!(s, "GET {} HTTP/1.1\r\nHost: t\r\n\r\n", path).unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    let (head, body) = out.split_once("\r\n\r\n").expect("response has a head");
    (head.to_string(), body.to_string())
}

#[test]
fn telemetry_surfaces_agree_end_to_end() {
    let tmp = std::env::temp_dir().join(format!("cqa-telemetry-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let log_path = tmp.join("events.jsonl");

    cqa::obs::set_metrics_enabled(true);
    cqa::obs::eventlog::install(&log_path, cqa::obs::eventlog::DEFAULT_MAX_BYTES, 2).unwrap();

    // A scripted workload through the lang layer: exec-level telemetry
    // must cover it with no lang changes.
    let mut catalog = cqa::core::Catalog::new();
    parse_cdb(POINTS).unwrap().load_into(&mut catalog);
    let mut runner = ScriptRunner::new(catalog);
    let out = runner.run("Lo = select x <= 12 from P\nIds = project Lo on id\n").unwrap();
    assert_eq!(out.len(), 2);

    // Latency histogram: the workload recorded at least one query, and
    // quantiles answer.
    let snap = cqa::obs::snapshot();
    for q in [0.5, 0.95, 0.99] {
        assert!(
            snap.histogram_quantile("exec.query.latency_us", q).is_some(),
            "latency quantile p{} missing",
            q * 100.0
        );
    }

    // Event log: every line parses; the workload's start/finish pairs are
    // present, correlated by seq, with outcome "ok".
    cqa::obs::eventlog::uninstall();
    let log = std::fs::read_to_string(&log_path).unwrap();
    let events: Vec<Json> =
        log.lines().map(|l| cqa::obs::json::parse(l).expect("event line parses")).collect();
    assert!(events.len() >= 4, "expected >= 2 query start/finish pairs, got {}", events.len());
    let finishes: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("event").and_then(Json::as_str) == Some("query_finish"))
        .collect();
    assert!(!finishes.is_empty());
    for f in &finishes {
        assert_eq!(f.get("outcome").and_then(Json::as_str), Some("ok"));
        let seq = f.get("seq").and_then(Json::as_num).unwrap();
        assert!(
            events.iter().any(|e| e.get("event").and_then(Json::as_str) == Some("query_start")
                && e.get("seq").and_then(Json::as_num) == Some(seq)),
            "finish seq {} has no matching start",
            seq
        );
        assert!(f.get("governor").and_then(|g| g.get("checks")).is_some());
    }

    // HTTP exporter vs. the shell's `\metrics export`: byte-identical for
    // the same registry state (nothing runs queries between the renders).
    let server = cqa::obs::http::serve("127.0.0.1:0").unwrap();
    let local = cqa::obs::prom::render(&cqa::obs::snapshot());
    let (head, body) = http_get(server.addr(), "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{}", head);
    assert!(head.contains("text/plain; version=0.0.4"));
    assert_eq!(body, local, "GET /metrics and \\metrics export must be byte-identical");
    assert!(body.contains("# TYPE cqa_exec_runs counter"));
    assert!(body.contains("cqa_exec_query_latency_us_bucket"));
    drop(server);

    // Flight recorder: a governor DeadlineExceeded on a traced query dumps
    // the span tail and the active plan.
    cqa::obs::flight::install(&tmp, 32).unwrap();
    cqa::obs::set_spans_enabled(true);
    cqa::obs::reset_spans();
    let mut opts = ExecOptions::with_threads(2);
    opts.governor.timeout = Some(std::time::Duration::ZERO);
    let plan = Plan::scan("P").join(Plan::scan("P").rename("id", "id2"));
    let err = exec::execute_traced_opts(&plan, runner.catalog(), &opts, &ExecStats::new())
        .expect_err("zero deadline aborts");
    assert!(err.is_governor_abort());
    let dumps = cqa::obs::flight::list_dumps(&tmp);
    assert_eq!(dumps.len(), 1, "governor abort produced a dump");
    let doc = cqa::obs::json::parse(&std::fs::read_to_string(&dumps[0]).unwrap()).unwrap();
    assert_eq!(doc.get("kind").and_then(Json::as_str), Some("flight"));
    assert!(doc
        .get("reason")
        .and_then(Json::as_str)
        .is_some_and(|r| r.contains("deadline")));
    assert!(!doc.get("spans").and_then(Json::as_arr).unwrap().is_empty());
    assert!(doc
        .get("context")
        .and_then(|c| c.get("active_query"))
        .and_then(Json::as_str)
        .is_some_and(|q| q.contains("Join")));

    cqa::obs::flight::uninstall();
    cqa::obs::set_spans_enabled(false);
    cqa::obs::reset_spans();
    let _ = std::fs::remove_dir_all(&tmp);
}
