//! A minimal binary codec for framing values into heap records.
//!
//! The writer/reader pair is deliberately tiny: fixed-width little-endian
//! integers, length-prefixed byte strings, and nothing else. Higher layers
//! (tuple serialization in `cqa-core`) compose these primitives.

use crate::{Result, StorageError};

/// Appends encoded values to a byte buffer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Finishes, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Writes a `u32` (little endian).
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a `u64` (little endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes an `i64` (little endian).
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes an `f64` (little-endian IEEE 754 bits).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }
}

/// Reads encoded values from a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(StorageError::corrupt("truncated record"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64`.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str> {
        std::str::from_utf8(self.bytes()?).map_err(|_| StorageError::corrupt("invalid utf-8"))
    }

    /// Whether the whole buffer was consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = Writer::new();
        w.u8(7).u32(0xDEAD_BEEF).u64(u64::MAX).i64(-42).f64(2.5).str("héllo").bytes(b"\x00\x01");
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), 2.5);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), b"\x00\x01");
        assert!(r.at_end());
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.u64(1);
        let buf = w.finish();
        let mut r = Reader::new(&buf[..5]);
        assert!(r.u64().is_err());
        // A lying length prefix is also caught.
        let mut w = Writer::new();
        w.u32(1000);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn invalid_utf8_detected() {
        let mut w = Writer::new();
        w.bytes(&[0xFF, 0xFE]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(r.str().is_err());
    }

    #[test]
    fn remaining_tracks_position() {
        let mut w = Writer::new();
        w.u32(1).u32(2);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.remaining(), 8);
        r.u32().unwrap();
        assert_eq!(r.remaining(), 4);
        assert!(!r.at_end());
    }
}
