//! # cqa-index — multidimensional indexing for CQA/CDB
//!
//! §5 of the paper studies *multi-attribute indexing systems* for constraint
//! databases: should the attributes of a relation share one multidimensional
//! index, or should each attribute get its own one-dimensional index? This
//! crate implements both strategies over a from-scratch **R\*-tree**
//! (Beckmann et al., the paper's \[2\]) and the instrumentation to compare
//! them by the paper's metric — the number of disk (node) accesses:
//!
//! * [`Rect`] — axis-aligned boxes in `D` dimensions (`D = 1` gives the
//!   intervals a constraint attribute's projection denotes);
//! * [`RStarTree`] — insertion with forced reinsertion and the R\* split,
//!   deletion with tree condensation, and access-counted range search;
//! * [`bulk`] — sort-tile-recursive bulk loading;
//! * [`strategy`] — [`JointIndex`](strategy::JointIndex) vs
//!   [`SeparateIndices`](strategy::SeparateIndices), the two §5.4
//!   configurations;
//! * [`advisor`] — a heuristic for the paper's open problem: choosing which
//!   attribute subsets to index together, given a workload;
//! * [`paged`] — persisting a tree one node per page and searching through
//!   a [`cqa_storage::BufferPool`], so "disk access" can also be measured
//!   physically.

pub mod advisor;
pub mod bulk;
pub mod paged;
pub mod rect;
pub mod rstar;
pub mod strategy;

pub use rect::Rect;
pub use rstar::{RStarParams, RStarTree};
