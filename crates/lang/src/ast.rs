//! Abstract syntax of query scripts.

use cqa_num::Rat;

/// A comparison operator in the surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

/// One side of a condition: a linear expression or a string literal.
#[derive(Debug, Clone, PartialEq)]
pub enum CondSide {
    /// `c₁·a₁ + … + k` with named attributes.
    Linear {
        /// Attribute terms.
        terms: Vec<(String, Rat)>,
        /// Constant addend.
        constant: Rat,
    },
    /// A quoted string.
    Str(String),
}

/// A single condition `lhs op rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cond {
    /// Left side.
    pub lhs: CondSide,
    /// Operator.
    pub op: AstOp,
    /// Right side.
    pub rhs: CondSide,
}

/// A query expression (the right-hand side of a script statement).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryExpr {
    /// `select conds from input`
    Select {
        /// The conjunction of conditions.
        conds: Vec<Cond>,
        /// Input relation name.
        input: String,
    },
    /// `project input on attrs`
    Project {
        /// Input relation name.
        input: String,
        /// Attribute list.
        attrs: Vec<String>,
    },
    /// `join a and b`
    Join(String, String),
    /// `union a and b`
    Union(String, String),
    /// `diff a and b`
    Diff(String, String),
    /// `rename a to b in input`
    Rename {
        /// Attribute to rename.
        from: String,
        /// New name.
        to: String,
        /// Input relation name.
        input: String,
    },
    /// `bufferjoin a and b distance d`
    BufferJoin(String, String, Rat),
    /// `knearest a and b k n`
    KNearest(String, String, usize),
    /// `distance a and b` — parses, then fails the safety check.
    Distance(String, String),
    /// `spatial REL` — the constraint form of a vector-model relation.
    SpatialScan(String),
}

/// One statement: a query binding or a data-definition command.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `NAME = expr`.
    Query {
        /// Name the result is bound to.
        target: String,
        /// The query expression.
        expr: QueryExpr,
        /// Source line (for error reporting).
        line: usize,
    },
    /// `create relation NAME { attr: type kind; ... }`.
    CreateRelation {
        /// Relation name.
        name: String,
        /// The validated schema.
        schema: cqa_core::Schema,
        /// Source line.
        line: usize,
    },
    /// `insert into NAME { conds }` — a tuple block, as in `.cdb` files.
    Insert {
        /// Target relation.
        name: String,
        /// The tuple's conditions.
        conds: Vec<Cond>,
        /// Source line.
        line: usize,
    },
    /// `drop NAME`.
    Drop {
        /// Relation to remove.
        name: String,
        /// Source line.
        line: usize,
    },
}

/// A whole script.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Script {
    /// Statements in order.
    pub statements: Vec<Statement>,
}

impl Statement {
    /// The query expression, when this is a `NAME = expr` statement.
    pub fn query_expr(&self) -> Option<&QueryExpr> {
        match self {
            Statement::Query { expr, .. } => Some(expr),
            _ => None,
        }
    }
}
