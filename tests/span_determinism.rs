//! Determinism of the structured span trace.
//!
//! Span sites sit on the serial spine of evaluation (plan nodes, the
//! projection's Fourier–Motzkin loop, index probes); parallel inner loops
//! contribute only order-independent counters into the enclosing span. The
//! recorded span sequence — kinds, labels, sequence numbers, payload
//! counters, everything except wall time — must therefore be bit-identical
//! across thread counts.
//!
//! This file holds a single test on purpose: the span ring is global to
//! the process, so it must not race with other tests in the same binary.

use cqa::core::plan::Plan;
use cqa::core::{exec, AttrDef, Catalog, ExecOptions, ExecStats, HRelation, Schema};
use cqa::num::prng::Pcg32;

fn interval_relation(id_attr: &str, n: usize, seed: u64) -> HRelation {
    let schema = Schema::new(vec![
        AttrDef::str_rel("g"),
        AttrDef::str_rel(id_attr),
        AttrDef::rat_con("x"),
    ])
    .unwrap();
    let mut rel = HRelation::new(schema);
    let mut rng = Pcg32::seed_from_u64(seed);
    for i in 0..n {
        let lo = rng.gen_range_i64(0, 500);
        let w = rng.gen_range_i64(1, 60);
        let g = rng.gen_range_i64(0, 40);
        rel.insert_with(|b| {
            b.set("g", format!("g{}", g).as_str())
                .set(id_attr, format!("{}{}", id_attr, i).as_str())
                .range("x", lo, lo + w)
        })
        .unwrap();
    }
    rel
}

#[test]
fn span_sequence_identical_across_thread_counts() {
    let mut catalog = Catalog::new();
    catalog.register("L", interval_relation("a", 500, 2003));
    catalog.register("R", interval_relation("b", 500, 2004));
    catalog.build_index("L", &["x"]).unwrap();
    // Join (parallel inner work) then project (serial FM spans), plus an
    // index-assisted select to get an index.probe span into the sequence.
    let join_plan = Plan::scan("L").join(Plan::scan("R")).project(&["g", "x"]);
    let select_plan = Plan::scan("L").select(
        cqa::core::plan::Selection::all()
            .cmp_int("x", cqa::core::plan::CmpOp::Ge, 100)
            .cmp_int("x", cqa::core::plan::CmpOp::Le, 200),
    );

    cqa::obs::set_spans_enabled(true);
    // A live background sampler must not perturb the sequence: it only
    // reads the registry, never the span ring. Keeping one running for
    // the whole comparison pins that contract.
    let sampler = cqa::obs::Sampler::start(std::time::Duration::from_millis(2), 32);
    let mut identities: Vec<String> = Vec::new();
    let mut results = Vec::new();
    for threads in [1usize, 2, 8] {
        cqa::obs::reset_spans();
        let opts = ExecOptions::with_threads(threads);
        let (r1, t1) =
            exec::execute_traced_opts(&join_plan, &catalog, &opts, &ExecStats::new()).unwrap();
        let (r2, t2) =
            exec::execute_traced_opts(&select_plan, &catalog, &opts, &ExecStats::new()).unwrap();
        let spans = cqa::obs::drain_spans();
        assert!(spans.spans.iter().any(|s| s.kind == "fm.eliminate"), "projection spans");
        assert!(spans.spans.iter().any(|s| s.kind == "exec.node"), "plan-node spans");
        assert!(spans.spans.iter().any(|s| s.kind == "index.probe"), "index spans");
        identities.push(spans.identity());
        results.push((r1, t1.identity(), r2, t2.identity()));
    }
    cqa::obs::set_spans_enabled(false);
    cqa::obs::reset_spans();
    // The sampler actually ran during the comparison (the workload takes
    // many multiples of its tick), then stops cleanly.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while sampler.latest().is_none() && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(sampler.latest().is_some(), "sampler collected no samples");
    drop(sampler);

    for (i, threads) in [2usize, 8].iter().enumerate() {
        assert_eq!(identities[0], identities[i + 1], "span ring diverged at threads={}", threads);
        assert_eq!(results[0], results[i + 1], "results diverged at threads={}", threads);
    }
    // Sanity: the identity really is non-trivial (many spans recorded).
    assert!(identities[0].lines().count() > 100, "expected a rich span sequence");
}
