//! Recursive-descent parser for query scripts.

use crate::ast::{AstOp, Cond, CondSide, QueryExpr, Script, Statement};
use crate::lex::{lex, LangError, Tok, Token};
use cqa_num::Rat;

/// Parses a whole script.
pub fn parse_script(input: &str) -> Result<Script, LangError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut script = Script::default();
    loop {
        p.skip_newlines();
        if p.peek_is(&Tok::Eof) {
            return Ok(script);
        }
        script.statements.push(p.statement()?);
    }
}

pub(crate) struct Parser {
    pub(crate) tokens: Vec<Token>,
    pub(crate) pos: usize,
}

impl Parser {
    pub(crate) fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    pub(crate) fn peek_is(&self, tok: &Tok) -> bool {
        &self.peek().tok == tok
    }

    pub(crate) fn next(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn err(&self, msg: impl Into<String>) -> LangError {
        let t = self.peek();
        LangError::new(t.line, t.col, msg)
    }

    pub(crate) fn expect(&mut self, tok: Tok) -> Result<Token, LangError> {
        if self.peek().tok == tok {
            Ok(self.next())
        } else {
            Err(self.err(format!("expected {}, found {}", tok, self.peek().tok)))
        }
    }

    pub(crate) fn ident(&mut self) -> Result<String, LangError> {
        match &self.peek().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                self.next();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {}", other))),
        }
    }

    /// Consumes an identifier that must equal the given keyword
    /// (case-insensitive).
    pub(crate) fn keyword(&mut self, kw: &str) -> Result<(), LangError> {
        match &self.peek().tok {
            Tok::Ident(s) if s.eq_ignore_ascii_case(kw) => {
                self.next();
                Ok(())
            }
            other => Err(self.err(format!("expected keyword {:?}, found {}", kw, other))),
        }
    }

    pub(crate) fn peek_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    pub(crate) fn skip_newlines(&mut self) {
        while self.peek_is(&Tok::Newline) {
            self.next();
        }
    }

    pub(crate) fn number(&mut self) -> Result<Rat, LangError> {
        // [-] NUM [/ NUM]
        let neg = if self.peek_is(&Tok::Minus) {
            self.next();
            true
        } else {
            false
        };
        let n = self.raw_number()?;
        Ok(if neg { -n } else { n })
    }

    fn statement(&mut self) -> Result<Statement, LangError> {
        let line = self.peek().line;
        // Data-definition commands start with a keyword, not `NAME =`.
        if self.peek_keyword("create") {
            self.next();
            self.keyword("relation")?;
            let name = self.ident()?;
            let schema = crate::schema_def::parse_schema_block(self)?;
            self.end_of_statement()?;
            return Ok(Statement::CreateRelation { name, schema, line });
        }
        if self.peek_keyword("insert") {
            self.next();
            self.keyword("into")?;
            let name = self.ident()?;
            let conds = crate::schema_def::parse_tuple_block(self)?;
            self.end_of_statement()?;
            return Ok(Statement::Insert { name, conds, line });
        }
        if self.peek_keyword("drop") {
            self.next();
            let name = self.ident()?;
            self.end_of_statement()?;
            return Ok(Statement::Drop { name, line });
        }
        let target = self.ident()?;
        self.expect(Tok::Eq)?;
        let expr = self.query_expr()?;
        self.end_of_statement()?;
        Ok(Statement::Query { target, expr, line })
    }

    fn end_of_statement(&mut self) -> Result<(), LangError> {
        if !self.peek_is(&Tok::Eof) {
            self.expect(Tok::Newline)?;
        }
        Ok(())
    }

    fn query_expr(&mut self) -> Result<QueryExpr, LangError> {
        let head = match &self.peek().tok {
            Tok::Ident(s) => s.to_ascii_lowercase(),
            other => return Err(self.err(format!("expected an operator keyword, found {}", other))),
        };
        match head.as_str() {
            "select" => {
                self.next();
                let mut conds = vec![self.condition()?];
                while self.peek_is(&Tok::Comma) {
                    self.next();
                    conds.push(self.condition()?);
                }
                self.keyword("from")?;
                let input = self.ident()?;
                Ok(QueryExpr::Select { conds, input })
            }
            "project" => {
                self.next();
                let input = self.ident()?;
                self.keyword("on")?;
                let mut attrs = vec![self.ident()?];
                while self.peek_is(&Tok::Comma) {
                    self.next();
                    attrs.push(self.ident()?);
                }
                Ok(QueryExpr::Project { input, attrs })
            }
            "join" | "union" | "diff" | "distance" => {
                self.next();
                let a = self.ident()?;
                self.keyword("and")?;
                let b = self.ident()?;
                Ok(match head.as_str() {
                    "join" => QueryExpr::Join(a, b),
                    "union" => QueryExpr::Union(a, b),
                    "diff" => QueryExpr::Diff(a, b),
                    _ => QueryExpr::Distance(a, b),
                })
            }
            "spatial" => {
                self.next();
                let name = self.ident()?;
                Ok(QueryExpr::SpatialScan(name))
            }
            "rename" => {
                self.next();
                let from = self.ident()?;
                self.keyword("to")?;
                let to = self.ident()?;
                self.keyword("in")?;
                let input = self.ident()?;
                Ok(QueryExpr::Rename { from, to, input })
            }
            "bufferjoin" => {
                self.next();
                let a = self.ident()?;
                self.keyword("and")?;
                let b = self.ident()?;
                self.keyword("distance")?;
                let d = self.number()?;
                Ok(QueryExpr::BufferJoin(a, b, d))
            }
            "knearest" => {
                self.next();
                let a = self.ident()?;
                self.keyword("and")?;
                let b = self.ident()?;
                self.keyword("k")?;
                let k = self.number()?;
                if !k.is_integer() || !k.is_positive() {
                    return Err(self.err("k must be a positive integer"));
                }
                let k = k.numer().to_i64().filter(|v| *v > 0).ok_or_else(|| {
                    self.err("k out of range")
                })? as usize;
                Ok(QueryExpr::KNearest(a, b, k))
            }
            other => Err(self.err(format!(
                "unknown operator {:?} (expected select/project/join/union/diff/rename/spatial/bufferjoin/knearest/distance)",
                other
            ))),
        }
    }

    pub(crate) fn condition(&mut self) -> Result<Cond, LangError> {
        let lhs = self.cond_side()?;
        let op = match self.next() {
            Token { tok: Tok::Eq, .. } => AstOp::Eq,
            Token { tok: Tok::Ne, .. } => AstOp::Ne,
            Token { tok: Tok::Le, .. } => AstOp::Le,
            Token { tok: Tok::Lt, .. } => AstOp::Lt,
            Token { tok: Tok::Ge, .. } => AstOp::Ge,
            Token { tok: Tok::Gt, .. } => AstOp::Gt,
            t => {
                return Err(LangError::new(
                    t.line,
                    t.col,
                    format!("expected a comparison operator, found {}", t.tok),
                ))
            }
        };
        let rhs = self.cond_side()?;
        Ok(Cond { lhs, op, rhs })
    }

    fn cond_side(&mut self) -> Result<CondSide, LangError> {
        if let Tok::Str(s) = &self.peek().tok {
            let s = s.clone();
            self.next();
            return Ok(CondSide::Str(s));
        }
        self.linear()
    }

    /// `term (('+'|'-') term)*` where
    /// `term := NUM ['/' NUM] ['*' IDENT] | IDENT`.
    fn linear(&mut self) -> Result<CondSide, LangError> {
        let mut terms: Vec<(String, Rat)> = Vec::new();
        let mut constant = Rat::zero();
        let mut sign = Rat::one();
        loop {
            // Unary signs before the term.
            loop {
                if self.peek_is(&Tok::Minus) {
                    self.next();
                    sign = -sign;
                } else if self.peek_is(&Tok::Plus) {
                    self.next();
                } else {
                    break;
                }
            }
            match &self.peek().tok {
                Tok::Ident(name) => {
                    let name = name.clone();
                    self.next();
                    terms.push((name, sign.clone()));
                }
                Tok::Num(_) => {
                    let n = self.raw_number()?;
                    if self.peek_is(&Tok::Star) {
                        self.next();
                        let name = self.ident()?;
                        terms.push((name, &sign * &n));
                    } else {
                        constant += &(&sign * &n);
                    }
                }
                other => {
                    return Err(self.err(format!(
                        "expected an attribute or number, found {}",
                        other
                    )))
                }
            }
            match &self.peek().tok {
                Tok::Plus => {
                    self.next();
                    sign = Rat::one();
                }
                Tok::Minus => {
                    self.next();
                    sign = -Rat::one();
                }
                _ => break,
            }
        }
        Ok(CondSide::Linear { terms, constant })
    }

    /// `NUM ['/' NUM]` without a unary sign.
    fn raw_number(&mut self) -> Result<Rat, LangError> {
        let n = match self.next() {
            Token { tok: Tok::Num(n), .. } => n,
            t => {
                return Err(LangError::new(
                    t.line,
                    t.col,
                    format!("expected number, found {}", t.tok),
                ))
            }
        };
        if self.peek_is(&Tok::Slash) {
            self.next();
            match self.next() {
                Token { tok: Tok::Num(d), .. } if !d.is_zero() => Ok(n / d),
                t => Err(LangError::new(t.line, t.col, "expected nonzero denominator".to_string())),
            }
        } else {
            Ok(n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query1() {
        // Query 1 of §3.3.
        let script = parse_script(
            "R0 = select landID = \"A\" from Landownership\n\
             R1 = project R0 on name, t\n",
        )
        .unwrap();
        assert_eq!(script.statements.len(), 2);
        match script.statements[0].query_expr().unwrap() {
            QueryExpr::Select { conds, input } => {
                assert_eq!(input, "Landownership");
                assert_eq!(conds.len(), 1);
                assert_eq!(conds[0].rhs, CondSide::Str("A".into()));
            }
            other => panic!("{:?}", other),
        }
        match script.statements[1].query_expr().unwrap() {
            QueryExpr::Project { input, attrs } => {
                assert_eq!(input, "R0");
                assert_eq!(attrs, &["name", "t"]);
            }
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn parses_multi_condition_select() {
        let s = parse_script("R = select t >= 4, t <= 9, x + 2*y < 3.5 from H\n").unwrap();
        match s.statements[0].query_expr().unwrap() {
            QueryExpr::Select { conds, .. } => {
                assert_eq!(conds.len(), 3);
                match &conds[2].lhs {
                    CondSide::Linear { terms, .. } => {
                        assert_eq!(terms.len(), 2);
                        assert_eq!(terms[1], ("y".to_string(), Rat::from_int(2)));
                    }
                    other => panic!("{:?}", other),
                }
            }
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn parses_binary_and_spatial_ops() {
        let s = parse_script(
            "A = join X and Y\nB = union A and A\nC = diff A and B\n\
             D = rename t to time in C\nE = bufferjoin R and S distance 2.5\n\
             F = knearest R and S k 3\nG = distance R and S\n",
        )
        .unwrap();
        assert_eq!(s.statements.len(), 7);
        assert_eq!(*s.statements[4].query_expr().unwrap(), QueryExpr::BufferJoin("R".into(), "S".into(), Rat::from_pair(5, 2)));
        assert_eq!(*s.statements[5].query_expr().unwrap(), QueryExpr::KNearest("R".into(), "S".into(), 3));
        assert_eq!(*s.statements[6].query_expr().unwrap(), QueryExpr::Distance("R".into(), "S".into()));
    }

    #[test]
    fn negative_and_fractional_numbers() {
        let s = parse_script("R = select x >= -2, y < 1/3 from H\n").unwrap();
        match s.statements[0].query_expr().unwrap() {
            QueryExpr::Select { conds, .. } => {
                assert_eq!(
                    conds[0].rhs,
                    CondSide::Linear { terms: vec![], constant: Rat::from_int(-2) }
                );
                assert_eq!(
                    conds[1].rhs,
                    CondSide::Linear { terms: vec![], constant: Rat::from_pair(1, 3) }
                );
            }
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn attr_to_attr_condition() {
        let s = parse_script("R = select x = y from H\n").unwrap();
        match s.statements[0].query_expr().unwrap() {
            QueryExpr::Select { conds, .. } => {
                assert_eq!(conds[0].op, AstOp::Eq);
                assert!(matches!(&conds[0].lhs, CondSide::Linear { terms, .. } if terms.len() == 1));
            }
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn error_reporting() {
        let err = parse_script("R = frobnicate X and Y\n").unwrap_err();
        assert!(err.msg.contains("unknown operator"));
        let err = parse_script("R = select from H\n").unwrap_err();
        assert!(err.line == 1);
        let err = parse_script("R = knearest A and B k 0\n").unwrap_err();
        assert!(err.msg.contains("positive integer"));
        let err = parse_script("R = knearest A and B k 2.5\n").unwrap_err();
        assert!(err.msg.contains("positive integer"));
    }

    #[test]
    fn comments_between_statements() {
        let s = parse_script("# Query 2\nR0 = join Hurricane and Land\n# step two\nR1 = project R0 on landID\n").unwrap();
        assert_eq!(s.statements.len(), 2);
    }
}
