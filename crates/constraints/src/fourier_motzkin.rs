//! Variable elimination for conjunctions of rational linear constraints.
//!
//! Projection — the `π` operator of the Constraint Query Algebra — is
//! existential quantification over the dropped attributes, and for linear
//! rational constraints the quantifier can be eliminated exactly:
//!
//! 1. **Gaussian step.** While some *equation* mentions the variable being
//!    eliminated, solve it for the variable and substitute everywhere. This
//!    is both exact and cheap, and it is the ablation-worthy optimization
//!    the benches compare against raw elimination.
//! 2. **Fourier–Motzkin step.** Split the remaining inequalities into lower
//!    and upper bounds on the variable and emit one combined inequality per
//!    (lower, upper) pair, strict iff either side is strict.
//!
//! The procedure is the textbook one (Schrijver, cited as \[29\] by the
//! paper); the output can grow quadratically per variable, so a cheap
//! *parallel-constraint pruning* pass keeps only the tightest of any family
//! of constraints sharing the same linear part.

use crate::atom::{Atom, Rel};
use crate::var::Var;
use cqa_num::Rat;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Optional resource bounds for one elimination run.
///
/// Elimination can square the working system per variable; a budget turns
/// that blow-up into a typed error instead of unbounded memory growth.
#[derive(Debug, Clone, Copy, Default)]
pub struct FmBudget<'a> {
    /// Abort when the working system holds more than this many atoms after
    /// any variable has been eliminated (and pruned, when pruning is on).
    pub max_atoms: Option<u64>,
    /// If set, the peak working-system size is recorded here (`fetch_max`),
    /// so callers can report how close a run came to its limit.
    pub peak: Option<&'a AtomicU64>,
    /// If set, incremented once per elimination run — the observability
    /// layer's "FM calls" counter.
    pub calls: Option<&'a AtomicU64>,
}

impl<'a> FmBudget<'a> {
    /// Charges `atoms` against the budget, updating the peak gauge.
    fn charge(&self, atoms: usize) -> Result<(), FmBudgetExceeded> {
        let atoms = atoms as u64;
        if let Some(peak) = self.peak {
            peak.fetch_max(atoms, Ordering::Relaxed);
        }
        match self.max_atoms {
            Some(limit) if atoms > limit => Err(FmBudgetExceeded { atoms, limit }),
            _ => Ok(()),
        }
    }
}

/// The intermediate system outgrew [`FmBudget::max_atoms`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FmBudgetExceeded {
    /// Working-system size when the budget tripped.
    pub atoms: u64,
    /// The configured limit.
    pub limit: u64,
}

impl std::fmt::Display for FmBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "elimination exceeded its atom budget ({} atoms, limit {})",
            self.atoms, self.limit
        )
    }
}

impl std::error::Error for FmBudgetExceeded {}

/// Outcome of an elimination: either a (possibly empty) set of atoms over
/// the remaining variables, or a proof that the input was unsatisfiable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Eliminated {
    /// Equivalent atoms over the remaining variables.
    Atoms(BTreeSet<Atom>),
    /// The conjunction is unsatisfiable.
    Unsat,
}

/// Eliminates every variable in `vars` from the conjunction `atoms`.
///
/// The result is a set of atoms over the remaining variables whose
/// conjunction is equivalent to `∃ vars. ⋀ atoms`.
pub fn eliminate(atoms: &BTreeSet<Atom>, vars: &BTreeSet<Var>) -> Eliminated {
    infallible(eliminate_opt(atoms, vars, true, FmBudget::default()))
}

/// [`eliminate`] without the parallel-constraint pruning pass — the
/// ablation baseline benchmarked in `cqa-bench`. Semantically equivalent,
/// but intermediate conjunctions can grow quadratically per variable.
pub fn eliminate_unpruned(atoms: &BTreeSet<Atom>, vars: &BTreeSet<Var>) -> Eliminated {
    infallible(eliminate_opt(atoms, vars, false, FmBudget::default()))
}

/// [`eliminate`] under a resource budget: the working-system size is
/// checked after every eliminated variable, so a blow-up surfaces as
/// [`FmBudgetExceeded`] instead of unbounded allocation.
pub fn eliminate_budgeted(
    atoms: &BTreeSet<Atom>,
    vars: &BTreeSet<Var>,
    budget: FmBudget<'_>,
) -> Result<Eliminated, FmBudgetExceeded> {
    eliminate_opt(atoms, vars, true, budget)
}

/// An empty budget never trips, so `Err` is unreachable; fold it away
/// without a panic path.
fn infallible(r: Result<Eliminated, FmBudgetExceeded>) -> Eliminated {
    r.unwrap_or(Eliminated::Unsat)
}

fn eliminate_opt(
    atoms: &BTreeSet<Atom>,
    vars: &BTreeSet<Var>,
    prune: bool,
    budget: FmBudget<'_>,
) -> Result<Eliminated, FmBudgetExceeded> {
    if let Some(calls) = budget.calls {
        calls.fetch_add(1, Ordering::Relaxed);
    }
    let mut current: BTreeSet<Atom> = BTreeSet::new();
    for a in atoms {
        match a.ground_truth() {
            Some(true) => {}
            Some(false) => return Ok(Eliminated::Unsat),
            None => {
                current.insert(a.clone());
            }
        }
    }
    budget.charge(current.len())?;
    // Eliminate in an order that keeps intermediate growth small: at each
    // round pick the variable with the fewest lower×upper combinations.
    let mut remaining: BTreeSet<Var> = vars.clone();
    while !remaining.is_empty() {
        let v = pick_variable(&current, &remaining);
        remaining.remove(&v);
        match eliminate_one(&current, v) {
            Eliminated::Atoms(next) => current = next,
            Eliminated::Unsat => return Ok(Eliminated::Unsat),
        }
        if prune {
            current = prune_parallel(current);
        }
        budget.charge(current.len())?;
    }
    Ok(Eliminated::Atoms(current))
}

/// Chooses the variable whose elimination generates the fewest new atoms
/// (the classic min-fill heuristic specialized to Fourier–Motzkin). A
/// variable appearing in an equation is free to eliminate, so it wins.
fn pick_variable(atoms: &BTreeSet<Atom>, candidates: &BTreeSet<Var>) -> Var {
    let mut best: Option<(usize, Var)> = None;
    for &v in candidates {
        let mut lowers = 0usize;
        let mut uppers = 0usize;
        let mut in_equation = false;
        for a in atoms {
            let c = a.expr().coeff(v);
            if c.is_zero() {
                continue;
            }
            match a.rel() {
                Rel::Eq => in_equation = true,
                _ if c.is_positive() => uppers += 1,
                _ => lowers += 1,
            }
        }
        let cost = if in_equation { 0 } else { lowers * uppers };
        match best {
            Some((c, _)) if c <= cost => {}
            _ => best = Some((cost, v)),
        }
    }
    best.expect("candidates nonempty").1
}

/// Eliminates the single variable `v`.
fn eliminate_one(atoms: &BTreeSet<Atom>, v: Var) -> Eliminated {
    // Gaussian step: use an equation if one mentions v.
    if let Some(eq) = atoms.iter().find(|a| a.rel() == Rel::Eq && a.mentions(v)) {
        let solution = eq.expr().solve_for(v).expect("mentions v");
        let mut out = BTreeSet::new();
        for a in atoms {
            if a == eq {
                continue; // ∃v. v = e  is  true
            }
            let s = a.substitute(v, &solution);
            match s.ground_truth() {
                Some(true) => {}
                Some(false) => return Eliminated::Unsat,
                None => {
                    out.insert(s);
                }
            }
        }
        return Eliminated::Atoms(out);
    }

    // Fourier–Motzkin step over inequalities.
    let mut lowers: Vec<(crate::LinExpr, Rel)> = Vec::new(); // bound ≤/< v
    let mut uppers: Vec<(crate::LinExpr, Rel)> = Vec::new(); // v ≤/< bound
    let mut rest: BTreeSet<Atom> = BTreeSet::new();
    for a in atoms {
        let c = a.expr().coeff(v);
        if c.is_zero() {
            rest.insert(a.clone());
            continue;
        }
        debug_assert!(a.rel() != Rel::Eq);
        // a: c·v + e rel 0  ⇔  v rel -e/c (c>0)   or   -e/c rel v (c<0)
        let mut e = a.expr().clone();
        e.add_term(v, -c.clone());
        let bound = e.scale(&(-Rat::one() / &c));
        if c.is_positive() {
            uppers.push((bound, a.rel()));
        } else {
            lowers.push((bound, a.rel()));
        }
    }
    for (lo, rl) in &lowers {
        for (hi, rh) in &uppers {
            let combined = Atom::new(lo - hi, rl.chain(*rh));
            match combined.ground_truth() {
                Some(true) => {}
                Some(false) => return Eliminated::Unsat,
                None => {
                    rest.insert(combined);
                }
            }
        }
    }
    Eliminated::Atoms(rest)
}

/// Keeps only the tightest atom of each family sharing the same linear
/// part: `e + a ⊲ 0` dominates `e + b ⊳ 0` when it implies it.
///
/// Fourier–Motzkin generates many such parallel constraints, so this cheap
/// syntactic pruning keeps intermediate conjunctions small without invoking
/// a full (recursive) entailment check.
pub fn prune_parallel(atoms: BTreeSet<Atom>) -> BTreeSet<Atom> {
    // Key: the variable part of the expression, scaled so its leading
    // coefficient has magnitude one (atoms are stored with integer content-1
    // coefficients, so parallel constraints may carry different scalings).
    // For inequalities the tightest has the *largest* constant
    // (e + c ≤ 0 ⇔ vars ≤ -c, larger c means smaller -c: tighter).
    let mut ineqs: BTreeMap<crate::LinExpr, (Rat, Rel)> = BTreeMap::new();
    let mut out: BTreeSet<Atom> = BTreeSet::new();
    for a in atoms {
        if a.rel() == Rel::Eq {
            out.insert(a);
            continue;
        }
        let mut key = a.expr().clone();
        key.set_constant(Rat::zero());
        let scale = match key.leading_coeff() {
            Some(c) => Rat::one() / c.abs(),
            None => Rat::one(), // ground atom; caller filtered, defensive
        };
        let key = key.scale(&scale);
        let c = a.expr().constant_term() * &scale;
        match ineqs.get_mut(&key) {
            None => {
                ineqs.insert(key, (c, a.rel()));
            }
            Some((c0, r0)) => {
                let tighter = c > *c0 || (c == *c0 && a.rel() == Rel::Lt && *r0 == Rel::Le);
                if tighter {
                    *c0 = c;
                    *r0 = a.rel();
                }
            }
        }
    }
    for (mut key, (c, rel)) in ineqs {
        key.set_constant(c);
        out.insert(Atom::new(key, rel));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinExpr;

    fn x() -> Var {
        Var(0)
    }
    fn y() -> Var {
        Var(1)
    }
    fn z() -> Var {
        Var(2)
    }
    fn ri(v: i64) -> Rat {
        Rat::from_int(v)
    }

    fn atoms(list: Vec<Atom>) -> BTreeSet<Atom> {
        list.into_iter().collect()
    }

    #[test]
    fn eliminate_between_bounds() {
        // 1 ≤ x ∧ x ≤ y   ⇒ ∃x: 1 ≤ y
        let set = atoms(vec![
            Atom::ge(LinExpr::var(x()), LinExpr::constant_int(1)),
            Atom::le(LinExpr::var(x()), LinExpr::var(y())),
        ]);
        let got = eliminate(&set, &[x()].into_iter().collect());
        let want = atoms(vec![Atom::ge(LinExpr::var(y()), LinExpr::constant_int(1))]);
        assert_eq!(got, Eliminated::Atoms(want));
    }

    #[test]
    fn strictness_propagates() {
        // 1 < x ∧ x ≤ y  ⇒ 1 < y
        let set = atoms(vec![
            Atom::gt(LinExpr::var(x()), LinExpr::constant_int(1)),
            Atom::le(LinExpr::var(x()), LinExpr::var(y())),
        ]);
        let got = eliminate(&set, &[x()].into_iter().collect());
        let want = atoms(vec![Atom::gt(LinExpr::var(y()), LinExpr::constant_int(1))]);
        assert_eq!(got, Eliminated::Atoms(want));
    }

    #[test]
    fn unsat_detected() {
        // x < 1 ∧ x > 2
        let set = atoms(vec![
            Atom::lt(LinExpr::var(x()), LinExpr::constant_int(1)),
            Atom::gt(LinExpr::var(x()), LinExpr::constant_int(2)),
        ]);
        assert_eq!(eliminate(&set, &[x()].into_iter().collect()), Eliminated::Unsat);
    }

    #[test]
    fn point_boundary_strictness() {
        // x ≤ 1 ∧ x ≥ 1 is satisfiable (x = 1); x < 1 ∧ x ≥ 1 is not.
        let sat = atoms(vec![
            Atom::le(LinExpr::var(x()), LinExpr::constant_int(1)),
            Atom::ge(LinExpr::var(x()), LinExpr::constant_int(1)),
        ]);
        assert!(matches!(eliminate(&sat, &[x()].into_iter().collect()), Eliminated::Atoms(_)));
        let unsat = atoms(vec![
            Atom::lt(LinExpr::var(x()), LinExpr::constant_int(1)),
            Atom::ge(LinExpr::var(x()), LinExpr::constant_int(1)),
        ]);
        assert_eq!(eliminate(&unsat, &[x()].into_iter().collect()), Eliminated::Unsat);
    }

    #[test]
    fn gaussian_substitution_used_for_equations() {
        // x = y + 1 ∧ x ≤ 3 ∧ x ≥ 0  ⇒ ∃x: y ≤ 2 ∧ y ≥ -1
        let set = atoms(vec![
            Atom::eq(
                LinExpr::var(x()),
                LinExpr::from_terms([(y(), ri(1))], ri(1)),
            ),
            Atom::le(LinExpr::var(x()), LinExpr::constant_int(3)),
            Atom::ge(LinExpr::var(x()), LinExpr::constant_int(0)),
        ]);
        let got = eliminate(&set, &[x()].into_iter().collect());
        let want = atoms(vec![
            Atom::le(LinExpr::var(y()), LinExpr::constant_int(2)),
            Atom::ge(LinExpr::var(y()), LinExpr::constant_int(-1)),
        ]);
        assert_eq!(got, Eliminated::Atoms(want));
    }

    #[test]
    fn eliminating_all_vars_decides_satisfiability() {
        // x + y ≤ 2 ∧ x ≥ 1 ∧ y ≥ 1: the only point is (1,1) — satisfiable.
        let set = atoms(vec![
            Atom::le(
                LinExpr::from_terms([(x(), ri(1)), (y(), ri(1))], Rat::zero()),
                LinExpr::constant_int(2),
            ),
            Atom::ge(LinExpr::var(x()), LinExpr::constant_int(1)),
            Atom::ge(LinExpr::var(y()), LinExpr::constant_int(1)),
        ]);
        let all: BTreeSet<Var> = [x(), y()].into_iter().collect();
        assert_eq!(eliminate(&set, &all), Eliminated::Atoms(BTreeSet::new()));
        // Make it strict and it becomes unsatisfiable.
        let strict = atoms(vec![
            Atom::lt(
                LinExpr::from_terms([(x(), ri(1)), (y(), ri(1))], Rat::zero()),
                LinExpr::constant_int(2),
            ),
            Atom::ge(LinExpr::var(x()), LinExpr::constant_int(1)),
            Atom::ge(LinExpr::var(y()), LinExpr::constant_int(1)),
        ]);
        assert_eq!(eliminate(&strict, &all), Eliminated::Unsat);
    }

    #[test]
    fn three_var_chain() {
        // x ≤ y ∧ y ≤ z ∧ z ≤ x ∧ x = 1: eliminating x,y,z is satisfiable.
        let set = atoms(vec![
            Atom::le(LinExpr::var(x()), LinExpr::var(y())),
            Atom::le(LinExpr::var(y()), LinExpr::var(z())),
            Atom::le(LinExpr::var(z()), LinExpr::var(x())),
            Atom::var_eq_const(x(), ri(1)),
        ]);
        let all: BTreeSet<Var> = [x(), y(), z()].into_iter().collect();
        assert_eq!(eliminate(&set, &all), Eliminated::Atoms(BTreeSet::new()));
    }

    #[test]
    fn prune_parallel_keeps_tightest() {
        let set = atoms(vec![
            Atom::le(LinExpr::var(x()), LinExpr::constant_int(5)),
            Atom::le(LinExpr::var(x()), LinExpr::constant_int(3)),
            Atom::lt(LinExpr::var(x()), LinExpr::constant_int(3)),
            Atom::ge(LinExpr::var(x()), LinExpr::constant_int(0)),
        ]);
        let pruned = prune_parallel(set);
        let want = atoms(vec![
            Atom::lt(LinExpr::var(x()), LinExpr::constant_int(3)),
            Atom::ge(LinExpr::var(x()), LinExpr::constant_int(0)),
        ]);
        assert_eq!(pruned, want);
    }

    #[test]
    fn unpruned_elimination_is_equivalent() {
        // A chain that generates parallel constraints during elimination.
        let set = atoms(vec![
            Atom::le(LinExpr::var(x()), LinExpr::var(y())),
            Atom::le(LinExpr::var(x()), LinExpr::constant_int(5)),
            Atom::le(LinExpr::var(x()), LinExpr::constant_int(9)),
            Atom::ge(LinExpr::var(x()), LinExpr::constant_int(0)),
            Atom::le(LinExpr::var(y()), LinExpr::var(z())),
        ]);
        let vars: BTreeSet<Var> = [x(), y()].into_iter().collect();
        let pruned = eliminate(&set, &vars);
        let unpruned = eliminate_unpruned(&set, &vars);
        match (pruned, unpruned) {
            (Eliminated::Atoms(a), Eliminated::Atoms(b)) => {
                // Unpruned may carry redundant parallels; pruning its
                // output must give the pruned result.
                assert_eq!(a, prune_parallel(b));
            }
            other => panic!("expected satisfiable results: {:?}", other),
        }
        // Unsat agrees too.
        let bad = atoms(vec![
            Atom::lt(LinExpr::var(x()), LinExpr::constant_int(0)),
            Atom::gt(LinExpr::var(x()), LinExpr::constant_int(0)),
        ]);
        let vars: BTreeSet<Var> = [x()].into_iter().collect();
        assert_eq!(eliminate_unpruned(&bad, &vars), Eliminated::Unsat);
    }

    #[test]
    fn budget_trips_on_growth_and_records_peak() {
        // A dense system whose unpruned elimination multiplies bounds.
        let mut list = Vec::new();
        for i in 0..6 {
            list.push(Atom::ge(LinExpr::var(x()), LinExpr::constant_int(-i)));
            list.push(Atom::le(
                LinExpr::var(x()),
                LinExpr::from_terms([(y(), ri(1))], ri(i)),
            ));
        }
        let set = atoms(list);
        let vars: BTreeSet<Var> = [x()].into_iter().collect();
        let peak = AtomicU64::new(0);
        // Generous budget: succeeds and matches the unbudgeted result.
        let ok = eliminate_budgeted(
            &set,
            &vars,
            FmBudget { max_atoms: Some(1000), peak: Some(&peak), calls: None },
        );
        assert_eq!(ok, Ok(eliminate(&set, &vars)));
        assert!(peak.load(Ordering::Relaxed) >= set.len() as u64);
        // A budget below the input size trips immediately.
        let err = eliminate_budgeted(&set, &vars, FmBudget { max_atoms: Some(2), peak: None, calls: None });
        match err {
            Err(FmBudgetExceeded { atoms, limit }) => {
                assert!(atoms > limit);
                assert_eq!(limit, 2);
            }
            other => panic!("expected budget trip, got {:?}", other),
        }
    }

    #[test]
    fn variables_not_mentioned_are_noops() {
        let set = atoms(vec![Atom::ge(LinExpr::var(y()), LinExpr::constant_int(1))]);
        let got = eliminate(&set, &[x()].into_iter().collect());
        assert_eq!(got, Eliminated::Atoms(set));
    }
}
