//! Disk managers: page-granular persistent storage.

use crate::page::{PageId, PAGE_SIZE};
use crate::{Result, StorageError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Page-granular storage. Implementations must hand back exactly the bytes
/// last written to each allocated page.
pub trait DiskManager {
    /// Allocates a fresh zeroed page and returns its id.
    fn allocate(&mut self) -> Result<PageId>;

    /// Reads page `id` into `buf` (which must be `PAGE_SIZE` bytes).
    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()>;

    /// Writes `buf` (which must be `PAGE_SIZE` bytes) to page `id`.
    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()>;

    /// Number of allocated pages.
    fn num_pages(&self) -> u64;
}

/// An in-memory disk: the default substrate for experiments, where "disk
/// accesses" are counted logically by the buffer pool rather than performed.
#[derive(Default)]
pub struct MemDisk {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl MemDisk {
    /// An empty in-memory disk.
    pub fn new() -> MemDisk {
        MemDisk::default()
    }
}

impl DiskManager for MemDisk {
    fn allocate(&mut self) -> Result<PageId> {
        self.pages.push(Box::new([0u8; PAGE_SIZE]));
        Ok(PageId(self.pages.len() as u64 - 1))
    }

    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let page = self.pages.get(id.0 as usize).ok_or(StorageError::BadPage(id))?;
        buf.copy_from_slice(&page[..]);
        Ok(())
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        let page = self.pages.get_mut(id.0 as usize).ok_or(StorageError::BadPage(id))?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.pages.len() as u64
    }
}

/// A file-backed disk; page `i` lives at byte offset `i * PAGE_SIZE`.
pub struct FileDisk {
    file: File,
    pages: u64,
}

impl FileDisk {
    /// Opens (creating if needed) the file at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<FileDisk> {
        let file = OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::corrupt("file length not page aligned"));
        }
        Ok(FileDisk { file, pages: len / PAGE_SIZE as u64 })
    }
}

impl DiskManager for FileDisk {
    fn allocate(&mut self) -> Result<PageId> {
        let id = PageId(self.pages);
        self.file.seek(SeekFrom::Start(self.pages * PAGE_SIZE as u64))?;
        self.file.write_all(&[0u8; PAGE_SIZE])?;
        self.pages += 1;
        Ok(id)
    }

    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if id.0 >= self.pages {
            return Err(StorageError::BadPage(id));
        }
        self.file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        if id.0 >= self.pages {
            return Err(StorageError::BadPage(id));
        }
        self.file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(disk: &mut dyn DiskManager) {
        let a = disk.allocate().unwrap();
        let b = disk.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(disk.num_pages(), 2);

        let mut buf = [0u8; PAGE_SIZE];
        disk.read(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0), "fresh pages are zeroed");

        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        disk.write(a, &buf).unwrap();

        let mut back = [0u8; PAGE_SIZE];
        disk.read(a, &mut back).unwrap();
        assert_eq!(buf, back);
        disk.read(b, &mut back).unwrap();
        assert!(back.iter().all(|&x| x == 0), "other pages untouched");

        assert!(disk.read(PageId(99), &mut back).is_err());
        assert!(disk.write(PageId(99), &buf).is_err());
    }

    #[test]
    fn mem_disk_roundtrip() {
        exercise(&mut MemDisk::new());
    }

    #[test]
    fn file_disk_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("cqa_disk_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        {
            let mut disk = FileDisk::open(&path).unwrap();
            exercise(&mut disk);
        }
        {
            // Reopen: data persists.
            let mut disk = FileDisk::open(&path).unwrap();
            assert_eq!(disk.num_pages(), 2);
            let mut buf = [0u8; PAGE_SIZE];
            disk.read(PageId(0), &mut buf).unwrap();
            assert_eq!(buf[0], 0xAB);
            assert_eq!(buf[PAGE_SIZE - 1], 0xCD);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
