//! Persisting an R\*-tree one node per disk page.
//!
//! The in-memory tree counts *logical* node accesses; this module makes the
//! metric physical: nodes are serialized one-per-page through
//! [`cqa_storage`], and searches fetch pages through a [`BufferPool`], so
//! the pool's [`AccessStats`](cqa_storage::AccessStats) reports real page
//! traffic (with whatever caching the pool is configured for).

use crate::rect::Rect;
use crate::rstar::{NodeKind, RStarTree};
use cqa_storage::codec::{Reader, Writer};
use cqa_storage::{BufferPool, DiskManager, PageId, Result, StorageError, PAGE_SIZE};

/// A persisted R\*-tree: the root page and nothing else in memory.
#[derive(Debug, Clone, Copy)]
pub struct PagedTree<const D: usize> {
    root: PageId,
}

const KIND_LEAF: u8 = 0;
const KIND_INTERNAL: u8 = 1;

/// Writes every node of `tree` to its own page, returning the paged tree.
pub fn persist<const D: usize, M: DiskManager>(
    tree: &RStarTree<D, u64>,
    pool: &mut BufferPool<M>,
) -> Result<PagedTree<D>> {
    let root = persist_node(tree, tree_root(tree), pool)?;
    Ok(PagedTree { root })
}

// Small internal accessors (same crate) to walk the arena.
fn tree_root<const D: usize>(tree: &RStarTree<D, u64>) -> crate::rstar::NodeId {
    tree.root
}

fn persist_node<const D: usize, M: DiskManager>(
    tree: &RStarTree<D, u64>,
    id: crate::rstar::NodeId,
    pool: &mut BufferPool<M>,
) -> Result<PageId> {
    let node = tree.node(id);
    let mut w = Writer::new();
    match &node.kind {
        NodeKind::Leaf(entries) => {
            w.u8(KIND_LEAF).u32(entries.len() as u32);
            for (r, item) in entries {
                write_rect(&mut w, r);
                w.u64(*item);
            }
        }
        NodeKind::Internal(children) => {
            // Children first (post-order) so their page ids are known.
            let mut child_pages = Vec::with_capacity(children.len());
            for &c in children {
                child_pages.push((tree.node(c).rect, persist_node(tree, c, pool)?));
            }
            w.u8(KIND_INTERNAL).u32(child_pages.len() as u32);
            for (r, pid) in child_pages {
                write_rect(&mut w, &r);
                w.u64(pid.0);
            }
        }
    }
    let bytes = w.finish();
    if bytes.len() > PAGE_SIZE {
        return Err(StorageError::RecordTooLarge(bytes.len()));
    }
    let pid = pool.allocate()?;
    pool.with_page_mut(pid, |page| {
        page[..bytes.len()].copy_from_slice(&bytes);
    })?;
    Ok(pid)
}

fn write_rect<const D: usize>(w: &mut Writer, r: &Rect<D>) {
    for d in 0..D {
        w.f64(r.lo[d]);
    }
    for d in 0..D {
        w.f64(r.hi[d]);
    }
}

fn read_rect<const D: usize>(r: &mut Reader<'_>) -> Result<Rect<D>> {
    let mut lo = [0.0; D];
    let mut hi = [0.0; D];
    for slot in lo.iter_mut() {
        *slot = r.f64()?;
    }
    for slot in hi.iter_mut() {
        *slot = r.f64()?;
    }
    Ok(Rect { lo, hi })
}

impl<const D: usize> PagedTree<D> {
    /// The root page.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Range search through the buffer pool. Returns matching ids and the
    /// number of page fetches this search performed (logical accesses; with
    /// a cold or unit-capacity pool these equal physical reads).
    pub fn search<M: DiskManager>(
        &self,
        pool: &mut BufferPool<M>,
        query: &Rect<D>,
    ) -> Result<(Vec<u64>, u64)> {
        let before = pool.stats().logical;
        let mut results = Vec::new();
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            let node_bytes = pool.with_page(pid, |page| page.to_vec())?;
            let mut r = Reader::new(&node_bytes);
            let kind = r.u8()?;
            let count = r.u32()? as usize;
            for _ in 0..count {
                let rect: Rect<D> = read_rect(&mut r)?;
                let payload = r.u64()?;
                if rect.intersects(query) {
                    if kind == KIND_LEAF {
                        results.push(payload);
                    } else {
                        stack.push(PageId(payload));
                    }
                }
            }
        }
        Ok((results, pool.stats().logical - before))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rstar::RStarParams;
    use cqa_storage::MemDisk;

    #[test]
    fn persisted_search_matches_memory() {
        let mut tree: RStarTree<2, u64> = RStarTree::new(RStarParams::with_max(8));
        for i in 0..300u64 {
            let x = (i % 20) as f64 * 7.0;
            let y = (i / 20) as f64 * 7.0;
            tree.insert(Rect::new([x, y], [x + 3.0, y + 3.0]), i);
        }
        let mut pool = BufferPool::new(MemDisk::new(), 256);
        let paged = persist(&tree, &mut pool).unwrap();

        for q in [
            Rect::new([0.0, 0.0], [10.0, 10.0]),
            Rect::new([50.0, 50.0], [80.0, 60.0]),
            Rect::new([999.0, 999.0], [1000.0, 1000.0]),
        ] {
            let (mut mem, mem_acc) = tree.search_with_stats(&q);
            let (mut disk, disk_acc) = paged.search(&mut pool, &q).unwrap();
            mem.sort();
            disk.sort();
            assert_eq!(mem, disk);
            assert_eq!(mem_acc, disk_acc, "page fetches mirror node accesses");
        }
    }

    #[test]
    fn node_pages_fit() {
        // Page-fitting parameters must produce nodes that serialize within
        // a page even when full.
        let params = RStarParams::fitting_page(2);
        let mut tree: RStarTree<2, u64> = RStarTree::new(params);
        for i in 0..2000u64 {
            let x = (i % 100) as f64;
            let y = (i / 100) as f64;
            tree.insert(Rect::new([x, y], [x + 0.5, y + 0.5]), i);
        }
        let mut pool = BufferPool::new(MemDisk::new(), 64);
        let paged = persist(&tree, &mut pool).unwrap();
        let (all, _) = paged.search(&mut pool, &tree.bounds()).unwrap();
        assert_eq!(all.len(), 2000);
    }

    #[test]
    fn cold_pool_counts_physical_reads() {
        let mut tree: RStarTree<1, u64> = RStarTree::new(RStarParams::with_max(4));
        for i in 0..100u64 {
            tree.insert(Rect::new([i as f64], [i as f64 + 0.5]), i);
        }
        let mut pool = BufferPool::new(MemDisk::new(), 1); // effectively no cache
        let paged = persist(&tree, &mut pool).unwrap();
        pool.clear().unwrap(); // drop the page left warm by persist
        pool.reset_stats();
        let (hits, logical) = paged.search(&mut pool, &Rect::new([10.0], [20.0])).unwrap();
        assert_eq!(hits.len(), 11);
        let stats = pool.stats();
        assert_eq!(stats.logical, logical);
        assert_eq!(stats.logical, stats.physical, "unit pool: every fetch hits disk");
    }
}
