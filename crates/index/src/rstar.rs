//! The R\*-tree (Beckmann, Kriegel, Schneider, Seeger — the paper's \[2\]).
//!
//! Implemented from the original description: ChooseSubtree minimizes
//! overlap enlargement at the leaf level and area enlargement above it;
//! OverflowTreatment performs one **forced reinsertion** of the 30% of
//! entries farthest from the node center per level per insertion before
//! resorting to a split; Split chooses the axis by minimum margin sum and
//! the distribution by minimum overlap.
//!
//! Nodes live in an arena; one node corresponds to one disk page (the
//! fan-out is derived from [`cqa_storage::PAGE_SIZE`] by
//! [`RStarParams::fitting_page`]), which makes *nodes visited during a
//! search* the faithful analogue of the paper's "number of disk accesses".

use crate::rect::Rect;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Global observability handles for R\*-tree searches, registered once.
/// Searches may run inside parallel workers, so only order-independent
/// counters/histograms are recorded here — never spans.
struct SearchMetrics {
    searches: &'static cqa_obs::Counter,
    node_accesses: &'static cqa_obs::Counter,
    search_accesses: &'static cqa_obs::Histogram,
}

fn search_metrics() -> &'static SearchMetrics {
    static M: OnceLock<SearchMetrics> = OnceLock::new();
    M.get_or_init(|| SearchMetrics {
        searches: cqa_obs::counter("index.rstar.searches"),
        node_accesses: cqa_obs::counter("index.rstar.node_accesses"),
        search_accesses: cqa_obs::histogram("index.rstar.search_accesses"),
    })
}

/// Tuning parameters of the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RStarParams {
    /// Maximum entries per node (`M`).
    pub max_entries: usize,
    /// Minimum entries per node (`m`, 40% of `M` per the R\* paper).
    pub min_entries: usize,
    /// Entries removed by forced reinsertion (`p`, 30% of `M`).
    pub reinsert_count: usize,
}

impl RStarParams {
    /// Parameters with the given maximum fan-out.
    pub fn with_max(max_entries: usize) -> RStarParams {
        assert!(max_entries >= 4, "R*-tree needs fan-out of at least 4");
        RStarParams {
            max_entries,
            min_entries: (max_entries * 2 / 5).max(2),
            reinsert_count: (max_entries * 3 / 10).max(1),
        }
    }

    /// Parameters sized so one node fills one disk page: an entry is `2·D`
    /// `f64` coordinates plus an 8-byte payload (child pointer or record
    /// id), and 16 bytes of page header are reserved.
    pub fn fitting_page(dims: usize) -> RStarParams {
        let entry = dims * 16 + 8;
        RStarParams::with_max((cqa_storage::PAGE_SIZE - 16) / entry)
    }
}

/// Index of a node in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct NodeId(pub(crate) u32);

#[derive(Debug, Clone)]
pub(crate) enum NodeKind<const D: usize, T> {
    Internal(Vec<NodeId>),
    Leaf(Vec<(Rect<D>, T)>),
}

#[derive(Debug, Clone)]
pub(crate) struct Node<const D: usize, T> {
    pub(crate) rect: Rect<D>,
    pub(crate) kind: NodeKind<D, T>,
}

/// An R\*-tree mapping `D`-dimensional rectangles to payloads of type `T`.
///
/// Searches are `&self` and thread-safe: the access counter is atomic, so
/// a tree shared across the parallel executor's workers still tallies the
/// paper's disk-access metric (the per-query counts remain exact; only the
/// accumulation order varies, and sums are order-independent).
#[derive(Debug)]
pub struct RStarTree<const D: usize, T> {
    params: RStarParams,
    pub(crate) nodes: Vec<Node<D, T>>,
    free: Vec<NodeId>,
    pub(crate) root: NodeId,
    height: usize, // leaf = level 0; root is at level height - 1
    len: usize,
    accesses: AtomicU64,
}

impl<const D: usize, T: Clone> Clone for RStarTree<D, T> {
    fn clone(&self) -> Self {
        RStarTree {
            params: self.params,
            nodes: self.nodes.clone(),
            free: self.free.clone(),
            root: self.root,
            height: self.height,
            len: self.len,
            accesses: AtomicU64::new(self.accesses.load(Ordering::Relaxed)),
        }
    }
}

impl<const D: usize, T: Clone + PartialEq> Default for RStarTree<D, T> {
    fn default() -> Self {
        RStarTree::new(RStarParams::fitting_page(D))
    }
}

impl<const D: usize, T: Clone + PartialEq> RStarTree<D, T> {
    /// An empty tree with the given parameters.
    pub fn new(params: RStarParams) -> RStarTree<D, T> {
        let root = Node { rect: Rect::empty(), kind: NodeKind::Leaf(Vec::new()) };
        RStarTree {
            params,
            nodes: vec![root],
            free: Vec::new(),
            root: NodeId(0),
            height: 1,
            len: 0,
            accesses: AtomicU64::new(0),
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 = a single leaf node).
    pub fn height(&self) -> usize {
        self.height
    }

    /// The parameters in force.
    pub fn params(&self) -> RStarParams {
        self.params
    }

    /// Total node accesses performed by searches so far.
    pub fn accesses(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }

    /// Resets the access counter.
    pub fn reset_accesses(&self) {
        self.accesses.store(0, Ordering::Relaxed);
    }

    /// The bounding rectangle of the whole tree.
    pub fn bounds(&self) -> Rect<D> {
        self.node(self.root).rect
    }

    /// Number of live nodes (≈ pages the tree would occupy).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Structural (node-level) equality: same height, same tree shape,
    /// same node rectangles, and same leaf entries in the same order.
    /// Slot indices in the arena are allowed to differ — two trees built
    /// through different allocation histories still compare equal if
    /// every page a query would touch is identical. Pins the contract
    /// that the parallel STR bulk load builds the exact tree the serial
    /// load does.
    pub fn same_structure(&self, other: &RStarTree<D, T>) -> bool
    where
        T: PartialEq,
    {
        fn eq_node<const D: usize, T: Clone + PartialEq>(
            a: &RStarTree<D, T>,
            an: NodeId,
            b: &RStarTree<D, T>,
            bn: NodeId,
        ) -> bool {
            let (na, nb) = (a.node(an), b.node(bn));
            if na.rect != nb.rect {
                return false;
            }
            match (&na.kind, &nb.kind) {
                (NodeKind::Internal(ca), NodeKind::Internal(cb)) => {
                    ca.len() == cb.len()
                        && ca.iter().zip(cb.iter()).all(|(&x, &y)| eq_node(a, x, b, y))
                }
                (NodeKind::Leaf(ea), NodeKind::Leaf(eb)) => ea == eb,
                _ => false,
            }
        }
        self.len == other.len
            && self.height == other.height
            && (self.is_empty() || eq_node(self, self.root, other, other.root))
    }

    pub(crate) fn node(&self, id: NodeId) -> &Node<D, T> {
        &self.nodes[id.0 as usize]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node<D, T> {
        &mut self.nodes[id.0 as usize]
    }

    fn alloc(&mut self, node: Node<D, T>) -> NodeId {
        match self.free.pop() {
            Some(id) => {
                self.nodes[id.0 as usize] = node;
                id
            }
            None => {
                self.nodes.push(node);
                NodeId(self.nodes.len() as u32 - 1)
            }
        }
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// All payloads whose rectangle intersects `query`.
    pub fn search(&self, query: &Rect<D>) -> Vec<T> {
        self.search_with_stats(query).0
    }

    /// Like [`Self::search`], also returning the node accesses this query
    /// performed (the paper's disk-access metric).
    pub fn search_with_stats(&self, query: &Rect<D>) -> (Vec<T>, u64) {
        let mut results = Vec::new();
        let mut stack = vec![self.root];
        let mut accesses = 0u64;
        while let Some(id) = stack.pop() {
            accesses += 1; // reading this node's page
            match &self.node(id).kind {
                NodeKind::Leaf(entries) => {
                    for (r, t) in entries {
                        if r.intersects(query) {
                            results.push(t.clone());
                        }
                    }
                }
                NodeKind::Internal(children) => {
                    for &c in children {
                        if self.node(c).rect.intersects(query) {
                            stack.push(c);
                        }
                    }
                }
            }
        }
        self.accesses.fetch_add(accesses, Ordering::Relaxed);
        if cqa_obs::metrics_enabled() {
            let m = search_metrics();
            m.searches.inc();
            m.node_accesses.add(accesses);
            m.search_accesses.record(accesses);
        }
        (results, accesses)
    }

    /// Iterates over every `(rect, payload)` entry.
    pub fn iter(&self) -> impl Iterator<Item = (Rect<D>, T)> + '_ {
        let mut stack = vec![self.root];
        let mut pending: Vec<(Rect<D>, T)> = Vec::new();
        std::iter::from_fn(move || loop {
            if let Some(e) = pending.pop() {
                return Some(e);
            }
            let id = stack.pop()?;
            match &self.node(id).kind {
                NodeKind::Leaf(entries) => pending.extend(entries.iter().cloned()),
                NodeKind::Internal(children) => stack.extend(children.iter().copied()),
            }
        })
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Inserts an entry.
    pub fn insert(&mut self, rect: Rect<D>, item: T) {
        debug_assert!(!rect.is_empty(), "cannot index the empty rectangle");
        self.len += 1;
        let mut reinserted = vec![false; self.height + 1];
        self.insert_leaf_entry(rect, item, &mut reinserted);
    }

    fn insert_leaf_entry(&mut self, rect: Rect<D>, item: T, reinserted: &mut Vec<bool>) {
        let path = self.choose_path(&rect, 0);
        let leaf = *path.last().unwrap();
        match &mut self.node_mut(leaf).kind {
            NodeKind::Leaf(entries) => entries.push((rect, item)),
            NodeKind::Internal(_) => unreachable!("choose_path(0) returns a leaf"),
        }
        self.refresh_rects(&path);
        self.handle_overflow_chain(path, reinserted);
    }

    /// Inserts a subtree (used when splits propagate and by reinsertion of
    /// internal entries during condensation).
    fn insert_subtree(&mut self, child: NodeId, level: usize, reinserted: &mut Vec<bool>) {
        let rect = self.node(child).rect;
        let path = self.choose_path(&rect, level + 1);
        let target = *path.last().unwrap();
        match &mut self.node_mut(target).kind {
            NodeKind::Internal(children) => children.push(child),
            NodeKind::Leaf(_) => unreachable!("subtrees are inserted above leaf level"),
        }
        self.refresh_rects(&path);
        self.handle_overflow_chain(path, reinserted);
    }

    /// The path from the root down to a node at `level` chosen for `rect`.
    fn choose_path(&self, rect: &Rect<D>, level: usize) -> Vec<NodeId> {
        let mut path = vec![self.root];
        let mut current_level = self.height - 1;
        let mut id = self.root;
        while current_level > level {
            let children = match &self.node(id).kind {
                NodeKind::Internal(c) => c,
                NodeKind::Leaf(_) => break,
            };
            let next = if current_level == 1 && level == 0 {
                self.pick_min_overlap_child(children, rect)
            } else {
                self.pick_min_enlargement_child(children, rect)
            };
            path.push(next);
            id = next;
            current_level -= 1;
        }
        path
    }

    /// R\* leaf-level choice: the child whose *overlap with its siblings*
    /// grows least when enlarged to cover `rect`. Per the R\* paper's
    /// "nearly no affect on retrieval performance" optimization, only the
    /// 32 children with least area enlargement are examined when the node
    /// is large, keeping insertion subquadratic in the fan-out.
    fn pick_min_overlap_child(&self, children: &[NodeId], rect: &Rect<D>) -> NodeId {
        const CANDIDATES: usize = 32;
        let shortlist: Vec<NodeId>;
        let children: &[NodeId] = if children.len() > CANDIDATES {
            let mut by_enlargement: Vec<(f64, NodeId)> = children
                .iter()
                .map(|&c| (self.node(c).rect.enlargement(rect), c))
                .collect();
            by_enlargement
                .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            shortlist = by_enlargement.into_iter().take(CANDIDATES).map(|(_, c)| c).collect();
            &shortlist
        } else {
            children
        };
        let mut best: Option<(f64, f64, f64, NodeId)> = None;
        for &c in children {
            let cr = self.node(c).rect;
            let enlarged = cr.union(rect);
            let mut overlap_delta = 0.0;
            for &o in children {
                if o == c {
                    continue;
                }
                let or = self.node(o).rect;
                overlap_delta += enlarged.overlap_area(&or) - cr.overlap_area(&or);
            }
            let key = (overlap_delta, cr.enlargement(rect), cr.area(), c);
            match &best {
                Some((d, e, a, _))
                    if (*d, *e, *a) <= (key.0, key.1, key.2) => {}
                _ => best = Some(key),
            }
        }
        best.expect("internal node has children").3
    }

    /// Above the leaf level: least area enlargement, then least area.
    fn pick_min_enlargement_child(&self, children: &[NodeId], rect: &Rect<D>) -> NodeId {
        let mut best: Option<(f64, f64, NodeId)> = None;
        for &c in children {
            let cr = self.node(c).rect;
            let key = (cr.enlargement(rect), cr.area(), c);
            match &best {
                Some((e, a, _)) if (*e, *a) <= (key.0, key.1) => {}
                _ => best = Some(key),
            }
        }
        best.expect("internal node has children").2
    }

    /// Recomputes bounding rectangles along a root-to-node path.
    fn refresh_rects(&mut self, path: &[NodeId]) {
        for &id in path.iter().rev() {
            let rect = self.compute_rect(id);
            self.node_mut(id).rect = rect;
        }
    }

    fn compute_rect(&self, id: NodeId) -> Rect<D> {
        match &self.node(id).kind {
            NodeKind::Leaf(entries) => entries
                .iter()
                .fold(Rect::empty(), |acc, (r, _)| acc.union(r)),
            NodeKind::Internal(children) => children
                .iter()
                .fold(Rect::empty(), |acc, &c| acc.union(&self.node(c).rect)),
        }
    }

    fn entry_count(&self, id: NodeId) -> usize {
        match &self.node(id).kind {
            NodeKind::Leaf(e) => e.len(),
            NodeKind::Internal(c) => c.len(),
        }
    }

    /// Walks the path bottom-up resolving overflows by forced reinsertion
    /// or splitting.
    fn handle_overflow_chain(&mut self, mut path: Vec<NodeId>, reinserted: &mut Vec<bool>) {
        while let Some(&node) = path.last() {
            if self.entry_count(node) <= self.params.max_entries {
                return;
            }
            let level = self.height - path.len();
            let is_root = path.len() == 1;
            let is_leaf = matches!(self.node(node).kind, NodeKind::Leaf(_));
            if !is_root && is_leaf && !reinserted.get(level).copied().unwrap_or(false) {
                if level < reinserted.len() {
                    reinserted[level] = true;
                }
                self.forced_reinsert(node, &path, reinserted);
                return; // reinsertion restarts its own overflow handling
            }
            self.split_node(&mut path, reinserted);
        }
    }

    /// Removes the `p` entries farthest from the node's center and
    /// reinserts them (R\* OverflowTreatment, leaf level).
    fn forced_reinsert(&mut self, node: NodeId, path: &[NodeId], reinserted: &mut Vec<bool>) {
        let node_rect = self.node(node).rect;
        let reinsert_count = self.params.reinsert_count;
        let removed: Vec<(Rect<D>, T)> = match &mut self.node_mut(node).kind {
            NodeKind::Leaf(entries) => {
                // Sort by center distance, farthest first.
                entries.sort_by(|a, b| {
                    node_rect
                        .center_distance2(&a.0)
                        .partial_cmp(&node_rect.center_distance2(&b.0))
                        .unwrap()
                });
                let keep = entries.len() - reinsert_count.min(entries.len() - 1);
                entries.split_off(keep)
            }
            NodeKind::Internal(_) => unreachable!("forced reinsert is leaf-level"),
        };
        self.refresh_rects(path);
        for (r, t) in removed {
            self.insert_leaf_entry(r, t, reinserted);
        }
    }

    /// Splits the node at the end of `path`, inserting the new sibling into
    /// the parent (or growing a new root).
    fn split_node(&mut self, path: &mut Vec<NodeId>, _reinserted: &mut [bool]) {
        let node = path.pop().unwrap();
        let params = self.params;
        let (sibling_kind, sibling_rect, node_rect) = match &mut self.node_mut(node).kind {
            NodeKind::Leaf(entries) => {
                let all = std::mem::take(entries);
                let (keep, give) = split_entries(params, all, |e| e.0);
                let node_rect = keep.iter().fold(Rect::empty(), |a, e| a.union(&e.0));
                let sib_rect = give.iter().fold(Rect::empty(), |a, e| a.union(&e.0));
                *entries = keep;
                (NodeKind::Leaf(give), sib_rect, node_rect)
            }
            NodeKind::Internal(children) => {
                let all: Vec<NodeId> = std::mem::take(children);
                // Need rects: gather, split, then write back ids.
                let with_rects: Vec<(Rect<D>, NodeId)> =
                    all.iter().map(|&c| (self.nodes[c.0 as usize].rect, c)).collect();
                let (keep, give) = split_entries(params, with_rects, |e| e.0);
                let node_rect = keep.iter().fold(Rect::empty(), |a, e| a.union(&e.0));
                let sib_rect = give.iter().fold(Rect::empty(), |a, e| a.union(&e.0));
                let keep_ids: Vec<NodeId> = keep.into_iter().map(|e| e.1).collect();
                let give_ids: Vec<NodeId> = give.into_iter().map(|e| e.1).collect();
                match &mut self.node_mut(node).kind {
                    NodeKind::Internal(children) => *children = keep_ids,
                    _ => unreachable!(),
                }
                (NodeKind::Internal(give_ids), sib_rect, node_rect)
            }
        };
        self.node_mut(node).rect = node_rect;
        let sibling = self.alloc(Node { rect: sibling_rect, kind: sibling_kind });

        if let Some(&parent) = path.last() {
            match &mut self.node_mut(parent).kind {
                NodeKind::Internal(children) => children.push(sibling),
                NodeKind::Leaf(_) => unreachable!("parents are internal"),
            }
            self.refresh_rects(path);
        } else {
            // node was the root: grow the tree.
            let new_root_rect = node_rect.union(&sibling_rect);
            let new_root = self.alloc(Node {
                rect: new_root_rect,
                kind: NodeKind::Internal(vec![node, sibling]),
            });
            self.root = new_root;
            self.height += 1;
            path.push(new_root);
        }
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Removes one entry equal to `(rect, item)`. Returns whether an entry
    /// was removed.
    pub fn remove(&mut self, rect: &Rect<D>, item: &T) -> bool {
        let Some(path) = self.find_leaf(self.root, rect, item, vec![self.root]) else {
            return false;
        };
        let leaf = *path.last().unwrap();
        match &mut self.node_mut(leaf).kind {
            NodeKind::Leaf(entries) => {
                let idx = entries.iter().position(|(r, t)| r == rect && t == item).unwrap();
                entries.remove(idx);
            }
            NodeKind::Internal(_) => unreachable!(),
        }
        self.len -= 1;
        self.refresh_rects(&path);
        self.condense(path);
        true
    }

    fn find_leaf(
        &self,
        id: NodeId,
        rect: &Rect<D>,
        item: &T,
        path: Vec<NodeId>,
    ) -> Option<Vec<NodeId>> {
        match &self.node(id).kind {
            NodeKind::Leaf(entries) => entries
                .iter()
                .any(|(r, t)| r == rect && t == item)
                .then_some(path),
            NodeKind::Internal(children) => {
                for &c in children {
                    if self.node(c).rect.contains_rect(rect) || self.node(c).rect.intersects(rect)
                    {
                        let mut p = path.clone();
                        p.push(c);
                        if let Some(found) = self.find_leaf(c, rect, item, p) {
                            return Some(found);
                        }
                    }
                }
                None
            }
        }
    }

    /// CondenseTree: dissolve underfull nodes bottom-up, then reinsert
    /// their entries.
    fn condense(&mut self, mut path: Vec<NodeId>) {
        let mut orphan_leaf_entries: Vec<(Rect<D>, T)> = Vec::new();
        let mut orphan_subtrees: Vec<(NodeId, usize)> = Vec::new(); // (node, level)

        while path.len() > 1 {
            let node = path.pop().unwrap();
            let parent = *path.last().unwrap();
            let level = self.height - (path.len() + 1);
            if self.entry_count(node) < self.params.min_entries {
                // Unhook from parent and queue contents for reinsertion.
                match &mut self.node_mut(parent).kind {
                    NodeKind::Internal(children) => {
                        children.retain(|&c| c != node);
                    }
                    NodeKind::Leaf(_) => unreachable!(),
                }
                match std::mem::replace(
                    &mut self.node_mut(node).kind,
                    NodeKind::Leaf(Vec::new()),
                ) {
                    NodeKind::Leaf(entries) => orphan_leaf_entries.extend(entries),
                    NodeKind::Internal(children) => {
                        orphan_subtrees.extend(children.into_iter().map(|c| (c, level - 1)));
                    }
                }
                self.free.push(node);
            }
            self.refresh_rects(&path);
        }

        // Shrink the root if it became a trivial chain.
        loop {
            let root = self.root;
            let new_root = match &self.node(root).kind {
                NodeKind::Internal(children) if children.len() == 1 => children[0],
                NodeKind::Internal(children) if children.is_empty() => {
                    // Everything was dissolved: reset to an empty leaf.
                    self.node_mut(root).kind = NodeKind::Leaf(Vec::new());
                    self.node_mut(root).rect = Rect::empty();
                    self.height = 1;
                    break;
                }
                _ => break,
            };
            self.free.push(root);
            self.root = new_root;
            self.height -= 1;
        }

        let mut reinserted = vec![false; self.height + 1];
        for (subtree, level) in orphan_subtrees {
            if level + 1 >= self.height {
                // The tree shrank below the subtree's level; dissolve it.
                let entries = self.collect_leaf_entries(subtree);
                orphan_leaf_entries.extend(entries);
            } else {
                self.insert_subtree(subtree, level, &mut reinserted);
            }
        }
        for (r, t) in orphan_leaf_entries {
            self.insert_leaf_entry(r, t, &mut reinserted);
        }
    }

    fn collect_leaf_entries(&mut self, id: NodeId) -> Vec<(Rect<D>, T)> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            match std::mem::replace(&mut self.node_mut(n).kind, NodeKind::Leaf(Vec::new())) {
                NodeKind::Leaf(entries) => out.extend(entries),
                NodeKind::Internal(children) => stack.extend(children),
            }
            self.free.push(n);
        }
        out
    }

    // ------------------------------------------------------------------
    // Invariant checking (used by tests)
    // ------------------------------------------------------------------

    /// Verifies structural invariants; panics with a description on
    /// violation. Intended for tests.
    pub fn check_invariants(&self) {
        let mut seen = 0usize;
        self.check_node(self.root, self.height - 1, true, &mut seen);
        assert_eq!(seen, self.len, "entry count mismatch");
    }

    fn check_node(&self, id: NodeId, level: usize, is_root: bool, seen: &mut usize) {
        let node = self.node(id);
        let count = self.entry_count(id);
        assert!(count <= self.params.max_entries, "node overflow");
        if !is_root {
            assert!(count >= self.params.min_entries, "node underflow: {} entries", count);
        }
        let computed = self.compute_rect(id);
        assert_eq!(node.rect, computed, "stale bounding rect");
        match &node.kind {
            NodeKind::Leaf(entries) => {
                assert_eq!(level, 0, "leaves must be at level 0");
                *seen += entries.len();
            }
            NodeKind::Internal(children) => {
                assert!(level > 0, "internal node at leaf level");
                for &c in children {
                    self.check_node(c, level - 1, false, seen);
                }
            }
        }
    }
}

/// The R\* split of a set of entries: axis by minimum margin sum, then
/// distribution by minimum overlap (ties: minimum total area).
pub(crate) fn split_entries<const D: usize, E>(
    params: RStarParams,
    mut entries: Vec<E>,
    rect_of: impl Fn(&E) -> Rect<D>,
) -> (Vec<E>, Vec<E>) {
    let m = params.min_entries;
    let total = entries.len();
    debug_assert!(total >= 2 * m);

    // Choose the split axis: for each axis, sort by lo then by hi and sum
    // the margins of all legal distributions.
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..D {
        let mut margin_sum = 0.0;
        for by_hi in [false, true] {
            let mut sorted: Vec<Rect<D>> = entries.iter().map(&rect_of).collect();
            sorted.sort_by(|a, b| {
                let (ka, kb) = if by_hi { (a.hi[axis], b.hi[axis]) } else { (a.lo[axis], b.lo[axis]) };
                ka.partial_cmp(&kb).unwrap()
            });
            let prefixes = running_unions(&sorted);
            let suffixes = running_unions_rev(&sorted);
            for k in m..=total - m {
                margin_sum += prefixes[k - 1].margin() + suffixes[k].margin();
            }
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }

    // Choose the distribution on the best axis.
    let mut best: Option<(f64, f64, bool, usize)> = None; // (overlap, area, by_hi, k)
    for by_hi in [false, true] {
        let mut order: Vec<usize> = (0..total).collect();
        order.sort_by(|&i, &j| {
            let (a, b) = (rect_of(&entries[i]), rect_of(&entries[j]));
            let (ka, kb) = if by_hi {
                (a.hi[best_axis], b.hi[best_axis])
            } else {
                (a.lo[best_axis], b.lo[best_axis])
            };
            ka.partial_cmp(&kb).unwrap()
        });
        let sorted: Vec<Rect<D>> = order.iter().map(|&i| rect_of(&entries[i])).collect();
        let prefixes = running_unions(&sorted);
        let suffixes = running_unions_rev(&sorted);
        for k in m..=total - m {
            let (r1, r2) = (prefixes[k - 1], suffixes[k]);
            let key = (r1.overlap_area(&r2), r1.area() + r2.area());
            match best {
                Some((o, a, _, _)) if (o, a) <= key => {}
                _ => best = Some((key.0, key.1, by_hi, k)),
            }
        }
    }
    let (_, _, by_hi, k) = best.expect("at least one distribution");

    // Materialize the chosen distribution.
    entries.sort_by(|a, b| {
        let (ra, rb) = (rect_of(a), rect_of(b));
        let (ka, kb) = if by_hi {
            (ra.hi[best_axis], rb.hi[best_axis])
        } else {
            (ra.lo[best_axis], rb.lo[best_axis])
        };
        ka.partial_cmp(&kb).unwrap()
    });
    let give = entries.split_off(k);
    (entries, give)
}

fn running_unions<const D: usize>(rects: &[Rect<D>]) -> Vec<Rect<D>> {
    let mut out = Vec::with_capacity(rects.len());
    let mut acc = Rect::empty();
    for r in rects {
        acc = acc.union(r);
        out.push(acc);
    }
    out
}

fn running_unions_rev<const D: usize>(rects: &[Rect<D>]) -> Vec<Rect<D>> {
    let mut out = vec![Rect::empty(); rects.len() + 1];
    let mut acc = Rect::empty();
    for (i, r) in rects.iter().enumerate().rev() {
        acc = acc.union(r);
        out[i] = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tree() -> RStarTree<2, usize> {
        RStarTree::new(RStarParams::with_max(4))
    }

    fn unit_rect(x: f64, y: f64) -> Rect<2> {
        Rect::new([x, y], [x + 1.0, y + 1.0])
    }

    #[test]
    fn empty_tree() {
        let t = small_tree();
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.search(&Rect::new([0.0, 0.0], [100.0, 100.0])).is_empty());
        t.check_invariants();
    }

    #[test]
    fn insert_and_search_grid() {
        let mut t = small_tree();
        for i in 0..10 {
            for j in 0..10 {
                t.insert(unit_rect(i as f64 * 2.0, j as f64 * 2.0), i * 10 + j);
            }
        }
        assert_eq!(t.len(), 100);
        assert!(t.height() > 1);
        t.check_invariants();

        // Query one cell.
        let hits = t.search(&Rect::new([0.5, 0.5], [0.6, 0.6]));
        assert_eq!(hits, vec![0]);
        // Query a 2x2 block of cells.
        let mut hits = t.search(&Rect::new([0.0, 0.0], [2.5, 2.5]));
        hits.sort();
        assert_eq!(hits, vec![0, 1, 10, 11]);
        // Query everything.
        assert_eq!(t.search(&t.bounds()).len(), 100);
        // Query nothing.
        assert!(t.search(&Rect::new([500.0, 500.0], [501.0, 501.0])).is_empty());
    }

    #[test]
    fn search_matches_linear_scan() {
        let mut t = RStarTree::new(RStarParams::with_max(8));
        let mut data = Vec::new();
        // Deterministic pseudo-random boxes.
        let mut state = 12345u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0) * 100.0
        };
        for i in 0..500usize {
            let (x, y) = (rnd(), rnd());
            let (w, h) = (rnd() / 10.0, rnd() / 10.0);
            let r = Rect::new([x, y], [x + w, y + h]);
            t.insert(r, i);
            data.push((r, i));
        }
        t.check_invariants();
        for _ in 0..50 {
            let (x, y) = (rnd(), rnd());
            let (w, h) = (rnd() / 4.0, rnd() / 4.0);
            let q = Rect::new([x, y], [x + w, y + h]);
            let mut got = t.search(&q);
            got.sort();
            let mut want: Vec<usize> =
                data.iter().filter(|(r, _)| r.intersects(&q)).map(|(_, i)| *i).collect();
            want.sort();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn access_counting() {
        let mut t = small_tree();
        for i in 0..64 {
            t.insert(unit_rect((i % 8) as f64 * 3.0, (i / 8) as f64 * 3.0), i);
        }
        let (_, small_q) = t.search_with_stats(&Rect::new([0.0, 0.0], [0.5, 0.5]));
        let (_, big_q) = t.search_with_stats(&t.bounds());
        assert!(small_q >= t.height() as u64, "must at least walk one path");
        assert!(big_q as usize >= t.node_count(), "full query touches every node");
        assert!(small_q < big_q);
        assert_eq!(t.accesses(), small_q + big_q);
        t.reset_accesses();
        assert_eq!(t.accesses(), 0);
    }

    #[test]
    fn duplicates_supported() {
        let mut t = small_tree();
        let r = unit_rect(0.0, 0.0);
        for _ in 0..10 {
            t.insert(r, 7);
        }
        assert_eq!(t.search(&r).len(), 10);
        t.check_invariants();
    }

    #[test]
    fn remove_entries() {
        let mut t = small_tree();
        let mut rects = Vec::new();
        for i in 0..50usize {
            let r = unit_rect((i % 10) as f64 * 2.0, (i / 10) as f64 * 2.0);
            t.insert(r, i);
            rects.push(r);
        }
        // Remove a missing entry.
        assert!(!t.remove(&unit_rect(999.0, 999.0), &0));
        assert!(!t.remove(&rects[0], &999));
        // Remove every other entry.
        for i in (0..50).step_by(2) {
            assert!(t.remove(&rects[i], &i), "remove {}", i);
            t.check_invariants();
        }
        assert_eq!(t.len(), 25);
        for (i, r) in rects.iter().enumerate() {
            let found = t.search(r).contains(&i);
            assert_eq!(found, i % 2 == 1, "entry {}", i);
        }
        // Remove everything.
        for i in (1..50).step_by(2) {
            assert!(t.remove(&rects[i], &i));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.check_invariants();
    }

    #[test]
    fn one_dimensional_tree() {
        let mut t: RStarTree<1, u32> = RStarTree::new(RStarParams::with_max(4));
        for i in 0..100u32 {
            t.insert(Rect::new([i as f64], [i as f64 + 0.5]), i);
        }
        t.check_invariants();
        let mut hits = t.search(&Rect::new([10.0], [12.0]));
        hits.sort();
        assert_eq!(hits, vec![10, 11, 12]);
    }

    #[test]
    fn iter_visits_everything() {
        let mut t = small_tree();
        for i in 0..30 {
            t.insert(unit_rect(i as f64, 0.0), i);
        }
        let mut items: Vec<usize> = t.iter().map(|(_, i)| i).collect();
        items.sort();
        assert_eq!(items, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn page_fitting_params() {
        let p1 = RStarParams::fitting_page(1);
        let p2 = RStarParams::fitting_page(2);
        assert!(p1.max_entries > p2.max_entries, "1-D nodes have higher fan-out");
        assert!(p2.max_entries >= 50);
        assert!(p1.min_entries >= 2 && p1.min_entries <= p1.max_entries / 2);
    }
}
