//! Durable catalogs: saving and opening a whole database directory.
//!
//! A saved database is a directory:
//!
//! ```text
//! mydb/
//!   manifest.txt     # one line per relation: NAME <TAB> FILE
//!   rel_0.db         # page file (cqa-storage FileDisk) per relation
//!   rel_1.db
//!   spatial.cdb      # vector relations, as WKT features in .cdb syntax
//! ```
//!
//! Heterogeneous relations persist exactly (see `cqa_core::persist`);
//! spatial relations persist through the WKT exporter, which is exact for
//! coordinates whose decimal expansion terminates (and flagged otherwise).

use crate::lex::LangError;
use crate::schema_def::parse_cdb;
use cqa_core::persist::{load_relation, save_relation, PersistError};
use cqa_core::Catalog;
use cqa_spatial::wkt::to_wkt_checked;
use cqa_storage::{BufferPool, FileDisk, HeapFile, PageId, StorageError};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Errors raised while saving or opening a database directory.
#[derive(Debug)]
pub enum DbError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Page-file failure.
    Storage(StorageError),
    /// Relation (de)serialization failure.
    Persist(PersistError),
    /// The `spatial.cdb` file does not parse.
    Spatial(LangError),
    /// The manifest is malformed.
    BadManifest(String),
    /// A spatial coordinate could not be written exactly.
    InexactGeometry(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "io error: {}", e),
            DbError::Storage(e) => write!(f, "storage error: {}", e),
            DbError::Persist(e) => write!(f, "relation error: {}", e),
            DbError::Spatial(e) => write!(f, "spatial file error: {}", e),
            DbError::BadManifest(what) => write!(f, "bad manifest: {}", what),
            DbError::InexactGeometry(id) => write!(
                f,
                "feature {:?} has coordinates with no finite decimal expansion; \
                 refusing a lossy save",
                id
            ),
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e)
    }
}

impl From<StorageError> for DbError {
    fn from(e: StorageError) -> Self {
        DbError::Storage(e)
    }
}

impl From<PersistError> for DbError {
    fn from(e: PersistError) -> Self {
        DbError::Persist(e)
    }
}

/// Saves every relation of the catalog under `dir` (created if missing;
/// existing database files in it are overwritten).
pub fn save_catalog(catalog: &Catalog, dir: impl AsRef<Path>) -> Result<(), DbError> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let mut manifest = String::new();
    for (i, name) in catalog.names().enumerate() {
        if name.contains('\t') || name.contains('\n') {
            return Err(DbError::BadManifest(format!(
                "relation name {:?} contains separator characters",
                name
            )));
        }
        let file = format!("rel_{}.db", i);
        let path = dir.join(&file);
        // Recreate from scratch: FileDisk appends to existing files.
        if path.exists() {
            fs::remove_file(&path)?;
        }
        let rel = catalog.get(name).expect("listed name");
        let mut pool = BufferPool::new(FileDisk::open(&path)?, 16);
        save_relation(rel, &mut pool)?;
        pool.into_disk()?;
        manifest.push_str(&format!("{}\t{}\n", name, file));
    }
    fs::write(dir.join("manifest.txt"), manifest)?;

    // Spatial relations: WKT features in `.cdb` syntax. The syntax has no
    // string escapes and names must be identifiers, so reject anything the
    // generated file could not faithfully express.
    let mut spatial = String::new();
    for name in catalog.spatial_names() {
        let identifier = !name.is_empty()
            && name.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
            && name.chars().all(|c| c.is_alphanumeric() || c == '_');
        if !identifier {
            return Err(DbError::BadManifest(format!(
                "spatial relation name {:?} is not an identifier and cannot be saved",
                name
            )));
        }
        let rel = catalog.get_spatial(name).expect("listed name");
        spatial.push_str(&format!("spatial {} {{\n", name));
        for feature in rel.features() {
            if feature.id.contains('"') || feature.id.contains('\n') {
                return Err(DbError::BadManifest(format!(
                    "feature id {:?} contains characters the .cdb syntax cannot quote",
                    feature.id
                )));
            }
            let (wkt, exact) = to_wkt_checked(&feature.geom);
            if !exact {
                return Err(DbError::InexactGeometry(feature.id.clone()));
            }
            spatial.push_str(&format!("  feature \"{}\" wkt \"{}\";\n", feature.id, wkt));
        }
        spatial.push_str("}\n");
    }
    let spatial_path = dir.join("spatial.cdb");
    let mut f = fs::File::create(spatial_path)?;
    f.write_all(spatial.as_bytes())?;
    Ok(())
}

/// Opens a database directory saved by [`save_catalog`].
pub fn open_catalog(dir: impl AsRef<Path>) -> Result<Catalog, DbError> {
    let dir = dir.as_ref();
    let mut catalog = Catalog::new();
    let manifest = fs::read_to_string(dir.join("manifest.txt"))?;
    for line in manifest.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let (name, file) = line
            .split_once('\t')
            .ok_or_else(|| DbError::BadManifest(format!("malformed line {:?}", line)))?;
        let path = dir.join(file);
        let mut pool = BufferPool::new(FileDisk::open(&path)?, 16);
        let pages: Vec<PageId> = (0..pool.num_pages()).map(PageId).collect();
        let heap = HeapFile::from_pages(pages);
        let rel = load_relation(&heap, &mut pool)?;
        catalog.register(name.to_string(), rel);
    }
    let spatial_path = dir.join("spatial.cdb");
    if spatial_path.exists() {
        let text = fs::read_to_string(spatial_path)?;
        parse_cdb(&text).map_err(DbError::Spatial)?.load_into(&mut catalog);
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_core::{AttrDef, HRelation, Schema};
    use cqa_num::Rat;
    use cqa_spatial::{Feature, Geometry, Point, SpatialRelation};

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cqa_db_{}_{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let schema = Schema::new(vec![
            AttrDef::str_rel("id"),
            AttrDef::rat_con("x"),
        ])
        .unwrap();
        let mut r = HRelation::new(schema);
        r.insert_with(|b| b.set("id", "a").range_rat("x", Rat::from_pair(-1, 3), Rat::from_pair(22, 7)))
            .unwrap();
        r.insert_with(|b| b).unwrap(); // broad tuple with null id
        cat.register("R", r);
        let schema2 = Schema::new(vec![AttrDef::rat_rel("n")]).unwrap();
        let mut r2 = HRelation::new(schema2);
        r2.insert_with(|b| b.set("n", 42)).unwrap();
        cat.register("S two", r2); // name with a space
        cat.register_spatial(
            "Roads",
            SpatialRelation::from_features([
                Feature::new(
                    "r1",
                    Geometry::polyline(vec![Point::from_ints(0, 0), Point::from_ints(10, 5)])
                        .unwrap(),
                ),
                Feature::new(
                    "half",
                    Geometry::Point(Point::new(Rat::from_pair(5, 2), Rat::from_int(1))),
                ),
            ]),
        );
        cat
    }

    #[test]
    fn save_open_roundtrip() {
        let dir = tempdir("roundtrip");
        let cat = sample_catalog();
        save_catalog(&cat, &dir).unwrap();
        let back = open_catalog(&dir).unwrap();
        assert_eq!(back.get("R").unwrap(), cat.get("R").unwrap());
        assert_eq!(back.get("S two").unwrap(), cat.get("S two").unwrap());
        let roads = back.get_spatial("Roads").unwrap();
        assert_eq!(roads.len(), 2);
        assert_eq!(
            roads.by_id("half").unwrap().geom,
            cat.get_spatial("Roads").unwrap().by_id("half").unwrap().geom
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resave_overwrites_cleanly() {
        let dir = tempdir("resave");
        let cat = sample_catalog();
        save_catalog(&cat, &dir).unwrap();
        save_catalog(&cat, &dir).unwrap(); // second save must not append
        let back = open_catalog(&dir).unwrap();
        assert_eq!(back.get("R").unwrap().len(), cat.get("R").unwrap().len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inexact_geometry_refused() {
        let dir = tempdir("inexact");
        let mut cat = Catalog::new();
        cat.register_spatial(
            "Odd",
            SpatialRelation::from_features([Feature::new(
                "third",
                Geometry::Point(Point::new(Rat::from_pair(1, 3), Rat::from_int(0))),
            )]),
        );
        assert!(matches!(save_catalog(&cat, &dir), Err(DbError::InexactGeometry(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unrepresentable_spatial_content_refused() {
        let dir = tempdir("unrep");
        // A spatial relation name with a space cannot be an identifier.
        let mut cat = Catalog::new();
        cat.register_spatial("My Roads", SpatialRelation::new());
        assert!(matches!(save_catalog(&cat, &dir), Err(DbError::BadManifest(_))));
        // A feature id with an embedded quote cannot be quoted.
        let mut cat = Catalog::new();
        cat.register_spatial(
            "Roads",
            SpatialRelation::from_features([Feature::new(
                "say \"hi\"",
                Geometry::Point(Point::from_ints(0, 0)),
            )]),
        );
        assert!(matches!(save_catalog(&cat, &dir), Err(DbError::BadManifest(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_corrupt_directories() {
        let missing = tempdir("missing");
        assert!(matches!(open_catalog(&missing), Err(DbError::Io(_))));
        let corrupt = tempdir("corrupt");
        std::fs::create_dir_all(&corrupt).unwrap();
        std::fs::write(corrupt.join("manifest.txt"), "no tab separator here\n").unwrap();
        assert!(matches!(open_catalog(&corrupt), Err(DbError::BadManifest(_))));
        std::fs::write(corrupt.join("manifest.txt"), "R\tmissing_file.db\n").unwrap();
        assert!(open_catalog(&corrupt).is_err());
        std::fs::remove_dir_all(&corrupt).unwrap();
    }
}
