//! The difference operator `R₁ − R₂` (§2.4).
//!
//! The only operator that needs **negation** of constraint formulas: a
//! tuple `t₁` survives as `φ(t₁) ∧ ¬(φ(t₂¹) ∨ …)` over the `t₂` whose
//! relational parts match. The negation is expanded back to DNF, so one
//! input tuple can produce several output tuples — this is the expensive
//! operator of the algebra, and the reason the closure of the linear class
//! under complement (within a conjunctive block) matters.
//!
//! Relational parts match when their value vectors are identical, with
//! `null = null` (two narrow-missing values are the same row shape, as in
//! SQL's `EXCEPT`).

use crate::error::Result;
use crate::par::{try_flat_map_chunks, ExecOptions, ExecStats};
use crate::relation::HRelation;
use crate::tuple::Tuple;
use cqa_constraints::{Dnf, QuickBox};

/// Applies the difference `left − right` with default [`ExecOptions`].
pub fn difference(left: &HRelation, right: &HRelation) -> Result<HRelation> {
    difference_opts(left, right, &ExecOptions::default(), &ExecStats::new())
}

/// Applies the difference with explicit execution options.
///
/// Left tuples are independent — each is reduced against its own matching
/// subtrahends — so the outer loop runs on the deterministic chunked
/// executor and the output order matches the serial loop for every thread
/// count (the trailing dedup is order-stable).
///
/// With `bbox_filter` on, subtrahends whose bounding box is provably
/// disjoint from the minuend's are pruned before the DNF negation: such a
/// subtrahend removes nothing from the minuend, so semantics are
/// unchanged, but skipping it avoids the negation blow-up (the expensive
/// part of this operator). Unlike `select`/`join`, pruning can change the
/// *syntactic* shape of the result (fewer redundant splits), so
/// determinism comparisons should hold the filter setting fixed.
pub fn difference_opts(
    left: &HRelation,
    right: &HRelation,
    opts: &ExecOptions,
    stats: &ExecStats,
) -> Result<HRelation> {
    left.schema().require_same(right.schema())?;
    let arity = left.schema().arity();

    // Hoisted: each right tuple's box, computed once.
    let rights: Vec<(&Tuple, QuickBox)> = right
        .tuples()
        .iter()
        .map(|rt| (rt, rt.constraint().quick_box(arity)))
        .collect();

    let governor = &opts.governor;
    let produced: Vec<Result<Tuple>> =
        try_flat_map_chunks(left.tuples(), opts.effective_threads(), Some(governor.token()), |lt| {
            if let Err(e) = governor.check() {
                return vec![Err(e)];
            }
            // All right tuples whose relational part is identical.
            let matching: Vec<&(&Tuple, QuickBox)> =
                rights.iter().filter(|(rt, _)| rt.values() == lt.values()).collect();
            let kept: Vec<&Tuple> = if opts.bbox_filter && !matching.is_empty() {
                let minuend_box = lt.constraint().quick_box(arity);
                matching
                    .iter()
                    .filter_map(|(rt, rbox)| {
                        let pruned = minuend_box.disjoint(rbox);
                        stats.record(pruned);
                        (!pruned).then_some(*rt)
                    })
                    .collect()
            } else {
                matching.iter().map(|(rt, _)| *rt).collect()
            };
            if kept.is_empty() {
                return vec![Ok(lt.clone())];
            }
            let minuend = Dnf::from_conjunction(lt.constraint().clone());
            let subtrahend =
                Dnf::from_conjunctions(kept.iter().map(|rt| rt.constraint().clone()));
            // The negation expansion is the algebra's exponential corner:
            // the governor's DNF budget bounds it with a typed error, and
            // every conjunction it constructs is counted into `stats`.
            let remainder = match minuend.minus_counted(
                &subtrahend,
                governor.budgets.max_dnf_conjunctions,
                Some(stats.dnf_cell()),
            ) {
                Ok(r) => r.normalize(),
                Err(e) => return vec![Err(e.into())],
            };
            remainder
                .conjunctions()
                .iter()
                .map(|conj| Ok(Tuple::from_parts(lt.values().to_vec(), conj.clone())))
                .collect()
        })
        .map_err(|_| governor.interrupt_error())?;

    let mut out = HRelation::new(left.schema().clone());
    for t in produced {
        out.insert(t?);
    }
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrDef, Schema};
    use crate::value::Value;

    fn n(i: i64) -> Value {
        Value::int(i)
    }

    fn interval_rel(rows: &[(&str, i64, i64)]) -> HRelation {
        let s = Schema::new(vec![AttrDef::str_rel("id"), AttrDef::rat_con("x")]).unwrap();
        let mut r = HRelation::new(s);
        for &(id, lo, hi) in rows {
            r.insert_with(|b| b.set("id", id).range("x", lo, hi)).unwrap();
        }
        r
    }

    #[test]
    fn difference_carves_holes() {
        let a = interval_rel(&[("p", 0, 10)]);
        let b = interval_rel(&[("p", 3, 5)]);
        let out = difference(&a, &b).unwrap();
        assert!(out.contains_point(&[Value::str("p"), n(1)]).unwrap());
        assert!(!out.contains_point(&[Value::str("p"), n(4)]).unwrap());
        assert!(out.contains_point(&[Value::str("p"), n(9)]).unwrap());
        // Boundary points are removed too (closed subtrahend).
        assert!(!out.contains_point(&[Value::str("p"), n(3)]).unwrap());
        assert_eq!(out.len(), 2, "split into two interval tuples");
    }

    #[test]
    fn difference_respects_relational_key() {
        // Subtracting q's interval must not affect p's.
        let a = interval_rel(&[("p", 0, 10), ("q", 0, 10)]);
        let b = interval_rel(&[("q", 0, 10)]);
        let out = difference(&a, &b).unwrap();
        assert!(out.contains_point(&[Value::str("p"), n(5)]).unwrap());
        assert!(!out.contains_point(&[Value::str("q"), n(5)]).unwrap());
    }

    #[test]
    fn subtracting_everything_empties() {
        let a = interval_rel(&[("p", 0, 10)]);
        let out = difference(&a, &a).unwrap();
        assert!(out.is_empty() || out.tuples().iter().all(|t| !t.is_satisfiable()));
        // And its semantics is empty regardless of syntax:
        assert!(!out.contains_point(&[Value::str("p"), n(5)]).unwrap());
    }

    #[test]
    fn multiple_subtrahends_union() {
        let a = interval_rel(&[("p", 0, 10)]);
        let b = interval_rel(&[("p", 0, 4), ("p", 6, 10)]);
        let out = difference(&a, &b).unwrap();
        assert!(out.contains_point(&[Value::str("p"), n(5)]).unwrap());
        assert!(!out.contains_point(&[Value::str("p"), n(2)]).unwrap());
        assert!(!out.contains_point(&[Value::str("p"), n(8)]).unwrap());
    }

    #[test]
    fn purely_relational_difference() {
        let mk = |rows: &[i64]| {
            let s = Schema::new(vec![AttrDef::rat_rel("v")]).unwrap();
            let mut r = HRelation::new(s);
            for &x in rows {
                r.insert_with(|b| b.set("v", x)).unwrap();
            }
            r
        };
        let out = difference(&mk(&[1, 2, 3]), &mk(&[2])).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains_point(&[n(1)]).unwrap());
        assert!(!out.contains_point(&[n(2)]).unwrap());
    }

    #[test]
    fn schema_mismatch_rejected() {
        let a = interval_rel(&[]);
        let s2 = Schema::new(vec![AttrDef::str_rel("id"), AttrDef::rat_rel("x")]).unwrap();
        let b = HRelation::new(s2);
        assert!(difference(&a, &b).is_err());
    }
}
