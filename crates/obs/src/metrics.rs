//! Lock-light process-global metrics registry.
//!
//! Naming scheme: `layer.object.metric` in lowercase snake case, e.g.
//! `exec.filter.checked`, `index.rstar.node_accesses`,
//! `storage.pool.io_retries`. The registry is a `BTreeMap` keyed by name,
//! so snapshots are deterministically sorted.
//!
//! Cost model:
//! * registration ([`counter`]/[`gauge`]/[`histogram`]) takes the registry
//!   lock and leaks one allocation the first time a name is seen — call
//!   sites cache the `&'static` handle in a `OnceLock` so this happens
//!   once per process, not per event;
//! * recording is a relaxed atomic add/max with no lock;
//! * hot paths guard recording behind [`metrics_enabled`], one relaxed
//!   load, so the disabled configuration costs a predictable branch.
//!
//! Histograms come in two flavors. Plain histograms measure workload
//! quantities (rows, atoms) that are pure functions of the input and
//! belong in golden snapshots. *Timing* histograms
//! ([`timing_histogram`]) measure wall-clock (query latency): their
//! counts are deterministic but their sums are not, so
//! [`Snapshot::canonical`] prints only the count and the Prometheus
//! canonical exporter skips them entirely.

use crate::error::ObsError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Monotonic counter (combined across sources by sum).
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Fresh zeroed counter (for local, non-registered use).
    pub const fn new() -> Counter {
        Counter { v: AtomicU64::new(0) }
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.v.store(0, Ordering::Relaxed);
    }
}

/// High-water-mark gauge (combined across sources by max).
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    /// Fresh zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge { v: AtomicU64::new(0) }
    }

    /// Raises the gauge to at least `n`.
    pub fn record_max(&self, n: u64) {
        self.v.fetch_max(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.v.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: powers of two up to 2^30, plus a final
/// overflow bucket. Bucket 0 is always empty (0 records into bucket 1);
/// bucket `i ≥ 1` counts observations in `[2^(i-1), 2^i)`, so its
/// inclusive upper bound is `2^i − 1`; the last bucket absorbs everything
/// at or above `2^(BUCKETS-2)`. 32 buckets cover microsecond latencies
/// from sub-µs up past 17 minutes, which is what the per-query latency
/// histograms need.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// The inclusive upper bound of bucket `i` (`0` for bucket 0, `2^i − 1`
/// for interior buckets, `u64::MAX` for the overflow bucket). Exact for
/// integer observations, which is what makes the Prometheus `le` labels
/// honest.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Quantile estimate over a bucket array: the inclusive upper bound of
/// the first bucket whose cumulative count reaches rank `ceil(q·count)`.
/// `None` when the histogram is empty. The estimate is exact at bucket
/// boundaries and otherwise overshoots by less than the bucket width
/// (a factor of 2), which is the usual power-of-two-histogram contract.
pub fn quantile_from_buckets(buckets: &[u64; HISTOGRAM_BUCKETS], q: f64) -> Option<u64> {
    let count: u64 = buckets.iter().sum();
    if count == 0 {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
    let mut cum = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        cum += b;
        if cum >= rank {
            return Some(bucket_upper_bound(i));
        }
    }
    Some(u64::MAX)
}

/// Fixed-bucket (power-of-two) histogram of `u64` observations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Fresh empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        // v < 2^i picks bucket i; 65-v.leading_zeros() would overflow the
        // array for huge v, so clamp into the overflow bucket.
        let idx = ((64 - u64::leading_zeros(v | 1)) as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate instead of wrapping: a long-lived process recording
        // near-u64::MAX observations should pin the sum at the ceiling,
        // not silently restart it.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| Some(s.saturating_add(v)));
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (bucket `i ≥ 1` holds observations in
    /// `[2^(i-1), 2^i)`, with 0 landing in bucket 1 and the last bucket
    /// holding everything ≥ 2^(BUCKETS-2)).
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Quantile estimate (see [`quantile_from_buckets`]); `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        quantile_from_buckets(&self.buckets(), q)
    }

    /// Resets all buckets.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram { h: &'static Histogram, timing: bool },
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram { .. } => "histogram",
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(true);

fn registry() -> &'static Mutex<BTreeMap<&'static str, Metric>> {
    static REG: OnceLock<Mutex<BTreeMap<&'static str, Metric>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

// A poisoned registry lock means some thread panicked mid-registration;
// the map holds only `&'static` handles and atomics, all of which are
// valid regardless, so recover the guard instead of cascading the panic
// through every metrics call site.
fn lock_registry() -> MutexGuard<'static, BTreeMap<&'static str, Metric>> {
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether global-metric recording is on (call sites should check this
/// before recording on hot paths). Defaults to enabled. This is the
/// master telemetry switch: the exec layer also gates event-log emission
/// on it, so "metrics off" means the whole enabled-path is off.
pub fn metrics_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns global-metric recording on or off.
pub fn set_metrics_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Registers (or fetches) the counter named `name`, reporting a kind
/// clash as a typed error. The handle is `'static`: cache it, don't call
/// this per event.
pub fn try_counter(name: &'static str) -> Result<&'static Counter, ObsError> {
    let mut reg = lock_registry();
    match reg.entry(name).or_insert_with(|| Metric::Counter(Box::leak(Box::default()))) {
        Metric::Counter(c) => Ok(c),
        other => Err(ObsError::MetricKindMismatch {
            name,
            registered: other.kind(),
            requested: "counter",
        }),
    }
}

/// Registers (or fetches) the gauge named `name`, reporting a kind clash
/// as a typed error.
pub fn try_gauge(name: &'static str) -> Result<&'static Gauge, ObsError> {
    let mut reg = lock_registry();
    match reg.entry(name).or_insert_with(|| Metric::Gauge(Box::leak(Box::default()))) {
        Metric::Gauge(g) => Ok(g),
        other => Err(ObsError::MetricKindMismatch {
            name,
            registered: other.kind(),
            requested: "gauge",
        }),
    }
}

fn try_histogram_inner(
    name: &'static str,
    timing: bool,
) -> Result<&'static Histogram, ObsError> {
    let mut reg = lock_registry();
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Histogram { h: Box::leak(Box::default()), timing })
    {
        // The timing flag is fixed at first registration; later fetches
        // under either flavor return the same handle.
        Metric::Histogram { h, .. } => Ok(h),
        other => Err(ObsError::MetricKindMismatch {
            name,
            registered: other.kind(),
            requested: "histogram",
        }),
    }
}

/// Registers (or fetches) the histogram named `name`, reporting a kind
/// clash as a typed error.
pub fn try_histogram(name: &'static str) -> Result<&'static Histogram, ObsError> {
    try_histogram_inner(name, false)
}

/// Registers (or fetches) the *timing* histogram named `name`: same data
/// structure, but flagged so canonical/golden renderings omit its
/// wall-clock-dependent sum (see the module docs).
pub fn try_timing_histogram(name: &'static str) -> Result<&'static Histogram, ObsError> {
    try_histogram_inner(name, true)
}

/// Infallible [`try_counter`]: a kind clash is a programming error at a
/// static call site, so it panics with the typed error's message.
pub fn counter(name: &'static str) -> &'static Counter {
    try_counter(name).unwrap_or_else(|e| panic!("{}", e))
}

/// Infallible [`try_gauge`] (panics on kind clash).
pub fn gauge(name: &'static str) -> &'static Gauge {
    try_gauge(name).unwrap_or_else(|e| panic!("{}", e))
}

/// Infallible [`try_histogram`] (panics on kind clash).
pub fn histogram(name: &'static str) -> &'static Histogram {
    try_histogram(name).unwrap_or_else(|e| panic!("{}", e))
}

/// Infallible [`try_timing_histogram`] (panics on kind clash).
pub fn timing_histogram(name: &'static str) -> &'static Histogram {
    try_timing_histogram(name).unwrap_or_else(|e| panic!("{}", e))
}

/// Resets every registered metric to zero (the registry itself — names
/// and handles — survives).
pub fn reset_metrics() {
    let reg = lock_registry();
    for m in reg.values() {
        match m {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram { h, .. } => h.reset(),
        }
    }
}

/// One metric's value in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge high-water mark.
    Gauge(u64),
    /// Histogram count, sum, and per-bucket counts (boxed to keep the
    /// enum small next to the word-sized variants). `timing` marks
    /// wall-clock histograms whose sums are excluded from canonical
    /// renderings.
    Histogram { count: u64, sum: u64, buckets: Box<[u64; HISTOGRAM_BUCKETS]>, timing: bool },
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    entries: Vec<(&'static str, MetricValue)>,
}

/// Captures the current value of every registered metric.
pub fn snapshot() -> Snapshot {
    let reg = lock_registry();
    let entries = reg
        .iter()
        .map(|(name, m)| {
            let v = match m {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram { h, timing } => MetricValue::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    buckets: Box::new(h.buckets()),
                    timing: *timing,
                },
            };
            (*name, v)
        })
        .collect();
    Snapshot { entries }
}

impl Snapshot {
    /// The captured `(name, value)` pairs, sorted by name.
    pub fn entries(&self) -> &[(&'static str, MetricValue)] {
        &self.entries
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
    }

    /// Convenience: a counter's value, or 0 when absent/not a counter.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Convenience: a gauge's value, or 0 when absent/not a gauge.
    pub fn gauge(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Convenience: a histogram's quantile, or `None` when the metric is
    /// absent, not a histogram, or empty.
    pub fn histogram_quantile(&self, name: &str, q: f64) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Histogram { buckets, .. }) => quantile_from_buckets(buckets, q),
            _ => None,
        }
    }

    /// Human-readable one-metric-per-line rendering (sorted by name).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.entries {
            match v {
                MetricValue::Counter(n) => {
                    let _ = writeln!(out, "{:<40} {}", name, n);
                }
                MetricValue::Gauge(n) => {
                    let _ = writeln!(out, "{:<40} {} (gauge)", name, n);
                }
                MetricValue::Histogram { count, sum, buckets, .. } => {
                    let mean = if *count > 0 { *sum as f64 / *count as f64 } else { 0.0 };
                    let _ = write!(
                        out,
                        "{:<40} count={} sum={} mean={:.1}",
                        name, count, sum, mean
                    );
                    if let (Some(p50), Some(p95), Some(p99)) = (
                        quantile_from_buckets(buckets, 0.50),
                        quantile_from_buckets(buckets, 0.95),
                        quantile_from_buckets(buckets, 0.99),
                    ) {
                        let _ = write!(out, " p50<={} p95<={} p99<={}", p50, p95, p99);
                    }
                    let _ = writeln!(out, " (histogram)");
                }
            }
        }
        out
    }

    /// Canonical deterministic form for golden-snapshot diffs: counters,
    /// gauges, and histogram counts/sums — everything here is a pure
    /// function of the workload (no wall-clock; timing histograms print
    /// only their deterministic count).
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.entries {
            match v {
                MetricValue::Counter(n) => {
                    let _ = writeln!(out, "counter {} {}", name, n);
                }
                MetricValue::Gauge(n) => {
                    let _ = writeln!(out, "gauge {} {}", name, n);
                }
                MetricValue::Histogram { count, timing: true, .. } => {
                    let _ = writeln!(out, "histogram {} count={}", name, count);
                }
                MetricValue::Histogram { count, sum, .. } => {
                    let _ = writeln!(out, "histogram {} count={} sum={}", name, count, sum);
                }
            }
        }
        out
    }

    /// The snapshot as a JSON object, `{"name": value, ...}` with
    /// histograms as nested objects. Keys are sorted (registry order).
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let mut obj: Vec<(String, Json)> = Vec::new();
        for (name, v) in &self.entries {
            let val = match v {
                MetricValue::Counter(n) => Json::from_u64(*n),
                MetricValue::Gauge(n) => Json::from_u64(*n),
                MetricValue::Histogram { count, sum, buckets, .. } => Json::Obj(vec![
                    ("count".into(), Json::from_u64(*count)),
                    ("sum".into(), Json::from_u64(*sum)),
                    (
                        "buckets".into(),
                        Json::Arr(buckets.iter().map(|b| Json::from_u64(*b)).collect()),
                    ),
                ]),
            };
            obj.push((name.to_string(), val));
        }
        Json::Obj(obj)
    }

    /// JSON text rendering of [`Snapshot::to_json`].
    pub fn render_json(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_record() {
        let c = Counter::new();
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.record_max(5);
        g.record_max(2);
        assert_eq!(g.get(), 5);

        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        let b = h.buckets();
        assert_eq!(b.iter().sum::<u64>(), 6);
        assert_eq!(b[0], 0, "bucket 0 is always empty");
        assert_eq!(b[1], 2, "0 and 1 land in the lowest occupied bucket");
        assert_eq!(b[HISTOGRAM_BUCKETS - 1], 1, "u64::MAX overflows into the last bucket");
    }

    #[test]
    fn histogram_sum_saturates() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(7);
        assert_eq!(h.sum(), u64::MAX, "sum pins at the ceiling instead of wrapping");
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantiles_hit_bucket_boundaries() {
        // Empty histogram: no quantile.
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);

        // Ten observations of exactly 8 (bucket 4, bound 15): every
        // quantile reports that bucket's inclusive upper bound.
        for _ in 0..10 {
            h.record(8);
        }
        assert_eq!(h.quantile(0.0), Some(15));
        assert_eq!(h.quantile(0.5), Some(15));
        assert_eq!(h.quantile(1.0), Some(15));

        // Boundary split: 50 obs at 1 (bucket 1, bound 1), 50 at 1000
        // (bucket 10, bound 1023). p50's rank (50) lands exactly on the
        // last observation of the low bucket; anything above crosses.
        let h = Histogram::new();
        for _ in 0..50 {
            h.record(1);
        }
        for _ in 0..50 {
            h.record(1000);
        }
        assert_eq!(h.quantile(0.50), Some(1));
        assert_eq!(h.quantile(0.51), Some(1023));
        assert_eq!(h.quantile(0.95), Some(1023));

        // All-zero observations stay in bucket 1 with bound 1.
        let h = Histogram::new();
        h.record(0);
        assert_eq!(h.quantile(0.99), Some(1));

        // Overflow bucket reports the open-ended bound.
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.quantile(0.5), Some(u64::MAX));
    }

    #[test]
    fn bucket_bounds_are_inclusive_and_exact() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(4), 15);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        // Every interior bound is the largest value its bucket accepts.
        let h = Histogram::new();
        h.record(15);
        assert_eq!(h.buckets()[4], 1);
        let h = Histogram::new();
        h.record(16);
        assert_eq!(h.buckets()[5], 1);
    }

    #[test]
    fn registry_roundtrip_and_snapshot_sorted() {
        let c = counter("test.registry.alpha");
        let g = gauge("test.registry.beta");
        let h = histogram("test.registry.gamma");
        c.add(7);
        g.record_max(9);
        h.record(3);
        // Same handle on re-registration.
        assert!(std::ptr::eq(c, counter("test.registry.alpha")));
        // Kind clashes surface as typed errors (and the infallible
        // wrappers panic with the same message).
        let err = try_gauge("test.registry.alpha").unwrap_err();
        assert_eq!(
            err,
            ObsError::MetricKindMismatch {
                name: "test.registry.alpha",
                registered: "counter",
                requested: "gauge",
            }
        );
        let snap = snapshot();
        assert_eq!(snap.counter("test.registry.alpha"), 7);
        assert_eq!(snap.gauge("test.registry.beta"), 9);
        let names: Vec<_> = snap.entries().iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot is name-sorted");
        assert!(snap.render_text().contains("test.registry.alpha"));
        assert!(snap.canonical().contains("counter test.registry.alpha 7"));
        // JSON parses back.
        let parsed = crate::json::parse(&snap.render_json()).unwrap();
        assert!(parsed.get("test.registry.alpha").is_some());
    }

    #[test]
    fn timing_histograms_hide_sums_from_canonical() {
        let h = timing_histogram("test.registry.latency");
        h.record(1234);
        let snap = snapshot();
        let canon = snap.canonical();
        let line = canon
            .lines()
            .find(|l| l.contains("test.registry.latency"))
            .expect("timing histogram present");
        assert_eq!(line, "histogram test.registry.latency count=1");
        assert!(!line.contains("sum="), "wall-clock sum is excluded");
        assert_eq!(snap.histogram_quantile("test.registry.latency", 0.5), Some(2047));
    }

    #[test]
    fn enable_flag_toggles() {
        assert!(metrics_enabled());
        set_metrics_enabled(false);
        assert!(!metrics_enabled());
        set_metrics_enabled(true);
    }
}
