//! The §5.4 workload generator.
//!
//! Reproduced verbatim from the paper's protocol:
//!
//! 1. "Randomly generate 10,000 bounding boxes representing data tuples,
//!    with height and width in `\[1,100\]`."
//! 2. "Randomly generate 100 queries, which are rectangles of height and
//!    width in `\[1,100\]`. … For experiment 3, generate 500 queries."
//! 3. "All rectangles are obtained by randomly generating (a) the
//!    upper-left coordinates, and (b) the height and width of each
//!    rectangle. All coordinates are between `\[0, 3000\]`."
//!
//! The relational variants (experiments 1-B and 2-B) use point data: a
//! relational attribute holds a single value per tuple, which is a
//! degenerate (zero-extent) box.

use cqa::num::prng::Pcg32;

/// A 2-attribute tuple extent: per-attribute `[lo, hi]` intervals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Box2 {
    /// Extent in the first attribute.
    pub x: (f64, f64),
    /// Extent in the second attribute.
    pub y: (f64, f64),
}

/// The coordinate domain of §5.4.
pub const COORD_MAX: f64 = 3000.0;
/// Maximum rectangle extent of §5.4.
pub const EXTENT_MAX: f64 = 100.0;
/// The world bounds used for unconstrained attributes (min to max).
pub const WORLD: (f64, f64) = (0.0, COORD_MAX + EXTENT_MAX);

/// Number of data tuples in the paper's experiments.
pub const NUM_DATA: usize = 10_000;
/// Number of queries in experiments 1 and 2.
pub const NUM_QUERIES: usize = 100;
/// Number of queries in experiment 3.
pub const NUM_QUERIES_EXPT3: usize = 500;

fn random_box(rng: &mut Pcg32) -> Box2 {
    let x = rng.gen_range_f64(0.0, COORD_MAX);
    let y = rng.gen_range_f64(0.0, COORD_MAX);
    let w = rng.gen_range_f64(1.0, EXTENT_MAX);
    let h = rng.gen_range_f64(1.0, EXTENT_MAX);
    Box2 { x: (x, x + w), y: (y, y + h) }
}

fn random_point(rng: &mut Pcg32) -> Box2 {
    let x = rng.gen_range_f64(0.0, COORD_MAX);
    let y = rng.gen_range_f64(0.0, COORD_MAX);
    Box2 { x: (x, x), y: (y, y) }
}

/// The data file: `NUM_DATA` constraint-attribute extents (bounding boxes).
pub fn constraint_data(seed: u64) -> Vec<Box2> {
    let mut rng = Pcg32::seed_from_u64(seed);
    (0..NUM_DATA).map(|_| random_box(&mut rng)).collect()
}

/// The data file for the relational experiments: point tuples.
pub fn relational_data(seed: u64) -> Vec<Box2> {
    let mut rng = Pcg32::seed_from_u64(seed);
    (0..NUM_DATA).map(|_| random_point(&mut rng)).collect()
}

/// The query file: `n` query rectangles.
pub fn queries(seed: u64, n: usize) -> Vec<Box2> {
    let mut rng = Pcg32::seed_from_u64(seed);
    (0..n).map(|_| random_box(&mut rng)).collect()
}

impl Box2 {
    /// Query area (the Figure 4 x-axis).
    pub fn area(&self) -> f64 {
        (self.x.1 - self.x.0) * (self.y.1 - self.y.0)
    }

    /// Extent length in attribute 0 (the Figure 5 x-axis for x-queries).
    pub fn x_len(&self) -> f64 {
        self.x.1 - self.x.0
    }

    /// Extent length in attribute 1.
    pub fn y_len(&self) -> f64 {
        self.y.1 - self.y.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_shapes() {
        let data = constraint_data(42);
        assert_eq!(data.len(), NUM_DATA);
        for b in &data {
            assert!(b.x.0 >= 0.0 && b.x.0 <= COORD_MAX);
            assert!(b.x.1 - b.x.0 >= 1.0 && b.x.1 - b.x.0 <= EXTENT_MAX);
            assert!(b.y.1 - b.y.0 >= 1.0 && b.y.1 - b.y.0 <= EXTENT_MAX);
        }
        let pts = relational_data(42);
        assert!(pts.iter().all(|b| b.x.0 == b.x.1 && b.y.0 == b.y.1));
        assert_eq!(queries(7, NUM_QUERIES_EXPT3).len(), 500);
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(constraint_data(1), constraint_data(1));
        assert_ne!(constraint_data(1), constraint_data(2));
    }
}
