//! Typed errors for the observability layer.
//!
//! Mirrors the PR 2 error taxonomy in `cqa-core`: a small closed enum,
//! structured payloads instead of stringly errors, `Display` renders the
//! operator-facing message. Fallible obs paths (JSON parsing, metric
//! registration under a mismatched kind, export I/O) return these instead
//! of panicking.

use std::fmt;

/// A JSON parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
    /// What the parser expected or rejected.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Errors raised by the observability layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsError {
    /// A metric name was registered under one kind and requested as
    /// another (e.g. `counter("x")` after `gauge("x")`).
    MetricKindMismatch {
        /// The metric name.
        name: &'static str,
        /// The kind it is already registered as.
        registered: &'static str,
        /// The kind the caller asked for.
        requested: &'static str,
    },
    /// JSON that failed to parse.
    Json(JsonError),
    /// An export-path I/O failure (event log, flight dump, listener).
    Io {
        /// What the layer was doing (`"eventlog write"`, `"flight dump"`…).
        op: &'static str,
        /// The underlying `std::io` message.
        msg: String,
    },
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::MetricKindMismatch { name, registered, requested } => write!(
                f,
                "metric {:?} is registered as a {} but was requested as a {}",
                name, registered, requested
            ),
            ObsError::Json(e) => write!(f, "json: {}", e),
            ObsError::Io { op, msg } => write!(f, "{}: {}", op, msg),
        }
    }
}

impl std::error::Error for ObsError {}

impl From<JsonError> for ObsError {
    fn from(e: JsonError) -> ObsError {
        ObsError::Json(e)
    }
}

impl ObsError {
    /// Wraps an I/O error with the operation that hit it.
    pub fn io(op: &'static str, e: std::io::Error) -> ObsError {
        ObsError::Io { op, msg: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_operator_readable() {
        let e = ObsError::MetricKindMismatch {
            name: "x.y",
            registered: "gauge",
            requested: "counter",
        };
        assert!(e.to_string().contains("registered as a gauge"));
        let e = ObsError::from(JsonError { offset: 7, msg: "expected ','".into() });
        assert_eq!(e.to_string(), "json: expected ',' at byte 7");
        let io = ObsError::io(
            "flight dump",
            std::io::Error::new(std::io::ErrorKind::Other, "disk full"),
        );
        assert!(io.to_string().starts_with("flight dump: "));
    }
}
