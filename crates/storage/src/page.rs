//! Fixed-size pages with a slotted record layout.
//!
//! Layout of a slotted page (offsets in bytes):
//!
//! ```text
//! 0..2    number of slots (u16)
//! 2..4    offset of the start of the record area (u16, grows downward)
//! 4..     slot directory: per slot, record offset (u16) and length (u16);
//!         a slot with offset 0 is a tombstone (page offsets < 4 are
//!         impossible for live records)
//! ...     free space
//! ...     records, packed against the end of the page
//! ```

use crate::{Result, StorageError};

/// Size of every page in bytes. Chosen to match a common filesystem block.
pub const PAGE_SIZE: usize = 4096;

const HDR: usize = 4;
const SLOT: usize = 4;

/// Identifier of a page within a disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

/// A view over a page's bytes interpreting the slotted layout.
pub struct SlottedPage<'a> {
    data: &'a mut [u8],
}

impl<'a> SlottedPage<'a> {
    /// Wraps page bytes. The caller must have initialized the page with
    /// [`SlottedPage::init`] at some point (all-zeros is a valid empty page
    /// except for the record-area pointer, which `init` sets).
    pub fn new(data: &'a mut [u8]) -> SlottedPage<'a> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        SlottedPage { data }
    }

    /// Formats the page as empty.
    pub fn init(data: &mut [u8]) {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        data[0..2].copy_from_slice(&0u16.to_le_bytes());
        data[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
    }

    fn read_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.data[at], self.data[at + 1]])
    }

    fn write_u16(&mut self, at: usize, v: u16) {
        self.data[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of slots (live and tombstoned).
    pub fn slot_count(&self) -> usize {
        self.read_u16(0) as usize
    }

    fn record_start(&self) -> usize {
        let v = self.read_u16(2) as usize;
        if v == 0 {
            PAGE_SIZE // uninitialized all-zeros page behaves as empty
        } else {
            v
        }
    }

    /// Free bytes available for one more record (including its slot entry).
    pub fn free_space(&self) -> usize {
        let dir_end = HDR + self.slot_count() * SLOT;
        self.record_start().saturating_sub(dir_end)
    }

    /// Whether a record of `len` bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT
    }

    /// The largest record insertable into an empty page.
    pub const fn max_record() -> usize {
        PAGE_SIZE - HDR - SLOT
    }

    /// Inserts a record, returning its slot number.
    pub fn insert(&mut self, record: &[u8]) -> Result<u16> {
        if record.len() > Self::max_record() {
            return Err(StorageError::RecordTooLarge(record.len()));
        }
        if !self.fits(record.len()) {
            return Err(StorageError::Corrupt("insert into full page"));
        }
        let slot = self.slot_count();
        let new_start = self.record_start() - record.len();
        self.data[new_start..new_start + record.len()].copy_from_slice(record);
        self.write_u16(2, new_start as u16);
        let dir = HDR + slot * SLOT;
        self.write_u16(dir, new_start as u16);
        self.write_u16(dir + 2, record.len() as u16);
        self.write_u16(0, (slot + 1) as u16);
        Ok(slot as u16)
    }

    /// Reads the record in `slot`, or `None` if the slot is a tombstone or
    /// out of range.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot as usize >= self.slot_count() {
            return None;
        }
        let dir = HDR + slot as usize * SLOT;
        let off = self.read_u16(dir) as usize;
        if off == 0 {
            return None;
        }
        let len = self.read_u16(dir + 2) as usize;
        Some(&self.data[off..off + len])
    }

    /// Tombstones the record in `slot`. The space is not reclaimed (classic
    /// lazy deletion; compaction would go here in a full system).
    pub fn delete(&mut self, slot: u16) -> bool {
        if slot as usize >= self.slot_count() {
            return false;
        }
        let dir = HDR + slot as usize * SLOT;
        if self.read_u16(dir) == 0 {
            return false;
        }
        self.write_u16(dir, 0);
        self.write_u16(dir + 2, 0);
        true
    }

    /// Iterates over `(slot, record)` pairs of live records.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        (0..self.slot_count() as u16).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_page() -> Vec<u8> {
        let mut data = vec![0u8; PAGE_SIZE];
        SlottedPage::init(&mut data);
        data
    }

    #[test]
    fn insert_and_get() {
        let mut data = empty_page();
        let mut p = SlottedPage::new(&mut data);
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0), Some(&b"hello"[..]));
        assert_eq!(p.get(s1), Some(&b"world!"[..]));
        assert_eq!(p.get(99), None);
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn delete_tombstones() {
        let mut data = empty_page();
        let mut p = SlottedPage::new(&mut data);
        let s = p.insert(b"gone").unwrap();
        assert!(p.delete(s));
        assert_eq!(p.get(s), None);
        assert!(!p.delete(s)); // double delete is a no-op
        assert_eq!(p.iter().count(), 0);
    }

    #[test]
    fn fills_up_exactly() {
        let mut data = empty_page();
        let mut p = SlottedPage::new(&mut data);
        let rec = vec![7u8; 100];
        let mut n = 0;
        while p.fits(rec.len()) {
            p.insert(&rec).unwrap();
            n += 1;
        }
        // 4096 - 4 header = 4092; each record costs 104 → 39 records.
        assert_eq!(n, (PAGE_SIZE - HDR) / (rec.len() + SLOT));
        assert!(p.insert(&rec).is_err());
        // All still readable.
        assert_eq!(p.iter().count(), n);
        assert!(p.iter().all(|(_, r)| r == &rec[..]));
    }

    #[test]
    fn oversized_record_rejected() {
        let mut data = empty_page();
        let mut p = SlottedPage::new(&mut data);
        let too_big = vec![0u8; SlottedPage::max_record() + 1];
        assert!(matches!(p.insert(&too_big), Err(StorageError::RecordTooLarge(_))));
        let just_fits = vec![1u8; SlottedPage::max_record()];
        let s = p.insert(&just_fits).unwrap();
        assert_eq!(p.get(s).unwrap().len(), SlottedPage::max_record());
    }

    #[test]
    fn zeroed_page_is_valid_empty() {
        let mut data = vec![0u8; PAGE_SIZE];
        let p = SlottedPage::new(&mut data);
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.iter().count(), 0);
        assert!(p.fits(100));
    }

    #[test]
    fn empty_record_ok() {
        let mut data = empty_page();
        let mut p = SlottedPage::new(&mut data);
        let s = p.insert(b"").unwrap();
        assert_eq!(p.get(s), Some(&b""[..]));
    }
}
