//! Parallel-evaluator speedup harness.
//!
//! Runs a seeded two-relation constraint join across the full
//! `{threads} × {bbox filter on/off}` grid, checks that every
//! configuration produces a byte-identical result (the determinism
//! contract of the chunked executor and the soundness contract of the
//! filter), and reports wall-clock speedups plus the filter's rejection
//! rate. Results are written to `BENCH_parallel.json`.
//!
//! The headline number compares the evaluator's **new default**
//! (all hardware threads, filter on) against the **pre-parallelism
//! baseline** (one thread, filter off — `ExecOptions::serial()`). On a
//! single-core container the thread axis is flat and the filter carries
//! the speedup; the full grid is reported so both effects are visible
//! separately.
//!
//! Usage: `parallel_speedup [--quick] [--out PATH]`

use cqa::core::ops::join_opts;
use cqa::core::{AttrDef, ExecOptions, ExecStats, HRelation, Schema};
use cqa::num::prng::Pcg32;
use cqa::obs::fnv1a;
use cqa::obs::json::Json;
use std::time::Instant;

const SEED: u64 = 0xC0FFEE;

struct Config {
    tuples: usize,
    repeats: usize,
    mode: &'static str,
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_parallel.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: parallel_speedup [--quick] [--out PATH]");
                return;
            }
            other => {
                eprintln!("unknown argument {:?}", other);
                std::process::exit(2);
            }
        }
    }
    let cfg = if quick {
        Config { tuples: 120, repeats: 1, mode: "quick" }
    } else {
        Config { tuples: 500, repeats: 3, mode: "full" }
    };

    let left = interval_relation("aid", cfg.tuples, SEED);
    let right = interval_relation("bid", cfg.tuples, SEED ^ 0x9E37_79B9);
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!(
        "# parallel_speedup ({}): {}x{} tuple join, seed {:#x}, {} repeats, {} hardware thread(s)",
        cfg.mode, cfg.tuples, cfg.tuples, SEED, cfg.repeats, hw
    );
    println!("{:>8} {:>7} {:>12} {:>10} {:>18}", "threads", "filter", "median_ms", "rows", "result_hash");

    // The honest grid: both axes, including the serial no-filter baseline
    // and the new default.
    let thread_axis = [1usize, 4];
    let mut cells: Vec<Cell> = Vec::new();
    for &threads in &thread_axis {
        for filter in [false, true] {
            let opts = ExecOptions { threads, bbox_filter: filter, ..ExecOptions::default() };
            cells.push(run_cell(&left, &right, &opts, cfg.repeats));
        }
    }

    // Determinism/soundness gate: the join's output must be byte-identical
    // in every cell (the filter only skips provably-unsat pairs; the
    // executor preserves serial order for every thread count).
    let hash0 = cells[0].hash;
    if let Some(bad) = cells.iter().find(|c| c.hash != hash0) {
        eprintln!(
            "NONDETERMINISM: threads={} filter={} produced hash {:#018x}, expected {:#018x}",
            bad.threads, bad.filter, bad.hash, hash0
        );
        std::process::exit(1);
    }
    println!("RESULT_HASH {:#018x}", hash0);

    let baseline = cells
        .iter()
        .find(|c| c.threads == 1 && !c.filter)
        .expect("grid contains the serial baseline");
    let default_cell = cells
        .iter()
        .find(|c| c.threads == 4 && c.filter)
        .expect("grid contains the new default");
    let speedup = baseline.median_ms / default_cell.median_ms;
    let rate = if default_cell.checked > 0 {
        default_cell.rejected as f64 / default_cell.checked as f64
    } else {
        0.0
    };
    println!(
        "headline: {:.2}x (threads=1 filter=off {:.2} ms -> threads=4 filter=on {:.2} ms)",
        speedup, baseline.median_ms, default_cell.median_ms
    );
    println!(
        "bbox filter: rejected {}/{} candidate pairs ({:.1}%)",
        default_cell.rejected,
        default_cell.checked,
        100.0 * rate
    );
    if hw == 1 {
        println!("note: single hardware thread — the speedup is carried by the bbox filter");
    }

    let metrics = report_metrics(&cfg, &cells, hash0, speedup, rate, hw);
    if let Err(e) = cqa_bench::report::write(&out_path, "parallel_speedup", metrics) {
        eprintln!("cannot write {}: {}", out_path, e);
        std::process::exit(1);
    }
    println!("wrote {}", out_path);
}

struct Cell {
    threads: usize,
    filter: bool,
    median_ms: f64,
    rows: usize,
    hash: u64,
    checked: u64,
    rejected: u64,
}

fn run_cell(left: &HRelation, right: &HRelation, opts: &ExecOptions, repeats: usize) -> Cell {
    let mut times = Vec::with_capacity(repeats);
    let mut rows = 0;
    let mut hash = 0;
    let mut checked = 0;
    let mut rejected = 0;
    for _ in 0..repeats {
        let stats = ExecStats::new();
        let t = Instant::now();
        let out = join_opts(left, right, opts, &stats).expect("join succeeds");
        times.push(t.elapsed().as_secs_f64() * 1e3);
        rows = out.len();
        hash = fnv1a(format!("{}", out).as_bytes());
        checked = stats.checked();
        rejected = stats.rejected();
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median_ms = times[times.len() / 2];
    println!(
        "{:>8} {:>7} {:>12.2} {:>10} {:>#18x}",
        opts.threads,
        if opts.bbox_filter { "on" } else { "off" },
        median_ms,
        rows,
        hash
    );
    Cell { threads: opts.threads, filter: opts.bbox_filter, median_ms, rows, hash, checked, rejected }
}

/// A relation `(id: string relational, x: rational constraint)` with `n`
/// seeded random integer intervals in the §5.4 coordinate domain. Joining
/// two of these on the shared constraint attribute `x` intersects the
/// intervals of every id pair; most pairs are disjoint, which is exactly
/// the regime the cheap filter targets.
fn interval_relation(id_attr: &str, n: usize, seed: u64) -> HRelation {
    let schema =
        Schema::new(vec![AttrDef::str_rel(id_attr), AttrDef::rat_con("x")]).expect("valid schema");
    let mut rel = HRelation::new(schema);
    let mut rng = Pcg32::seed_from_u64(seed);
    for i in 0..n {
        let lo = rng.gen_range_i64(0, 3000);
        let w = rng.gen_range_i64(1, 100);
        rel.insert_with(|b| b.set(id_attr, format!("{}{}", id_attr, i).as_str()).range("x", lo, lo + w))
            .expect("valid tuple");
    }
    rel
}

fn report_metrics(
    cfg: &Config,
    cells: &[Cell],
    hash: u64,
    speedup: f64,
    rejection_rate: f64,
    hw: usize,
) -> Vec<(String, Json)> {
    let round3 = |v: f64| (v * 1e3).round() / 1e3;
    let grid = cells
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("threads".to_string(), Json::from_u64(c.threads as u64)),
                ("bbox_filter".to_string(), Json::Bool(c.filter)),
                ("median_ms".to_string(), Json::Num(round3(c.median_ms))),
            ])
        })
        .collect();
    let default_cell = cells.iter().find(|c| c.threads == 4 && c.filter).expect("present");
    vec![
        ("mode".to_string(), Json::str(cfg.mode)),
        ("seed".to_string(), Json::from_u64(SEED)),
        ("tuples_per_relation".to_string(), Json::from_u64(cfg.tuples as u64)),
        ("repeats".to_string(), Json::from_u64(cfg.repeats as u64)),
        ("hardware_threads".to_string(), Json::from_u64(hw as u64)),
        ("result_hash".to_string(), Json::str(format!("{:#018x}", hash))),
        ("result_rows".to_string(), Json::from_u64(cells[0].rows as u64)),
        ("grid".to_string(), Json::Arr(grid)),
        ("filter_checked".to_string(), Json::from_u64(default_cell.checked)),
        ("filter_rejected".to_string(), Json::from_u64(default_cell.rejected)),
        ("filter_rejection_rate".to_string(), Json::Num((rejection_rate * 1e4).round() / 1e4)),
        ("headline".to_string(), Json::Obj(vec![
            (
                "baseline".to_string(),
                Json::str("threads=1 bbox_filter=off (pre-parallelism serial path)"),
            ),
            ("candidate".to_string(), Json::str("threads=4 bbox_filter=on (new default)")),
            ("speedup".to_string(), Json::Num(round3(speedup))),
        ])),
        (
            "note".to_string(),
            Json::str(format!(
                "all grid cells produced byte-identical results; container exposes {} hardware thread(s), so thread scaling beyond that is flat and the bbox filter carries the speedup",
                hw
            )),
        ),
    ]
}
