//! Cross-crate integration tests: the closure principle end-to-end, the
//! constraint ⇄ vector ⇄ index pipeline, and the storage-backed index.

use cqa::constraints::{Assignment, Var};
use cqa::core::plan::{CmpOp, Plan, Selection};
use cqa::core::{exec, optimizer, AttrDef, Catalog, HRelation, Schema, Value};
use cqa::index::paged::persist;
use cqa::index::{RStarParams, RStarTree, Rect};
use cqa::num::Rat;
use cqa::spatial::decompose::geometry_to_dnf;
use cqa::spatial::{Feature, Geometry, Point, SpatialRelation};
use cqa::storage::{BufferPool, MemDisk};

/// The closure principle (§2.5), checked pointwise: a query evaluated
/// syntactically over constraint tuples gives the same membership answers
/// as the equivalent set operation on the denoted (infinite) point sets.
#[test]
fn closure_principle_pointwise() {
    let schema = Schema::new(vec![AttrDef::rat_con("x"), AttrDef::rat_con("y")]).unwrap();
    // R: the triangle x ≥ 0, y ≥ 0, x + y ≤ 4; S: the square [1,3]².
    let mut r = HRelation::new(schema.clone());
    r.insert_with(|b| {
        use cqa::constraints::{Atom, LinExpr};
        b.atom(Atom::ge(LinExpr::var(Var(0)), LinExpr::zero()))
            .atom(Atom::ge(LinExpr::var(Var(1)), LinExpr::zero()))
            .atom(Atom::le(
                LinExpr::from_terms([(Var(0), Rat::one()), (Var(1), Rat::one())], Rat::zero()),
                LinExpr::constant_int(4),
            ))
    })
    .unwrap();
    let mut s = HRelation::new(schema);
    s.insert_with(|b| b.range("x", 1, 3).range("y", 1, 3)).unwrap();

    let mut catalog = Catalog::new();
    catalog.register("R", r.clone());
    catalog.register("S", s.clone());

    let joined = exec::execute(&Plan::scan("R").join(Plan::scan("S")), &catalog).unwrap();
    let diffed = exec::execute(&Plan::scan("R").minus(Plan::scan("S")), &catalog).unwrap();
    let unioned = exec::execute(&Plan::scan("R").union(Plan::scan("S")), &catalog).unwrap();

    for xi in -1..6 {
        for yi in -1..6 {
            for half in [0, 1] {
                let x = Rat::from_pair(2 * xi + half, 2);
                let y = Rat::from_pair(2 * yi + half, 2);
                let point = [Value::rat(x.clone()), Value::rat(y.clone())];
                let in_r = r.contains_point(&point).unwrap();
                let in_s = s.contains_point(&point).unwrap();
                assert_eq!(joined.contains_point(&point).unwrap(), in_r && in_s, "∩ at ({}, {})", x, y);
                assert_eq!(diffed.contains_point(&point).unwrap(), in_r && !in_s, "− at ({}, {})", x, y);
                assert_eq!(unioned.contains_point(&point).unwrap(), in_r || in_s, "∪ at ({}, {})", x, y);
            }
        }
    }
}

/// Vector model → constraint model → CQA query, with the answer checked
/// against direct geometry.
#[test]
fn vector_to_constraint_to_query() {
    let lake = Geometry::polygon(vec![
        Point::from_ints(0, 0),
        Point::from_ints(8, 0),
        Point::from_ints(8, 4),
        Point::from_ints(4, 4),
        Point::from_ints(4, 8),
        Point::from_ints(0, 8),
    ])
    .unwrap();
    let schema = Schema::new(vec![
        AttrDef::str_rel("id"),
        AttrDef::rat_con("x"),
        AttrDef::rat_con("y"),
    ])
    .unwrap();
    let (vx, vy) = (Var(1), Var(2));
    let mut rel = HRelation::new(schema);
    for conj in geometry_to_dnf(&lake, vx, vy).conjunctions() {
        let mut builder = cqa::core::Tuple::builder(rel.schema()).set("id", "lake");
        for atom in conj.atoms() {
            builder = builder.atom(atom.clone());
        }
        rel.insert(builder.build().unwrap());
    }

    let mut catalog = Catalog::new();
    catalog.register("Lakes", rel);
    // Query: the slice of the lake with y ≥ 5 — only the upper arm.
    let plan = Plan::scan("Lakes").select(Selection::all().cmp_int("y", CmpOp::Ge, 5));
    let out = exec::execute(&plan, &catalog).unwrap();
    assert!(out
        .contains_point(&[Value::str("lake"), Value::int(2), Value::int(6)])
        .unwrap());
    assert!(!out
        .contains_point(&[Value::str("lake"), Value::int(6), Value::int(2)])
        .unwrap());
    // Agreement with the vector model on a grid.
    for xi in 0..9 {
        for yi in 0..9 {
            let p = Point::from_ints(xi, yi);
            let want = lake.contains_point(&p) && yi >= 5;
            let got = out
                .contains_point(&[Value::str("lake"), Value::int(xi), Value::int(yi)])
                .unwrap();
            assert_eq!(got, want, "at ({}, {})", xi, yi);
        }
    }
}

/// Constraint tuples → bounding boxes → R*-tree filter → exact refinement:
/// the §5 indexing pipeline against a brute-force oracle.
#[test]
fn index_filter_refine_pipeline() {
    let schema = Schema::new(vec![AttrDef::rat_con("x"), AttrDef::rat_con("y")]).unwrap();
    let mut rel = HRelation::new(schema);
    for i in 0..60i64 {
        let (x0, y0) = ((i % 10) * 12, (i / 10) * 12);
        rel.insert_with(|b| b.range("x", x0, x0 + 8).range("y", y0, y0 + 8)).unwrap();
    }
    // Build the index from each tuple's bounding box.
    let mut tree: RStarTree<2, u64> = RStarTree::new(RStarParams::with_max(8));
    for (i, t) in rel.tuples().iter().enumerate() {
        let bb = t.constraint().bounding_box(&[Var(0), Var(1)]);
        let (xl, xh) = bb[0].to_f64_bounds();
        let (yl, yh) = bb[1].to_f64_bounds();
        tree.insert(Rect::new([xl, yl], [xh, yh]), i as u64);
    }
    // Query box [20, 40] × [10, 30]: filter by index, refine exactly.
    let query = Rect::new([20.0, 10.0], [40.0, 30.0]);
    let candidates = tree.search(&query);
    let sel = Selection::all()
        .cmp_int("x", CmpOp::Ge, 20)
        .cmp_int("x", CmpOp::Le, 40)
        .cmp_int("y", CmpOp::Ge, 10)
        .cmp_int("y", CmpOp::Le, 30);
    let exact = cqa::core::ops::select(&rel, &sel).unwrap();
    // Refinement: candidates whose constraints intersect the query box.
    let refined: Vec<u64> = candidates
        .into_iter()
        .filter(|&i| {
            let t = &rel.tuples()[i as usize];
            let mut conj = t.constraint().clone();
            for atom in cqa::core::ops::select(
                &{
                    let mut single = HRelation::new(rel.schema().clone());
                    single.insert(t.clone());
                    single
                },
                &sel,
            )
            .unwrap()
            .tuples()
            .first()
            .map(|t| t.constraint().clone())
            .unwrap_or_else(cqa::constraints::Conjunction::falsum)
            .atoms()
            {
                conj.add(atom.clone());
            }
            conj.is_satisfiable()
        })
        .collect();
    assert_eq!(refined.len(), exact.len(), "filter+refine agrees with exact selection");
}

/// The paged index through the storage engine returns what the in-memory
/// index returns, while the buffer pool counts the traffic.
#[test]
fn storage_backed_index_roundtrip() {
    let mut tree: RStarTree<2, u64> = RStarTree::new(RStarParams::with_max(16));
    for i in 0..500u64 {
        let x = (i % 25) as f64 * 4.0;
        let y = (i / 25) as f64 * 4.0;
        tree.insert(Rect::new([x, y], [x + 2.0, y + 2.0]), i);
    }
    let mut pool = BufferPool::new(MemDisk::new(), 8);
    let paged = persist(&tree, &mut pool).unwrap();
    pool.clear().unwrap();
    pool.reset_stats();
    let q = Rect::new([10.0, 10.0], [30.0, 30.0]);
    let (mut from_disk, accesses) = paged.search(&mut pool, &q).unwrap();
    let mut from_mem = tree.search(&q);
    from_disk.sort();
    from_mem.sort();
    assert_eq!(from_disk, from_mem);
    assert!(accesses > 0);
    assert_eq!(pool.stats().logical, accesses);
}

/// Spatial whole-feature results compose with the full algebra and the
/// optimizer.
#[test]
fn whole_feature_into_algebra() {
    let mut catalog = Catalog::new();
    catalog.register_spatial(
        "Wells",
        SpatialRelation::from_features([
            Feature::new("w1", Geometry::Point(Point::from_ints(0, 0))),
            Feature::new("w2", Geometry::Point(Point::from_ints(50, 50))),
        ]),
    );
    catalog.register_spatial(
        "Farms",
        SpatialRelation::from_features([
            Feature::new("f1", Geometry::polygon(vec![
                Point::from_ints(1, 1),
                Point::from_ints(5, 1),
                Point::from_ints(5, 5),
                Point::from_ints(1, 5),
            ]).unwrap()),
            Feature::new("f2", Geometry::polygon(vec![
                Point::from_ints(60, 60),
                Point::from_ints(70, 60),
                Point::from_ints(70, 70),
            ]).unwrap()),
        ]),
    );
    let plan = Plan::BufferJoin {
        left: "Wells".into(),
        right: "Farms".into(),
        distance: Rat::from_int(3),
    }
    .select(Selection::all().str_eq("id1", "w1"))
    .project(&["id2"]);
    let optimized = optimizer::optimize(&plan, &catalog).unwrap();
    let a = exec::execute(&plan, &catalog).unwrap();
    let b = exec::execute(&optimized, &catalog).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.len(), 1);
    assert!(a.contains_point(&[Value::str("f1")]).unwrap());
}

/// The assignment/eval layer agrees with relation membership.
#[test]
fn membership_vs_assignment() {
    let schema = Schema::new(vec![AttrDef::rat_con("x")]).unwrap();
    let mut r = HRelation::new(schema);
    r.insert_with(|b| b.range("x", 0, 10)).unwrap();
    let t = &r.tuples()[0];
    let inside = Assignment::from_pairs([(Var(0), Rat::from_int(5))]);
    assert_eq!(t.constraint().eval(&inside), Some(true));
    assert!(r.contains_point(&[Value::int(5)]).unwrap());
    assert!(!r.contains_point(&[Value::int(11)]).unwrap());
}
