//! The catalog: named heterogeneous relations, spatial relations, and
//! relation indexes.
//!
//! Step-wise query scripts (§3.3's `R0 = …`, `R1 = …`) store their
//! intermediate results here too, so a catalog doubles as the evaluation
//! environment of a script.
//!
//! Indexes implement the §5 design inside the query engine: a
//! [`RelationIndex`] is an R\*-tree over the *bounding boxes* of a
//! relation's tuples in one or two chosen attributes (the joint/separate
//! decision of §5.4 is exactly the choice of `attrs` here). The evaluator
//! uses an index as a **filter** — candidate tuples are re-checked exactly
//! — so results are identical with or without indexes; only the disk
//! accesses change.

use crate::error::{CoreError, Result};
use crate::relation::HRelation;
use crate::schema::{AttrKind, AttrType};
use crate::value::Value;
use cqa_index::{RStarParams, RStarTree, Rect};
use cqa_spatial::SpatialRelation;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bounds substituted for unconstrained attributes in index probes.
const WORLD: f64 = 1.0e15;

enum IndexTree {
    One(RStarTree<1, u64>),
    Two(RStarTree<2, u64>),
}

/// An R\*-tree index over one or two attributes of a stored relation.
pub struct RelationIndex {
    attrs: Vec<String>,
    tree: IndexTree,
    // Atomic so probes stay `&self` under the parallel executor; sums are
    // order-independent, so parallel runs report the same totals as serial.
    accesses: AtomicU64,
}

impl RelationIndex {
    /// Builds an index over the given attributes of `rel`.
    ///
    /// Attributes must be rational (constraint attributes index their
    /// exact projection interval; relational ones their point value, with
    /// nulls widened to the whole domain so the filter stays sound).
    pub fn build(rel: &HRelation, attrs: &[&str]) -> Result<RelationIndex> {
        if attrs.is_empty() || attrs.len() > 2 {
            return Err(CoreError::BadPredicate(
                "indexes cover one or two attributes".to_string(),
            ));
        }
        let schema = rel.schema();
        let mut positions = Vec::new();
        for name in attrs {
            let def = schema.attr(name)?;
            if def.ty != AttrType::Rat {
                return Err(CoreError::BadPredicate(format!(
                    "cannot index string attribute {:?}",
                    name
                )));
            }
            positions.push(schema.position(name)?);
        }
        // Per-tuple, per-attribute [lo, hi] in f64 (conservative).
        let extent = |tuple_idx: usize, attr_pos: usize| -> (f64, f64) {
            let t = &rel.tuples()[tuple_idx];
            match schema.attrs()[attr_pos].kind {
                AttrKind::Relational => match t.value(attr_pos) {
                    Some(Value::Rat(r)) => {
                        let v = r.to_f64();
                        (v - 1e-9, v + 1e-9)
                    }
                    _ => (-WORLD, WORLD), // null: sound over-approximation
                },
                AttrKind::Constraint => {
                    let interval = t.constraint().bounds(schema.var(attr_pos));
                    let (lo, hi) = interval.to_f64_bounds();
                    if lo > hi {
                        (1.0, -1.0) // unsatisfiable tuple: index nothing
                    } else {
                        // Clamp both endpoints into the world: an extent
                        // entirely beyond it collapses onto the border and
                        // still meets every (equally clamped) probe.
                        (lo.clamp(-WORLD, WORLD) - 1e-9, hi.clamp(-WORLD, WORLD) + 1e-9)
                    }
                }
            }
        };
        let tree = match positions.as_slice() {
            [a] => {
                let mut t: RStarTree<1, u64> = RStarTree::new(RStarParams::fitting_page(1));
                for i in 0..rel.len() {
                    let (lo, hi) = extent(i, *a);
                    if lo <= hi {
                        t.insert(Rect::new([lo], [hi]), i as u64);
                    }
                }
                IndexTree::One(t)
            }
            [a, b] => {
                let mut t: RStarTree<2, u64> = RStarTree::new(RStarParams::fitting_page(2));
                for i in 0..rel.len() {
                    let (xlo, xhi) = extent(i, *a);
                    let (ylo, yhi) = extent(i, *b);
                    if xlo <= xhi && ylo <= yhi {
                        t.insert(Rect::new([xlo, ylo], [xhi, yhi]), i as u64);
                    }
                }
                IndexTree::Two(t)
            }
            _ => unreachable!("validated arity"),
        };
        Ok(RelationIndex {
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
            tree,
            accesses: AtomicU64::new(0),
        })
    }

    /// The indexed attribute names.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Total node accesses charged to probes of this index.
    pub fn accesses(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }

    /// Probes with per-attribute `[lo, hi]` bounds (`None` = unbounded),
    /// aligned with [`Self::attrs`]. Returns candidate tuple ordinals,
    /// sorted ascending.
    ///
    /// Bounds are clamped to the same `±WORLD` range the stored extents
    /// were clamped to: a probe beyond it would otherwise miss tuples
    /// whose true extents exceed the clamp.
    pub fn probe(&self, bounds: &[Option<(f64, f64)>]) -> Vec<usize> {
        debug_assert_eq!(bounds.len(), self.attrs.len());
        let get = |i: usize| {
            let (lo, hi) = bounds[i].unwrap_or((-WORLD, WORLD));
            (lo.clamp(-WORLD, WORLD), hi.clamp(-WORLD, WORLD))
        };
        let (mut ids, accesses) = match &self.tree {
            IndexTree::One(t) => {
                let (lo, hi) = get(0);
                t.search_with_stats(&Rect::new([lo], [hi]))
            }
            IndexTree::Two(t) => {
                let (xlo, xhi) = get(0);
                let (ylo, yhi) = get(1);
                t.search_with_stats(&Rect::new([xlo, ylo], [xhi, yhi]))
            }
        };
        self.accesses.fetch_add(accesses, Ordering::Relaxed);
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter().map(|i| i as usize).collect()
    }
}

/// A named collection of relations.
#[derive(Default)]
pub struct Catalog {
    relations: BTreeMap<String, HRelation>,
    spatial: BTreeMap<String, SpatialRelation>,
    indexes: BTreeMap<String, Vec<RelationIndex>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers (or replaces) a heterogeneous relation. Any indexes built
    /// on a previous relation of this name are dropped (they describe the
    /// old contents).
    pub fn register(&mut self, name: impl Into<String>, rel: HRelation) {
        let name = name.into();
        self.indexes.remove(&name);
        self.relations.insert(name, rel);
    }

    /// Builds an index over `attrs` of the stored relation `name` and
    /// keeps it for the evaluator's filter step.
    pub fn build_index(&mut self, name: &str, attrs: &[&str]) -> Result<()> {
        let rel = self.get(name)?;
        let index = RelationIndex::build(rel, attrs)?;
        self.indexes.entry(name.to_string()).or_default().push(index);
        Ok(())
    }

    /// The indexes available on `name` (empty slice when none).
    pub fn indexes(&self, name: &str) -> &[RelationIndex] {
        self.indexes.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Registers (or replaces) a spatial relation.
    pub fn register_spatial(&mut self, name: impl Into<String>, rel: SpatialRelation) {
        self.spatial.insert(name.into(), rel);
    }

    /// Looks up a heterogeneous relation.
    pub fn get(&self, name: &str) -> Result<&HRelation> {
        self.relations
            .get(name)
            .ok_or_else(|| CoreError::UnknownRelation(name.to_string()))
    }

    /// Looks up a spatial relation.
    pub fn get_spatial(&self, name: &str) -> Result<&SpatialRelation> {
        self.spatial
            .get(name)
            .ok_or_else(|| CoreError::UnknownRelation(name.to_string()))
    }

    /// Removes a heterogeneous relation, returning it if present. Any
    /// indexes on it are dropped too.
    pub fn remove(&mut self, name: &str) -> Option<HRelation> {
        self.indexes.remove(name);
        self.relations.remove(name)
    }

    /// Removes a spatial relation, returning it if present.
    pub fn remove_spatial(&mut self, name: &str) -> Option<SpatialRelation> {
        self.spatial.remove(name)
    }

    /// Names of registered heterogeneous relations.
    pub fn names(&self) -> impl Iterator<Item = &str> + '_ {
        self.relations.keys().map(|s| s.as_str())
    }

    /// Names of registered spatial relations.
    pub fn spatial_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.spatial.keys().map(|s| s.as_str())
    }

    /// Whether a (heterogeneous or spatial) relation of this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name) || self.spatial.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrDef, Schema};

    #[test]
    fn register_lookup_remove() {
        let mut cat = Catalog::new();
        let schema = Schema::new(vec![AttrDef::rat_con("x")]).unwrap();
        cat.register("R", HRelation::new(schema));
        assert!(cat.get("R").is_ok());
        assert!(cat.get("S").is_err());
        assert!(cat.contains("R"));
        assert_eq!(cat.names().collect::<Vec<_>>(), vec!["R"]);
        assert!(cat.remove("R").is_some());
        assert!(cat.get("R").is_err());
    }

    #[test]
    fn spatial_namespace() {
        let mut cat = Catalog::new();
        cat.register_spatial("Roads", SpatialRelation::new());
        assert!(cat.get_spatial("Roads").is_ok());
        assert!(cat.get("Roads").is_err(), "separate namespaces");
        assert!(cat.contains("Roads"));
        assert_eq!(cat.spatial_names().collect::<Vec<_>>(), vec!["Roads"]);
    }
}
