//! Whole-feature spatial operators (§4).
//!
//! `Buffer-Join` and `k-Nearest` consume spatial constraint relations and
//! return relations keyed by feature IDs — finite, constraint-free output,
//! hence always **safe** in the sense of §2.4. Contrast with the raw
//! `distance` operator: `distance((x₁,y₁), (x₂,y₂)) = d` is not expressible
//! with linear constraints (it is a quadratic cone), so a query exposing it
//! as a constraint attribute has no closed-form output; [`min_dist2`] is
//! therefore offered only as a *scalar* function, and the query layer in
//! `cqa-core` rejects attempts to use distance as a constraint.
//!
//! Evaluation is two-step, following the filter/refine paradigm the paper
//! cites (\[3\]): bounding-box candidates come from the R\*-tree, and the
//! refinement compares exact rational squared distances.

use crate::feature::Geometry;
use crate::relation::SpatialRelation;
use cqa_index::Rect;
use cqa_num::par::map_chunks;
use cqa_num::Rat;

/// Result rows of a whole-feature operator, keyed by feature ID pairs.
pub type IdPairs = Vec<(String, String)>;

/// Exact squared distance between two geometries (the scalar `distance`
/// primitive; see the module docs for why it is not a constraint operator).
pub fn min_dist2(a: &Geometry, b: &Geometry) -> Rat {
    a.dist2(b)
}

/// `Buffer-Join(R₁, R₂, d)`: all pairs of features within distance `d`.
///
/// Returns `(id₁, id₂)` pairs ordered by the relations' insertion order,
/// plus the index accesses spent on the filter step. Serial convenience
/// wrapper over [`buffer_join_par`].
pub fn buffer_join(r1: &SpatialRelation, r2: &SpatialRelation, d: &Rat) -> (IdPairs, u64) {
    buffer_join_par(r1, r2, d, 1)
}

/// [`buffer_join`] with the outer feature loop spread over `threads`
/// workers (`0` = all hardware threads).
///
/// Each outer feature's probe-and-refine step is independent; the chunked
/// executor keeps outputs in outer insertion order, so the pair list is
/// identical for every thread count. Access counts are summed, which is
/// order-independent, so the reported total matches the serial run too.
pub fn buffer_join_par(
    r1: &SpatialRelation,
    r2: &SpatialRelation,
    d: &Rat,
    threads: usize,
) -> (IdPairs, u64) {
    assert!(!d.is_negative(), "buffer distance must be non-negative");
    let d2 = d * d;
    let df = d.to_f64() + 1e-9;
    let threads = cqa_num::par::effective_threads(threads);
    let per_feature: Vec<(IdPairs, u64)> = map_chunks(r1.features(), threads, |f1| {
        // Filter: expand f1's box by d and probe r2's index.
        let (lo, hi) = f1.geom.bbox_f64();
        let probe = Rect::new([lo[0] - df, lo[1] - df], [hi[0] + df, hi[1] + df]);
        let (mut cands, acc) = r2.candidates(&probe);
        cands.sort_unstable();
        let mut rows = Vec::new();
        for idx in cands {
            let f2 = r2.get(idx);
            // Refine: exact rational squared distance.
            if f1.geom.dist2(&f2.geom) <= d2 {
                rows.push((f1.id.clone(), f2.id.clone()));
            }
        }
        (rows, acc)
    });
    let mut out = Vec::new();
    let mut accesses = 0;
    for (rows, acc) in per_feature {
        out.extend(rows);
        accesses += acc;
    }
    (out, accesses)
}

/// `k-Nearest(R₁, R₂, k)`: for each feature of `R₁`, its `k` nearest
/// features of `R₂` (exact squared-distance order; ties broken by id).
///
/// When `R₂` has fewer than `k` features, all of them are returned.
/// Serial convenience wrapper over [`k_nearest_par`].
pub fn k_nearest(r1: &SpatialRelation, r2: &SpatialRelation, k: usize) -> IdPairs {
    k_nearest_par(r1, r2, k, 1)
}

/// [`k_nearest`] with the outer feature loop spread over `threads`
/// workers (`0` = all hardware threads). Pair order is identical for
/// every thread count.
pub fn k_nearest_par(
    r1: &SpatialRelation,
    r2: &SpatialRelation,
    k: usize,
    threads: usize,
) -> IdPairs {
    let threads = cqa_num::par::effective_threads(threads);
    let per_feature: Vec<IdPairs> = map_chunks(r1.features(), threads, |f1| {
        let mut dists: Vec<(Rat, &str)> = r2
            .features()
            .iter()
            .map(|f2| (f1.geom.dist2(&f2.geom), f2.id.as_str()))
            .collect();
        dists.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(b.1)));
        dists.into_iter().take(k).map(|(_, id2)| (f1.id.clone(), id2.to_string())).collect()
    });
    per_feature.into_iter().flatten().collect()
}

/// Index-accelerated `k-Nearest`: expands a search radius geometrically
/// through the R\*-tree filter until at least `k` candidates are *provably*
/// within it, then refines exactly. Returns the same pairs as
/// [`k_nearest`] (which the tests assert).
pub fn k_nearest_indexed(r1: &SpatialRelation, r2: &SpatialRelation, k: usize) -> IdPairs {
    if r2.is_empty() || k == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f1 in r1.features() {
        let (lo, hi) = f1.geom.bbox_f64();
        // Initial radius: a guess from the world size and density.
        let world = r2
            .features()
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |acc, f| {
                let (l, h) = f.geom.bbox_f64();
                (acc.0.min(l[0]), acc.1.max(h[0]))
            });
        let mut radius = ((world.1 - world.0).abs() / (r2.len() as f64).sqrt()).max(1.0);
        let candidates = loop {
            let probe = Rect::new(
                [lo[0] - radius, lo[1] - radius],
                [hi[0] + radius, hi[1] + radius],
            );
            let (cands, _) = r2.candidates(&probe);
            // Box distance lower-bounds true distance, so once k candidates
            // have *exact* distance ≤ radius, nothing outside the probe can
            // beat them.
            if cands.len() >= k.min(r2.len()) {
                let radius2 = Rat::from_decimal_str(&format!("{:.6}", radius))
                    .unwrap_or_else(|_| Rat::from_int(radius as i64 + 1));
                let r2rat = &radius2 * &radius2;
                let close_enough = cands
                    .iter()
                    .filter(|&&i| f1.geom.dist2(&r2.get(i).geom) <= r2rat)
                    .count();
                if close_enough >= k.min(r2.len()) || cands.len() == r2.len() {
                    break cands;
                }
            }
            radius *= 2.0;
        };
        let mut dists: Vec<(Rat, &str)> = candidates
            .into_iter()
            .map(|i| {
                let f2 = r2.get(i);
                (f1.geom.dist2(&f2.geom), f2.id.as_str())
            })
            .collect();
        dists.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(b.1)));
        for (_, id2) in dists.into_iter().take(k) {
            out.push((f1.id.clone(), id2.to_string()));
        }
    }
    out
}

/// A `Within-Distance` selection: features of `r` within distance `d` of a
/// probe geometry (a one-sided buffer join; used by the examples).
pub fn within_distance<'a>(
    r: &'a SpatialRelation,
    probe: &Geometry,
    d: &Rat,
) -> Vec<&'a str> {
    let d2 = d * d;
    r.features()
        .iter()
        .filter(|f| f.geom.dist2(probe) <= d2)
        .map(|f| f.id.as_str())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::Feature;
    use crate::geom::Point;

    fn p(x: i64, y: i64) -> Point {
        Point::from_ints(x, y)
    }
    fn pt(id: &str, x: i64, y: i64) -> Feature {
        Feature::new(id, Geometry::Point(p(x, y)))
    }

    fn cities() -> SpatialRelation {
        SpatialRelation::from_features([
            pt("c0", 0, 0),
            pt("c1", 5, 0),
            pt("c2", 0, 5),
            pt("c3", 10, 10),
        ])
    }

    fn roads() -> SpatialRelation {
        SpatialRelation::from_features([
            Feature::new("r0", Geometry::polyline(vec![p(0, 1), p(10, 1)]).unwrap()),
            Feature::new("r1", Geometry::polyline(vec![p(-5, 20), p(15, 20)]).unwrap()),
        ])
    }

    #[test]
    fn buffer_join_basic() {
        let (pairs, _) = buffer_join(&roads(), &cities(), &Rat::from_int(2));
        // r0 (y=1) is within 2 of c0 (0,0), c1 (5,0); not c2 (0,5) or c3.
        assert!(pairs.contains(&("r0".into(), "c0".into())));
        assert!(pairs.contains(&("r0".into(), "c1".into())));
        assert!(!pairs.iter().any(|(a, b)| a == "r0" && b == "c2"));
        assert!(!pairs.iter().any(|(a, _)| a == "r1"));
    }

    #[test]
    fn buffer_join_boundary_is_inclusive() {
        // Distance exactly d must qualify (≤, not <) — and exactly, not
        // approximately: c2 is at distance exactly 4 from r0.
        let (pairs, _) = buffer_join(&roads(), &cities(), &Rat::from_int(4));
        assert!(pairs.contains(&("r0".into(), "c2".into())));
        let (pairs, _) = buffer_join(
            &roads(),
            &cities(),
            &(Rat::from_int(4) - Rat::from_pair(1, 1_000_000)),
        );
        assert!(!pairs.contains(&("r0".into(), "c2".into())));
    }

    #[test]
    fn buffer_join_agrees_with_exhaustive(){
        let r1 = roads();
        let r2 = cities();
        let d = Rat::from_int(3);
        let (pairs, _) = buffer_join(&r1, &r2, &d);
        let mut want = Vec::new();
        for f1 in r1.features() {
            for f2 in r2.features() {
                if f1.geom.dist2(&f2.geom) <= &d * &d {
                    want.push((f1.id.clone(), f2.id.clone()));
                }
            }
        }
        let mut got = pairs;
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn zero_distance_buffer_is_intersection() {
        let squares = SpatialRelation::from_features([Feature::new(
            "s",
            Geometry::polygon(vec![p(0, 0), p(4, 0), p(4, 4), p(0, 4)]).unwrap(),
        )]);
        let probes = SpatialRelation::from_features([pt("inside", 2, 2), pt("outside", 9, 9)]);
        let (pairs, _) = buffer_join(&squares, &probes, &Rat::zero());
        assert_eq!(pairs, vec![("s".to_string(), "inside".to_string())]);
    }

    #[test]
    fn k_nearest_ordering_and_ties() {
        let probes = SpatialRelation::from_features([pt("q", 0, 0)]);
        let targets = SpatialRelation::from_features([
            pt("far", 10, 0),
            pt("near", 1, 0),
            pt("tie_a", 3, 4),  // dist2 = 25
            pt("tie_b", -3, 4), // dist2 = 25 — tie broken by id
        ]);
        let pairs = k_nearest(&probes, &targets, 3);
        assert_eq!(
            pairs,
            vec![
                ("q".to_string(), "near".to_string()),
                ("q".to_string(), "tie_a".to_string()),
                ("q".to_string(), "tie_b".to_string()),
            ]
        );
    }

    #[test]
    fn k_nearest_k_larger_than_relation() {
        let probes = SpatialRelation::from_features([pt("q", 0, 0)]);
        let targets = SpatialRelation::from_features([pt("a", 1, 0), pt("b", 2, 0)]);
        assert_eq!(k_nearest(&probes, &targets, 10).len(), 2);
    }

    #[test]
    fn indexed_k_nearest_matches_exact() {
        // A spread of points with clusters and ties.
        let mut feats = Vec::new();
        for i in 0..60i64 {
            feats.push(pt(&format!("t{:02}", i), (i * 7) % 83, (i * 13) % 59));
        }
        let targets = SpatialRelation::from_features(feats);
        let probes = SpatialRelation::from_features([
            pt("a", 0, 0),
            pt("b", 40, 30),
            pt("c", 83, 59),
        ]);
        for k in [1usize, 3, 7, 60, 100] {
            let exact = k_nearest(&probes, &targets, k);
            let indexed = k_nearest_indexed(&probes, &targets, k);
            assert_eq!(exact, indexed, "k = {}", k);
        }
        assert!(k_nearest_indexed(&probes, &targets, 0).is_empty());
        let empty = SpatialRelation::new();
        assert!(k_nearest_indexed(&probes, &empty, 3).is_empty());
    }

    #[test]
    fn within_distance_selection() {
        let rel = cities();
        let probe = Geometry::Point(p(0, 0));
        let ids = within_distance(&rel, &probe, &Rat::from_int(5));
        assert_eq!(ids, vec!["c0", "c1", "c2"]);
    }

    #[test]
    fn whole_feature_output_is_finite_and_constraint_free() {
        // The §4 safety argument in executable form: the result of a
        // whole-feature operator is a plain finite list of id pairs — a
        // traditional relation — regardless of the inputs' infinite
        // semantics.
        let (pairs, _) = buffer_join(&roads(), &cities(), &Rat::from_int(100));
        assert_eq!(pairs.len(), roads().len() * cities().len());
    }
}
