//! The five §5.4 experiments, as reusable functions.
//!
//! Each experiment builds the two §5.4 index configurations over the same
//! data and replays the same queries against both, recording the paper's
//! metric: the number of disk (node) accesses per query.

use crate::workload::{self, Box2};
use cqa::index::strategy::{BoxQuery, IndexStrategy, JointIndex, SeparateIndices};
use cqa::index::RStarParams;

/// Which §5.4 data variant an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataKind {
    /// Constraint attributes: extents are proper boxes (experiments *-A).
    Constraint,
    /// Relational attributes: extents are points (experiments *-B).
    Relational,
}

impl DataKind {
    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DataKind::Constraint => "constraint",
            DataKind::Relational => "relational",
        }
    }

    fn data(self, seed: u64) -> Vec<Box2> {
        match self {
            DataKind::Constraint => workload::constraint_data(seed),
            DataKind::Relational => workload::relational_data(seed),
        }
    }
}

/// One measured query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Query area (two-attribute experiments) or length (one-attribute).
    pub size: f64,
    /// Disk accesses with the joint 2-D index.
    pub joint: u64,
    /// Disk accesses with separate 1-D indexes (subquery sum).
    pub separate: u64,
    /// Number of matching tuples (identical under both strategies).
    pub matches: usize,
}

/// Node fan-out used by the experiments.
///
/// The paper's Figures 4 and 5 report disk-access counts in the tens to
/// hundreds for 10,000 tuples, which implies a node capacity far below
/// what a modern 4 KiB page holds — consistent with the 2003-era Java
/// implementation's object-header-laden entries. We calibrate to that
/// regime so the *shape* comparison is meaningful; rerun with
/// [`RStarParams::fitting_page`] to see the modern-page variant (the
/// directions of all findings are unchanged, only the magnitudes move).
pub const EXPERIMENT_FANOUT: usize = 20;

/// Builds both index configurations over the same data.
pub fn build_strategies(data: &[Box2]) -> (JointIndex, SeparateIndices) {
    let params = RStarParams::with_max(EXPERIMENT_FANOUT);
    let mut joint = JointIndex::new(params, workload::WORLD);
    let mut separate = SeparateIndices::new(params);
    for (i, b) in data.iter().enumerate() {
        joint.insert(b.x, b.y, i as u64);
        separate.insert(b.x, b.y, i as u64);
    }
    (joint, separate)
}

fn run_queries(
    joint: &JointIndex,
    separate: &SeparateIndices,
    queries: impl IntoIterator<Item = (f64, BoxQuery)>,
) -> Vec<Measurement> {
    queries
        .into_iter()
        .map(|(size, q)| {
            let a = joint.query(&q);
            let b = separate.query(&q);
            assert_eq!(a.ids, b.ids, "strategies must agree on answers");
            Measurement { size, joint: a.accesses, separate: b.accesses, matches: a.ids.len() }
        })
        .collect()
}

/// Experiments 1-A / 1-B (Figure 4): queries involve both attributes.
pub fn experiment_two_attributes(kind: DataKind, seed: u64) -> Vec<Measurement> {
    let data = kind.data(seed);
    let (joint, separate) = build_strategies(&data);
    let qs = workload::queries(seed ^ 0x5EED, workload::NUM_QUERIES);
    run_queries(
        &joint,
        &separate,
        qs.iter().map(|q| (q.area(), BoxQuery::both(q.x, q.y))),
    )
}

/// Experiments 2-A / 2-B (Figure 5): queries involve one attribute
/// (alternating x and y, as the queries are i.i.d. either is fine).
pub fn experiment_one_attribute(kind: DataKind, seed: u64) -> Vec<Measurement> {
    let data = kind.data(seed);
    let (joint, separate) = build_strategies(&data);
    let qs = workload::queries(seed ^ 0x0111, workload::NUM_QUERIES);
    run_queries(
        &joint,
        &separate,
        qs.iter().enumerate().map(|(i, q)| {
            if i % 2 == 0 {
                (q.x_len(), BoxQuery::x_only(q.x))
            } else {
                (q.y_len(), BoxQuery::y_only(q.y))
            }
        }),
    )
}

/// Experiment 3 (reconstructed; see DESIGN.md): 500 mixed queries — half
/// constrain both attributes, a quarter x only, a quarter y only.
pub fn experiment_mixed(kind: DataKind, seed: u64) -> Vec<Measurement> {
    let data = kind.data(seed);
    let (joint, separate) = build_strategies(&data);
    let qs = workload::queries(seed ^ 0x3333, workload::NUM_QUERIES_EXPT3);
    run_queries(
        &joint,
        &separate,
        qs.iter().enumerate().map(|(i, q)| match i % 4 {
            0 | 1 => (q.area(), BoxQuery::both(q.x, q.y)),
            2 => (q.x_len(), BoxQuery::x_only(q.x)),
            _ => (q.y_len(), BoxQuery::y_only(q.y)),
        }),
    )
}

/// The §5.3 scenario: two predicates that are individually unselective
/// (each admits about half the tuples) but jointly admit almost none.
/// Returns `(joint accesses, separate accesses, total tuples)` for the
/// conjunctive query.
pub fn selectivity_scenario(n: usize) -> (u64, u64, usize) {
    let mut joint = JointIndex::new(RStarParams::fitting_page(2), (0.0, n as f64));
    let mut separate = SeparateIndices::new(RStarParams::fitting_page(1));
    let len = n as f64;
    // Half the tuples hug the y-axis (x small, y anywhere), half hug the
    // x-axis; so "x < a" admits ~half and "y < b" admits ~half, but the
    // conjunction admits only the corner.
    for i in 0..n as u64 {
        let t = (i as f64) % len;
        joint.insert((0.0, 1.0), (t, t + 1.0), i);
        separate.insert((0.0, 1.0), (t, t + 1.0), i);
        joint.insert((t, t + 1.0), (0.0, 1.0), n as u64 + i);
        separate.insert((t, t + 1.0), (0.0, 1.0), n as u64 + i);
    }
    let q = BoxQuery::both((0.0, 2.0), (0.0, 2.0));
    let a = joint.query(&q);
    let b = separate.query(&q);
    assert_eq!(a.ids, b.ids);
    (a.accesses, b.accesses, 2 * n)
}

/// Summary statistics over measurements, bucketed by size for the figures.
pub struct Summary {
    /// `(bucket upper bound, mean joint accesses, mean separate accesses, count)`.
    pub buckets: Vec<(f64, f64, f64, usize)>,
    /// Mean accesses over all queries (joint, separate).
    pub means: (f64, f64),
}

/// Buckets measurements by size into `nbuckets` equal-width bins.
pub fn summarize(measurements: &[Measurement], nbuckets: usize) -> Summary {
    let max = measurements.iter().map(|m| m.size).fold(0.0f64, f64::max);
    let width = (max / nbuckets as f64).max(f64::MIN_POSITIVE);
    let mut acc = vec![(0u64, 0u64, 0usize); nbuckets];
    for m in measurements {
        let idx = ((m.size / width) as usize).min(nbuckets - 1);
        acc[idx].0 += m.joint;
        acc[idx].1 += m.separate;
        acc[idx].2 += 1;
    }
    let buckets = acc
        .into_iter()
        .enumerate()
        .map(|(i, (j, s, c))| {
            let denom = c.max(1) as f64;
            ((i as f64 + 1.0) * width, j as f64 / denom, s as f64 / denom, c)
        })
        .collect();
    let total_j: u64 = measurements.iter().map(|m| m.joint).sum();
    let total_s: u64 = measurements.iter().map(|m| m.separate).sum();
    let n = measurements.len().max(1) as f64;
    Summary { buckets, means: (total_j as f64 / n, total_s as f64 / n) }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 4 shape: joint beats separate for two-attribute queries.
    #[test]
    fn figure4_shape_holds() {
        for kind in [DataKind::Constraint, DataKind::Relational] {
            let ms = experiment_two_attributes(kind, 42);
            let s = summarize(&ms, 5);
            assert!(
                s.means.0 < s.means.1,
                "{}: joint mean {} must beat separate mean {}",
                kind.label(),
                s.means.0,
                s.means.1
            );
        }
    }

    /// Figure 5 shape: separate beats joint for one-attribute queries, by
    /// less than the Figure 4 margin.
    #[test]
    fn figure5_shape_holds() {
        let mut ratios = Vec::new();
        for kind in [DataKind::Constraint, DataKind::Relational] {
            let ms = experiment_one_attribute(kind, 42);
            let s = summarize(&ms, 5);
            assert!(
                s.means.1 < s.means.0,
                "{}: separate mean {} must beat joint mean {}",
                kind.label(),
                s.means.1,
                s.means.0
            );
            ratios.push(s.means.0 / s.means.1);
        }
        // "this advantage is not as significant as the advantage of joint
        // indices when queries use both attributes"
        let ms4 = experiment_two_attributes(DataKind::Constraint, 42);
        let s4 = summarize(&ms4, 5);
        let fig4_ratio = s4.means.1 / s4.means.0;
        for r in ratios {
            assert!(r < fig4_ratio, "one-attr advantage {} < two-attr advantage {}", r, fig4_ratio);
        }
    }

    /// §5.3: the low-selectivity conjunction turns linear into logarithmic.
    #[test]
    fn selectivity_scenario_shape() {
        let (joint, separate, n) = selectivity_scenario(2000);
        assert!(joint * 10 < separate, "joint {} vs separate {}", joint, separate);
        // Joint stays near the tree height; separate scans a constant
        // fraction of the leaves.
        assert!((joint as usize) < n / 100);
    }

    #[test]
    fn strategies_always_agree() {
        // The assertion inside run_queries checks answer equality; this
        // test just exercises it on the mixed workload.
        let ms = experiment_mixed(DataKind::Constraint, 7);
        assert_eq!(ms.len(), workload::NUM_QUERIES_EXPT3);
    }
}
