//! The dense-order-with-constants constraint class.
//!
//! §2.3 of the paper stresses that the CDB framework "encompasses all
//! classes of constraints" with a decidable theory — Definition 3 names the
//! theory of dense order with constants (Ferrante–Geiser, the paper's \[8\])
//! alongside the reals. This module implements that class as a *sublanguage*
//! of the rational linear class: atoms are `u ⊲ v` where `u, v` are
//! variables or constants and `⊲ ∈ {<, ≤, =}`.
//!
//! The class is closed under the algebra's operations: Fourier–Motzkin
//! combination of two order atoms is again an order atom (chaining
//! `x ≤ y ≤ z` gives `x ≤ z`), so projection never leaves the class. The
//! [`OrderConjunction::eliminate`] implementation *checks* this closure on
//! every output atom, making the closure principle of §2.5 an executable
//! invariant rather than a proof obligation.

use crate::atom::{Atom, Rel};
use crate::conj::Conjunction;
use crate::linexpr::LinExpr;
use crate::var::Var;
use cqa_num::Rat;
use std::fmt;

/// One side of a dense-order atom: a variable or a rational constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant.
    Const(Rat),
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{}", v),
            Term::Const(c) => write!(f, "{}", c),
        }
    }
}

/// An atomic dense-order constraint `lhs rel rhs`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OrderAtom {
    /// Left term.
    pub lhs: Term,
    /// One of `<`, `≤`, `=` (as [`Rel::Lt`], [`Rel::Le`], [`Rel::Eq`]).
    pub rel: Rel,
    /// Right term.
    pub rhs: Term,
}

/// Error returned when a linear atom falls outside the dense-order class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotInClass {
    /// Human-readable rendering of the offending atom.
    pub atom: String,
}

impl fmt::Display for NotInClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "atom outside the dense-order class: {}", self.atom)
    }
}

impl std::error::Error for NotInClass {}

impl OrderAtom {
    /// `lhs < rhs`.
    pub fn lt(lhs: Term, rhs: Term) -> OrderAtom {
        OrderAtom { lhs, rel: Rel::Lt, rhs }
    }

    /// `lhs ≤ rhs`.
    pub fn le(lhs: Term, rhs: Term) -> OrderAtom {
        OrderAtom { lhs, rel: Rel::Le, rhs }
    }

    /// `lhs = rhs`.
    pub fn eq(lhs: Term, rhs: Term) -> OrderAtom {
        OrderAtom { lhs, rel: Rel::Eq, rhs }
    }

    /// Embeds the atom into the linear class.
    pub fn to_linear(&self) -> Atom {
        let side = |t: &Term| match t {
            Term::Var(v) => LinExpr::var(*v),
            Term::Const(c) => LinExpr::constant(c.clone()),
        };
        match self.rel {
            Rel::Lt => Atom::lt(side(&self.lhs), side(&self.rhs)),
            Rel::Le => Atom::le(side(&self.lhs), side(&self.rhs)),
            Rel::Eq => Atom::eq(side(&self.lhs), side(&self.rhs)),
        }
    }

    /// Recognizes a linear atom as a dense-order atom, if it is one.
    ///
    /// A linear atom is in the class when its expression is `±x ∓ y + c = 0`
    /// with `c = 0`, or `±x + c rel 0` — i.e. at most two variables, unit
    /// coefficients of opposite sign, and no constant when two variables
    /// are present.
    pub fn from_linear(atom: &Atom) -> Result<OrderAtom, NotInClass> {
        let err = || NotInClass { atom: atom.to_string() };
        let e = atom.expr();
        let terms: Vec<(Var, Rat)> = e.terms().map(|(v, c)| (v, c.clone())).collect();
        let one = Rat::one();
        let minus_one = -Rat::one();
        match terms.as_slice() {
            [] => Err(err()),
            [(v, c)] if *c == one => {
                // x + k rel 0  ⇔  x rel -k
                Ok(OrderAtom {
                    lhs: Term::Var(*v),
                    rel: atom.rel(),
                    rhs: Term::Const(-e.constant_term()),
                })
            }
            [(v, c)] if *c == minus_one => {
                // -x + k rel 0  ⇔  k rel x
                Ok(OrderAtom {
                    lhs: Term::Const(e.constant_term().clone()),
                    rel: atom.rel(),
                    rhs: Term::Var(*v),
                })
            }
            [(v1, c1), (v2, c2)] if e.constant_term().is_zero() => {
                if *c1 == one && *c2 == minus_one {
                    // x - y rel 0 ⇔ x rel y
                    Ok(OrderAtom { lhs: Term::Var(*v1), rel: atom.rel(), rhs: Term::Var(*v2) })
                } else if *c1 == minus_one && *c2 == one {
                    Ok(OrderAtom { lhs: Term::Var(*v2), rel: atom.rel(), rhs: Term::Var(*v1) })
                } else {
                    Err(err())
                }
            }
            _ => Err(err()),
        }
    }
}

impl fmt::Display for OrderAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.rel, self.rhs)
    }
}

/// A conjunction of dense-order atoms.
///
/// Delegates reasoning to the linear engine but verifies that every result
/// stays within the class — an executable form of the closure requirement.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OrderConjunction {
    atoms: Vec<OrderAtom>,
}

impl OrderConjunction {
    /// Builds from atoms.
    pub fn from_atoms(atoms: impl IntoIterator<Item = OrderAtom>) -> OrderConjunction {
        OrderConjunction { atoms: atoms.into_iter().collect() }
    }

    /// The atoms.
    pub fn atoms(&self) -> &[OrderAtom] {
        &self.atoms
    }

    /// Embeds into the linear class.
    pub fn to_linear(&self) -> Conjunction {
        Conjunction::from_atoms(self.atoms.iter().map(|a| a.to_linear()))
    }

    /// Satisfiability over a dense order (equivalently, over the rationals).
    pub fn is_satisfiable(&self) -> bool {
        self.to_linear().is_satisfiable()
    }

    /// Quantifier elimination within the class. Returns an error if a
    /// result atom leaves the class — which the closure property guarantees
    /// cannot happen; the check makes the guarantee executable.
    pub fn eliminate(&self, vars: impl IntoIterator<Item = Var>) -> Result<OrderConjunction, NotInClass> {
        let lin = self.to_linear().eliminate(vars);
        if lin.is_trivially_false() {
            // `false` is representable in any class with constants: 1 < 0 is
            // not an order atom between distinct terms, so use 1 < 1.
            return Ok(OrderConjunction::from_atoms([OrderAtom::lt(
                Term::Const(Rat::one()),
                Term::Const(Rat::one()),
            )]));
        }
        let mut out = Vec::new();
        for atom in lin.atoms() {
            out.push(OrderAtom::from_linear(atom)?);
        }
        Ok(OrderConjunction { atoms: out })
    }
}

impl fmt::Display for OrderConjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return f.write_str("true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                f.write_str(" and ")?;
            }
            write!(f, "{}", a)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }
    fn c(n: i64) -> Term {
        Term::Const(Rat::from_int(n))
    }

    #[test]
    fn roundtrip_through_linear() {
        let atoms = vec![
            OrderAtom::lt(v(0), v(1)),
            OrderAtom::le(v(1), c(5)),
            OrderAtom::eq(v(2), c(3)),
            OrderAtom::lt(c(0), v(0)),
        ];
        for a in atoms {
            let lin = a.to_linear();
            let back = OrderAtom::from_linear(&lin).unwrap();
            // Equations may flip but semantics must be preserved.
            assert_eq!(back.to_linear(), lin, "{} vs {}", a, back);
        }
    }

    #[test]
    fn rejects_out_of_class() {
        let a = Atom::le(
            LinExpr::from_terms([(Var(0), Rat::from_int(2))], Rat::zero()),
            LinExpr::constant_int(3),
        );
        assert!(OrderAtom::from_linear(&a).is_err());
        let b = Atom::le(
            LinExpr::from_terms(
                [(Var(0), Rat::one()), (Var(1), Rat::one())],
                Rat::zero(),
            ),
            LinExpr::constant_int(0),
        );
        assert!(OrderAtom::from_linear(&b).is_err());
    }

    #[test]
    fn satisfiability() {
        let sat = OrderConjunction::from_atoms([
            OrderAtom::lt(v(0), v(1)),
            OrderAtom::lt(v(1), v(2)),
            OrderAtom::lt(c(0), v(0)),
            OrderAtom::lt(v(2), c(1)),
        ]);
        assert!(sat.is_satisfiable()); // density: room between 0 and 1
        let unsat = OrderConjunction::from_atoms([
            OrderAtom::lt(v(0), v(1)),
            OrderAtom::lt(v(1), v(0)),
        ]);
        assert!(!unsat.is_satisfiable());
    }

    #[test]
    fn elimination_stays_in_class() {
        // x < y ∧ y < z  ⇒ ∃y: x < z
        let conj = OrderConjunction::from_atoms([
            OrderAtom::lt(v(0), v(1)),
            OrderAtom::lt(v(1), v(2)),
        ]);
        let out = conj.eliminate([Var(1)]).unwrap();
        assert_eq!(out.atoms(), &[OrderAtom::lt(v(0), v(2))]);
    }

    #[test]
    fn elimination_with_constants() {
        // 3 ≤ y ∧ y < x ∧ x = z ⇒ ∃x: 3 ≤ y ∧ y < z  (via substitution)
        let conj = OrderConjunction::from_atoms([
            OrderAtom::le(c(3), v(1)),
            OrderAtom::lt(v(1), v(0)),
            OrderAtom::eq(v(0), v(2)),
        ]);
        let out = conj.eliminate([Var(0)]).unwrap();
        assert!(out.is_satisfiable());
        let lin = out.to_linear();
        // Check semantics: y < z and 3 ≤ y must be implied.
        assert!(lin.implies_atom(&OrderAtom::lt(v(1), v(2)).to_linear()));
        assert!(lin.implies_atom(&OrderAtom::le(c(3), v(1)).to_linear()));
    }

    #[test]
    fn unsat_elimination_representable() {
        let conj = OrderConjunction::from_atoms([
            OrderAtom::lt(v(0), c(0)),
            OrderAtom::lt(c(1), v(0)),
        ]);
        let out = conj.eliminate([Var(0)]).unwrap();
        assert!(!out.is_satisfiable());
    }

    #[test]
    fn display() {
        let a = OrderAtom::lt(v(0), c(2));
        assert_eq!(a.to_string(), "v0 < 2");
        assert_eq!(OrderConjunction::default().to_string(), "true");
    }
}
