//! Spatial constraint relations (§4.2 of the paper).
//!
//! A *spatial constraint relation* is a relation whose only non-spatial
//! attribute is the feature ID; the spatial extent is kept per feature. An
//! R\*-tree over feature bounding boxes provides the filter step for the
//! whole-feature operators.

use crate::feature::{Feature, Geometry};
use cqa_index::{RStarParams, RStarTree, Rect};

/// A collection of identified spatial features with a bounding-box index.
pub struct SpatialRelation {
    features: Vec<Feature>,
    index: RStarTree<2, u64>,
}

impl SpatialRelation {
    /// An empty relation.
    pub fn new() -> SpatialRelation {
        SpatialRelation {
            features: Vec::new(),
            index: RStarTree::new(RStarParams::fitting_page(2)),
        }
    }

    /// Builds a relation from features.
    pub fn from_features(features: impl IntoIterator<Item = Feature>) -> SpatialRelation {
        let mut rel = SpatialRelation::new();
        for f in features {
            rel.insert(f);
        }
        rel
    }

    /// Adds a feature.
    pub fn insert(&mut self, feature: Feature) {
        let (lo, hi) = feature.geom.bbox_f64();
        let id = self.features.len() as u64;
        self.features.push(feature);
        self.index.insert(Rect::new(lo, hi), id);
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the relation has no features.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// The features in insertion order.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// A feature by internal index.
    pub fn get(&self, idx: usize) -> &Feature {
        &self.features[idx]
    }

    /// Looks a feature up by its id string.
    pub fn by_id(&self, id: &str) -> Option<&Feature> {
        self.features.iter().find(|f| f.id == id)
    }

    /// Internal indexes of features whose bounding box intersects `rect`
    /// (filter step), plus the node accesses spent.
    pub fn candidates(&self, rect: &Rect<2>) -> (Vec<usize>, u64) {
        let (ids, acc) = self.index.search_with_stats(rect);
        (ids.into_iter().map(|i| i as usize).collect(), acc)
    }

    /// The geometries, for direct vector-model evaluation (§6).
    pub fn geometries(&self) -> impl Iterator<Item = (&str, &Geometry)> + '_ {
        self.features.iter().map(|f| (f.id.as_str(), &f.geom))
    }
}

impl Default for SpatialRelation {
    fn default() -> Self {
        SpatialRelation::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;

    fn pt_feature(id: &str, x: i64, y: i64) -> Feature {
        Feature::new(id, Geometry::Point(Point::from_ints(x, y)))
    }

    #[test]
    fn insert_lookup_candidates() {
        let rel = SpatialRelation::from_features([
            pt_feature("a", 0, 0),
            pt_feature("b", 10, 10),
            pt_feature("c", 20, 20),
        ]);
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.by_id("b").unwrap().id, "b");
        assert!(rel.by_id("zz").is_none());
        let (cands, acc) = rel.candidates(&Rect::new([-1.0, -1.0], [11.0, 11.0]));
        assert_eq!(cands.len(), 2);
        assert!(acc >= 1);
    }
}
