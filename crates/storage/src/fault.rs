//! Deterministic fault injection for the storage layer.
//!
//! [`FaultyDisk`] decorates any [`DiskManager`] and injects three kinds of
//! storage fault, each drawn from a seeded in-tree PCG32 stream so every
//! run of a given seed observes the identical fault schedule:
//!
//! * **I/O errors** — a read or write fails with [`StorageError::Io`]
//!   before touching the inner disk. These model *transient* failures:
//!   retrying the operation redraws from the stream, which is exactly the
//!   behavior the buffer pool's bounded retry-with-backoff is built for.
//! * **Torn writes** — a write persists only a sector-aligned prefix of
//!   the new bytes (the tail keeps the previous page contents) and then
//!   reports success, like a power cut mid-write. Detection is the page
//!   checksum's job on a later read.
//! * **Bit flips** — a read returns the page with one random bit flipped
//!   (the bytes on the inner disk stay intact), modeling bus/DRAM
//!   corruption. A checksummed pool heals this by rereading.
//!
//! The decorator never panics and never misreports: every injected fault
//! either surfaces as a typed error immediately (I/O error) or is left for
//! the integrity machinery above to detect (torn write, bit flip).

use crate::disk::DiskManager;
use crate::page::{PageId, PAGE_SIZE};
use crate::{Result, StorageError};
use cqa_num::prng::Pcg32;

/// Torn writes cut at multiples of this many bytes, mimicking a disk that
/// persists whole 512-byte sectors atomically. The cut is always ≥ one
/// sector, so the page header (and its checksum field) is from the *new*
/// write while the tail is stale — the mismatch a CRC catches.
const SECTOR: usize = 512;

/// Per-kind injection probabilities and the stream seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault schedule; equal seeds give equal schedules.
    pub seed: u64,
    /// Probability that a read or write fails with an injected I/O error.
    pub io_error_rate: f64,
    /// Probability that a write persists only a sector-aligned prefix.
    pub torn_write_rate: f64,
    /// Probability that a read returns the page with one bit flipped.
    pub bit_flip_rate: f64,
}

impl FaultConfig {
    /// A schedule that never fires (useful as a control).
    pub fn none(seed: u64) -> FaultConfig {
        FaultConfig { seed, io_error_rate: 0.0, torn_write_rate: 0.0, bit_flip_rate: 0.0 }
    }

    /// A schedule injecting only `kind` at probability `rate`.
    pub fn only(seed: u64, kind: FaultKind, rate: f64) -> FaultConfig {
        let mut cfg = FaultConfig::none(seed);
        match kind {
            FaultKind::IoError => cfg.io_error_rate = rate,
            FaultKind::TornWrite => cfg.torn_write_rate = rate,
            FaultKind::BitFlip => cfg.bit_flip_rate = rate,
        }
        cfg
    }
}

/// The kinds of fault [`FaultyDisk`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Transient read/write failure ([`StorageError::Io`]).
    IoError,
    /// A write that persists only a sector-aligned prefix.
    TornWrite,
    /// A read that returns one flipped bit.
    BitFlip,
}

/// How many faults of each kind have been injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Injected I/O errors (reads and writes).
    pub io_errors: u64,
    /// Writes torn at a sector boundary.
    pub torn_writes: u64,
    /// Reads returned with a flipped bit.
    pub bit_flips: u64,
}

impl FaultCounts {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.io_errors + self.torn_writes + self.bit_flips
    }
}

/// A [`DiskManager`] decorator injecting deterministic, seeded faults.
pub struct FaultyDisk<D: DiskManager> {
    inner: D,
    rng: Pcg32,
    config: FaultConfig,
    counts: FaultCounts,
}

impl<D: DiskManager> FaultyDisk<D> {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: D, config: FaultConfig) -> FaultyDisk<D> {
        FaultyDisk {
            inner,
            rng: Pcg32::seed_from_u64(config.seed),
            config,
            counts: FaultCounts::default(),
        }
    }

    /// Faults injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// The wrapped disk.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Unwraps, discarding the fault schedule.
    pub fn into_inner(self) -> D {
        self.inner
    }

    fn injected_io_error(&mut self, op: &'static str) -> StorageError {
        self.counts.io_errors += 1;
        StorageError::Io(std::io::Error::new(
            std::io::ErrorKind::Other,
            format!("injected {} fault", op),
        ))
    }

    /// Draws one fault decision. Zero-rate kinds consume no randomness, so
    /// a schedule's draws depend only on the kinds actually enabled.
    fn draw(&mut self, rate: f64) -> bool {
        rate > 0.0 && self.rng.gen_bool(rate)
    }
}

impl<D: DiskManager> DiskManager for FaultyDisk<D> {
    /// Allocation is never faulted: the schedule targets the steady-state
    /// read/write path, and keeping allocation infallible keeps page ids
    /// identical across every (seed, rate) cell of a fault matrix.
    fn allocate(&mut self) -> Result<PageId> {
        self.inner.allocate()
    }

    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if self.draw(self.config.io_error_rate) {
            return Err(self.injected_io_error("read"));
        }
        self.inner.read(id, buf)?;
        if self.draw(self.config.bit_flip_rate) {
            let bit = self.rng.gen_below_usize(buf.len() * 8);
            buf[bit / 8] ^= 1 << (bit % 8);
            self.counts.bit_flips += 1;
        }
        Ok(())
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        if self.draw(self.config.io_error_rate) {
            return Err(self.injected_io_error("write"));
        }
        if self.draw(self.config.torn_write_rate) && buf.len() == PAGE_SIZE {
            // Persist a sector-aligned prefix of the new bytes over the
            // old page, then report success — the lie a power cut tells.
            let sectors = PAGE_SIZE / SECTOR;
            let cut = SECTOR * (1 + self.rng.gen_below_usize(sectors - 1));
            let mut torn = vec![0u8; PAGE_SIZE];
            self.inner.read(id, &mut torn)?;
            torn[..cut].copy_from_slice(&buf[..cut]);
            self.inner.write(id, &torn)?;
            self.counts.torn_writes += 1;
            return Ok(());
        }
        self.inner.write(id, buf)
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::disk::MemDisk;
    use crate::page::SlottedPage;

    fn filled_page() -> Vec<u8> {
        let mut data = vec![0u8; PAGE_SIZE];
        SlottedPage::init(&mut data);
        SlottedPage::new(&mut data).insert(&[7u8; 3000]).unwrap();
        data
    }

    #[test]
    fn zero_rates_are_a_passthrough() {
        let mut disk = FaultyDisk::new(MemDisk::new(), FaultConfig::none(1));
        let id = disk.allocate().unwrap();
        let page = filled_page();
        disk.write(id, &page).unwrap();
        let mut back = vec![0u8; PAGE_SIZE];
        disk.read(id, &mut back).unwrap();
        assert_eq!(page, back);
        assert_eq!(disk.counts(), FaultCounts::default());
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed| {
            let cfg = FaultConfig { seed, io_error_rate: 0.3, torn_write_rate: 0.3, bit_flip_rate: 0.3 };
            let mut disk = FaultyDisk::new(MemDisk::new(), cfg);
            let id = disk.allocate().unwrap();
            let page = filled_page();
            let mut log = Vec::new();
            for _ in 0..50 {
                log.push(disk.write(id, &page).is_ok());
                let mut buf = vec![0u8; PAGE_SIZE];
                log.push(disk.read(id, &mut buf).is_ok());
            }
            (log, disk.counts())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds diverge");
    }

    #[test]
    fn io_errors_are_typed_and_counted() {
        let cfg = FaultConfig::only(7, FaultKind::IoError, 1.0);
        let mut disk = FaultyDisk::new(MemDisk::new(), cfg);
        let id = disk.allocate().unwrap();
        assert!(matches!(disk.write(id, &filled_page()), Err(StorageError::Io(_))));
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(matches!(disk.read(id, &mut buf), Err(StorageError::Io(_))));
        assert_eq!(disk.counts().io_errors, 2);
    }

    #[test]
    fn torn_write_detected_by_checksummed_pool() {
        let cfg = FaultConfig::only(5, FaultKind::TornWrite, 1.0);
        let mut pool = BufferPool::new(FaultyDisk::new(MemDisk::new(), cfg), 1).with_checksums();
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        // The page differs from its on-disk state (zeros) in the very last
        // byte, so every sector-aligned cut leaves a stale tail the seal's
        // CRC cannot match.
        pool.with_page_mut(a, |p| {
            SlottedPage::init(p);
            p[PAGE_SIZE - 1] = 0xAB;
        })
        .unwrap();
        pool.flush().unwrap(); // torn: prefix new, tail stale
        pool.with_page(b, |_| ()).unwrap(); // evict a (capacity 1)
        let got = pool.with_page(a, |_| ());
        match got {
            Err(StorageError::Corrupt { page, .. }) => assert_eq!(page, Some(a)),
            other => panic!("expected checksum mismatch, got {:?}", other),
        }
        assert!(pool.disk().counts().torn_writes >= 1);
        assert!(pool.stats().corrupt_rereads >= 1, "pool reread before failing");
    }

    #[test]
    fn bit_flips_heal_or_fail_typed_never_silently_corrupt() {
        // Read-side flips poison only the returned bytes; a checksummed
        // pool must either heal them by rereading or fail with a typed
        // error — never hand back a corrupt record. Sweep seeds so the
        // test does not depend on the draw layout of one schedule.
        let mut heals = 0u32;
        for seed in 0..40u64 {
            let mut cfg = FaultConfig::none(seed);
            cfg.bit_flip_rate = 0.5;
            let mut pool =
                BufferPool::new(FaultyDisk::new(MemDisk::new(), cfg), 1).with_checksums();
            let a = pool.allocate().unwrap();
            let b = pool.allocate().unwrap();
            pool.with_page_mut(a, |p| {
                SlottedPage::init(p);
                SlottedPage::new(p).insert(&[9u8; 2000]).unwrap();
            })
            .unwrap();
            pool.flush().unwrap();
            pool.with_page(b, |_| ()).unwrap(); // evict a
            match pool.with_page(a, |p| {
                let mut buf = p.to_vec();
                SlottedPage::new(&mut buf).get(0).map(|r| r.to_vec())
            }) {
                Ok(rec) => {
                    assert_eq!(
                        rec.as_deref(),
                        Some(&[9u8; 2000][..]),
                        "seed {}: accepted read must be intact",
                        seed
                    );
                    if pool.stats().corrupt_rereads > 0 {
                        heals += 1;
                    }
                }
                Err(StorageError::Corrupt { page, .. }) => assert_eq!(page, Some(a)),
                Err(other) => panic!("seed {}: unexpected error {:?}", seed, other),
            }
        }
        assert!(heals > 0, "at least one schedule exercises the heal path");
    }
}
