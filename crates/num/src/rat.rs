//! Exact rational numbers.
//!
//! A [`Rat`] is always kept in canonical form: numerator and denominator
//! share no common factor, the denominator is strictly positive, and zero is
//! `0/1`. Canonical form makes the derived `Eq`/`Hash` structural equality
//! coincide with numeric equality, so rationals can key hash maps directly.

use crate::bigint::{BigInt, Sign};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number with arbitrary-precision components.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    num: BigInt,
    /// Strictly positive and coprime with `num`.
    den: BigInt,
}

/// Error returned when parsing a [`Rat`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatError {
    /// The offending input.
    pub input: String,
}

impl fmt::Display for ParseRatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {:?}", self.input)
    }
}

impl std::error::Error for ParseRatError {}

impl Rat {
    /// Builds `num / den` in canonical form.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Rat {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return Rat::zero();
        }
        let g = num.gcd(&den);
        let (mut num, mut den) = (&num / &g, &den / &g);
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        Rat { num, den }
    }

    /// The rational zero.
    pub fn zero() -> Rat {
        Rat { num: BigInt::zero(), den: BigInt::one() }
    }

    /// The rational one.
    pub fn one() -> Rat {
        Rat { num: BigInt::one(), den: BigInt::one() }
    }

    /// An integer-valued rational.
    pub fn from_int(v: i64) -> Rat {
        Rat { num: BigInt::from(v), den: BigInt::one() }
    }

    /// `p / q` from machine integers.
    ///
    /// # Panics
    /// Panics if `q` is zero.
    pub fn from_pair(p: i64, q: i64) -> Rat {
        Rat::new(BigInt::from(p), BigInt::from(q))
    }

    /// Parses a decimal literal such as `"3"`, `"-2.75"`, or `".5"`.
    pub fn from_decimal_str(s: &str) -> Result<Rat, ParseRatError> {
        let err = || ParseRatError { input: s.to_string() };
        let (sign, body) = match s.as_bytes().first() {
            Some(b'-') => (-1i64, &s[1..]),
            Some(b'+') => (1, &s[1..]),
            _ => (1, s),
        };
        let (int_part, frac_part) = match body.split_once('.') {
            Some((i, f)) => (i, f),
            None => (body, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(err());
        }
        let digits_ok = |d: &str| d.bytes().all(|b| b.is_ascii_digit());
        if !digits_ok(int_part) || !digits_ok(frac_part) {
            return Err(err());
        }
        let joined = format!("{}{}", int_part, frac_part);
        let num: BigInt = if joined.is_empty() {
            BigInt::zero()
        } else {
            joined.parse().map_err(|_| err())?
        };
        let den = BigInt::from(10i64).pow(frac_part.len() as u32);
        Ok(Rat::new(BigInt::from(sign) * num, den))
    }

    /// The numerator (canonical form).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The denominator (canonical form, strictly positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Whether this value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Whether this value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Whether this value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Whether this value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        self.num.sign()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat { num: self.num.abs(), den: self.den.clone() }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rat::new(self.den.clone(), self.num.clone())
    }

    /// Largest integer not greater than `self`.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.divrem(&self.den);
        if r.is_negative() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Smallest integer not less than `self`.
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.num.divrem(&self.den);
        if r.is_positive() {
            q + BigInt::one()
        } else {
            q
        }
    }

    /// Best-effort `f64` approximation.
    pub fn to_f64(&self) -> f64 {
        // Scale both components down together so huge magnitudes still give
        // a finite quotient.
        let nb = self.num.bits();
        let db = self.den.bits();
        if nb <= 900 && db <= 900 {
            return self.num.to_f64() / self.den.to_f64();
        }
        let shift = (nb.max(db) - 512) as u32;
        let n = (&self.num / &BigInt::one().shl(shift)).to_f64();
        let d = (&self.den / &BigInt::one().shl(shift)).to_f64();
        n / d
    }

    /// Renders as a decimal string with at most `max_frac` fraction
    /// digits. The second component is `true` when the rendering is exact
    /// (the expansion terminates within the limit); otherwise the result
    /// is truncated toward zero.
    pub fn to_decimal(&self, max_frac: usize) -> (String, bool) {
        let negative = self.is_negative();
        let num = self.num.abs();
        let (int_part, mut rem) = num.divrem(&self.den);
        let mut digits = String::new();
        let ten = BigInt::from(10i64);
        for _ in 0..max_frac {
            if rem.is_zero() {
                break;
            }
            rem = &rem * &ten;
            let (d, r) = rem.divrem(&self.den);
            digits.push_str(&d.to_string());
            rem = r;
        }
        let exact = rem.is_zero();
        // Trim trailing zeros in the fraction.
        while digits.ends_with('0') {
            digits.pop();
        }
        let mut out = String::new();
        if negative && (!int_part.is_zero() || !digits.is_empty()) {
            out.push('-');
        }
        out.push_str(&int_part.to_string());
        if !digits.is_empty() {
            out.push('.');
            out.push_str(&digits);
        }
        (out, exact)
    }

    /// Minimum of two rationals (by value).
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals (by value).
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::zero()
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat::from_int(v)
    }
}

impl From<BigInt> for Rat {
    fn from(v: BigInt) -> Rat {
        Rat { num: v, den: BigInt::one() }
    }
}

impl FromStr for Rat {
    type Err = ParseRatError;

    /// Parses either `p/q` fraction syntax or decimal syntax.
    fn from_str(s: &str) -> Result<Rat, ParseRatError> {
        let err = || ParseRatError { input: s.to_string() };
        if let Some((p, q)) = s.split_once('/') {
            let p: BigInt = p.trim().parse().map_err(|_| err())?;
            let q: BigInt = q.trim().parse().map_err(|_| err())?;
            if q.is_zero() {
                return Err(err());
            }
            Ok(Rat::new(p, q))
        } else {
            Rat::from_decimal_str(s.trim())
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rat({})", self)
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat { num: -&self.num, den: self.den.clone() }
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(mut self) -> Rat {
        self.num = -self.num;
        self
    }
}

impl Add for &Rat {
    type Output = Rat;
    fn add(self, other: &Rat) -> Rat {
        Rat::new(
            &self.num * &other.den + &other.num * &self.den,
            &self.den * &other.den,
        )
    }
}

impl Sub for &Rat {
    type Output = Rat;
    fn sub(self, other: &Rat) -> Rat {
        Rat::new(
            &self.num * &other.den - &other.num * &self.den,
            &self.den * &other.den,
        )
    }
}

impl Mul for &Rat {
    type Output = Rat;
    fn mul(self, other: &Rat) -> Rat {
        Rat::new(&self.num * &other.num, &self.den * &other.den)
    }
}

impl Div for &Rat {
    type Output = Rat;
    fn div(self, other: &Rat) -> Rat {
        assert!(!other.is_zero(), "rational division by zero");
        Rat::new(&self.num * &other.den, &self.den * &other.num)
    }
}

macro_rules! forward_owned_binop {
    ($($trait:ident :: $method:ident),*) => {$(
        impl $trait for Rat {
            type Output = Rat;
            fn $method(self, other: Rat) -> Rat {
                $trait::$method(&self, &other)
            }
        }
        impl $trait<&Rat> for Rat {
            type Output = Rat;
            fn $method(self, other: &Rat) -> Rat {
                $trait::$method(&self, other)
            }
        }
        impl $trait<Rat> for &Rat {
            type Output = Rat;
            fn $method(self, other: Rat) -> Rat {
                $trait::$method(self, &other)
            }
        }
    )*};
}

forward_owned_binop!(Add::add, Sub::sub, Mul::mul, Div::div);

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, other: &Rat) {
        *self = &*self + other;
    }
}

impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, other: &Rat) {
        *self = &*self - other;
    }
}

impl MulAssign<&Rat> for Rat {
    fn mul_assign(&mut self, other: &Rat) {
        *self = &*self * other;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(p: i64, q: i64) -> Rat {
        Rat::from_pair(p, q)
    }

    #[test]
    fn canonical_form() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rat::zero());
        assert!(r(3, -6).denom().is_positive());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
        assert_eq!(r(1, 2).recip(), r(2, 1));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == Rat::one());
        let mut v = vec![r(1, 2), r(-3, 4), Rat::zero(), r(5, 3)];
        v.sort();
        assert_eq!(v, vec![r(-3, 4), Rat::zero(), r(1, 2), r(5, 3)]);
    }

    #[test]
    fn parse_decimal() {
        assert_eq!(Rat::from_decimal_str("2.5").unwrap(), r(5, 2));
        assert_eq!(Rat::from_decimal_str("-0.25").unwrap(), r(-1, 4));
        assert_eq!(Rat::from_decimal_str(".5").unwrap(), r(1, 2));
        assert_eq!(Rat::from_decimal_str("3.").unwrap(), r(3, 1));
        assert_eq!(Rat::from_decimal_str("007").unwrap(), r(7, 1));
        assert!(Rat::from_decimal_str("").is_err());
        assert!(Rat::from_decimal_str(".").is_err());
        assert!(Rat::from_decimal_str("1.2.3").is_err());
        assert!(Rat::from_decimal_str("a").is_err());
    }

    #[test]
    fn parse_fraction() {
        assert_eq!("7/2".parse::<Rat>().unwrap(), r(7, 2));
        assert_eq!("-7/2".parse::<Rat>().unwrap(), r(-7, 2));
        assert_eq!("7/-2".parse::<Rat>().unwrap(), r(-7, 2));
        assert!("7/0".parse::<Rat>().is_err());
        assert_eq!("2.5".parse::<Rat>().unwrap(), r(5, 2));
    }

    #[test]
    fn display() {
        assert_eq!(r(5, 2).to_string(), "5/2");
        assert_eq!(r(4, 2).to_string(), "2");
        assert_eq!(r(-1, 3).to_string(), "-1/3");
        assert_eq!(Rat::zero().to_string(), "0");
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(r(6, 2).floor(), BigInt::from(3));
        assert_eq!(r(6, 2).ceil(), BigInt::from(3));
    }

    #[test]
    fn to_f64() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(r(-3, 4).to_f64(), -0.75);
        // Huge magnitudes still give a usable approximation.
        let huge = Rat::new(BigInt::from(3).pow(2000), BigInt::from(3).pow(2000) * BigInt::from(2));
        assert!((huge.to_f64() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn min_max() {
        assert_eq!(r(1, 2).min(r(1, 3)), r(1, 3));
        assert_eq!(r(1, 2).max(r(1, 3)), r(1, 2));
    }

    #[test]
    fn to_decimal() {
        assert_eq!(r(5, 2).to_decimal(6), ("2.5".to_string(), true));
        assert_eq!(r(-1, 4).to_decimal(6), ("-0.25".to_string(), true));
        assert_eq!(r(7, 1).to_decimal(6), ("7".to_string(), true));
        assert_eq!(Rat::zero().to_decimal(6), ("0".to_string(), true));
        let (s, exact) = r(1, 3).to_decimal(4);
        assert_eq!(s, "0.3333");
        assert!(!exact);
        let (s, exact) = r(-1, 3).to_decimal(2);
        assert_eq!(s, "-0.33");
        assert!(!exact);
        // Terminates exactly at the limit.
        assert_eq!(r(1, 8).to_decimal(3), ("0.125".to_string(), true));
        let (_, exact) = r(1, 8).to_decimal(2);
        assert!(!exact);
    }

    #[test]
    fn hash_consistency() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(r(2, 4));
        assert!(set.contains(&r(1, 2)));
    }
}
