//! Execution options and statistics for the parallel, filter-and-refine
//! evaluator.
//!
//! Two independent switches, both defaulting to "on":
//!
//! * **Parallelism** ([`ExecOptions::threads`]): operators fan their outer
//!   tuple loop out over the deterministic chunked executor in
//!   [`cqa_num::par`]. Results are bit-identical for every thread count.
//! * **Cheap filter** ([`ExecOptions::bbox_filter`]): operators consult
//!   conservative [`cqa_constraints::QuickBox`] bounds before running
//!   exact (big-rational) satisfiability. For `select` and `join` the
//!   filter only skips work whose outcome is already decided, so output
//!   is bit-identical with the filter off; for `difference` it prunes
//!   provably-redundant subtrahends, which preserves semantics but may
//!   simplify the syntactic output.
//!
//! [`ExecStats`] counts filter consultations and rejections with atomics,
//! so the same counters work unchanged under the parallel executor.

use crate::governor::Governor;
use std::sync::atomic::{AtomicU64, Ordering};

pub use cqa_num::par::{
    effective_threads, flat_map_chunks, map_chunks, try_flat_map_chunks, try_map_chunks,
    CancelToken, Cancelled,
};

/// Evaluation knobs, threaded from the shell/driver down to operators.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads for operator-level data parallelism; `0` means all
    /// hardware threads.
    pub threads: usize,
    /// Whether operators run the cheap bounding-box filter before exact
    /// constraint arithmetic.
    pub bbox_filter: bool,
    /// Cancellation token, wall-clock deadline, and resource budgets.
    /// Defaults to unlimited — a plain run never observes it.
    pub governor: Governor,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { threads: 0, bbox_filter: true, governor: Governor::default() }
    }
}

impl ExecOptions {
    /// The pre-parallelism baseline: one thread, no filtering. Useful as
    /// the reference side of determinism checks and benchmarks.
    pub fn serial() -> ExecOptions {
        ExecOptions { threads: 1, bbox_filter: false, ..ExecOptions::default() }
    }

    /// Default options with an explicit thread count.
    pub fn with_threads(threads: usize) -> ExecOptions {
        ExecOptions { threads, ..ExecOptions::default() }
    }

    /// The resolved worker count (`0` → hardware parallelism).
    pub fn effective_threads(&self) -> usize {
        effective_threads(self.threads)
    }
}

/// Per-run (or per-plan-node, in traces) evaluation counters — the
/// execution layer's staging buffer for the global `cqa-obs` metrics
/// registry.
///
/// Atomic so operator workers can record from any thread; every counter
/// is order-independent (sums and maxes), hence identical to a serial
/// run's. At run end [`ExecStats::flush_global`] batches the totals into
/// the process-global registry in one step, keeping the per-event hot
/// path free of shared-cache-line contention beyond what the run-local
/// atomics already cost.
#[derive(Debug, Default)]
pub struct ExecStats {
    filter_checked: AtomicU64,
    filter_rejected: AtomicU64,
    /// Peak intermediate atom count seen by any Fourier–Motzkin
    /// elimination (a gauge, combined by max rather than sum).
    fm_peak_atoms: AtomicU64,
    /// Fourier–Motzkin elimination runs (satisfiability checks and
    /// projections both land here).
    fm_calls: AtomicU64,
    /// Index-assisted selection probes.
    index_probes: AtomicU64,
    /// R*-tree nodes visited by those probes.
    index_accesses: AtomicU64,
    /// Join candidate pairs enumerated (after hash pre-bucketing, before
    /// the bounding-box filter).
    pairs_enumerated: AtomicU64,
    /// Conjunctions constructed by difference's DNF negation expansion.
    dnf_conjunctions: AtomicU64,
}

/// Cached handles into the global registry (one registration per
/// process, lock-free recording afterwards).
struct GlobalExecMetrics {
    filter_checked: &'static cqa_obs::Counter,
    filter_rejected: &'static cqa_obs::Counter,
    fm_peak_atoms: &'static cqa_obs::Gauge,
    fm_calls: &'static cqa_obs::Counter,
    index_probes: &'static cqa_obs::Counter,
    index_accesses: &'static cqa_obs::Counter,
    pairs_enumerated: &'static cqa_obs::Counter,
    dnf_conjunctions: &'static cqa_obs::Counter,
}

fn global_exec_metrics() -> &'static GlobalExecMetrics {
    static G: std::sync::OnceLock<GlobalExecMetrics> = std::sync::OnceLock::new();
    G.get_or_init(|| GlobalExecMetrics {
        filter_checked: cqa_obs::counter("exec.filter.checked"),
        filter_rejected: cqa_obs::counter("exec.filter.rejected"),
        fm_peak_atoms: cqa_obs::gauge("exec.fm.peak_atoms"),
        fm_calls: cqa_obs::counter("exec.fm.calls"),
        index_probes: cqa_obs::counter("exec.index.probes"),
        index_accesses: cqa_obs::counter("exec.index.accesses"),
        pairs_enumerated: cqa_obs::counter("exec.join.pairs_enumerated"),
        dnf_conjunctions: cqa_obs::counter("exec.dnf.conjunctions"),
    })
}

impl ExecStats {
    /// Fresh zeroed counters.
    pub fn new() -> ExecStats {
        ExecStats::default()
    }

    /// Records one filter consultation and whether it rejected.
    pub fn record(&self, rejected: bool) {
        self.filter_checked.fetch_add(1, Ordering::Relaxed);
        if rejected {
            self.filter_rejected.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one index-assisted selection probe that visited
    /// `accesses` R*-tree nodes.
    pub fn record_index_probe(&self, accesses: u64) {
        self.index_probes.fetch_add(1, Ordering::Relaxed);
        self.index_accesses.fetch_add(accesses, Ordering::Relaxed);
    }

    /// Records `n` join candidate pairs enumerated.
    pub fn record_pairs(&self, n: u64) {
        self.pairs_enumerated.fetch_add(n, Ordering::Relaxed);
    }

    /// How many candidates consulted the filter.
    pub fn checked(&self) -> u64 {
        self.filter_checked.load(Ordering::Relaxed)
    }

    /// How many candidates the filter rejected (exact check skipped).
    pub fn rejected(&self) -> u64 {
        self.filter_rejected.load(Ordering::Relaxed)
    }

    /// Peak intermediate Fourier–Motzkin atom count observed so far.
    pub fn fm_peak(&self) -> u64 {
        self.fm_peak_atoms.load(Ordering::Relaxed)
    }

    /// Fourier–Motzkin elimination runs so far.
    pub fn fm_calls(&self) -> u64 {
        self.fm_calls.load(Ordering::Relaxed)
    }

    /// Index-assisted selection probes so far.
    pub fn index_probes(&self) -> u64 {
        self.index_probes.load(Ordering::Relaxed)
    }

    /// R*-tree nodes visited by index-assisted selections so far.
    pub fn index_accesses(&self) -> u64 {
        self.index_accesses.load(Ordering::Relaxed)
    }

    /// Join candidate pairs enumerated so far.
    pub fn pairs_enumerated(&self) -> u64 {
        self.pairs_enumerated.load(Ordering::Relaxed)
    }

    /// Conjunctions built by DNF negation expansion so far.
    pub fn dnf_conjunctions(&self) -> u64 {
        self.dnf_conjunctions.load(Ordering::Relaxed)
    }

    /// The cell [`cqa_constraints::FmBudget`] records its peak into.
    pub(crate) fn fm_peak_cell(&self) -> &AtomicU64 {
        &self.fm_peak_atoms
    }

    /// The cell [`cqa_constraints::FmBudget`] counts elimination runs in.
    pub(crate) fn fm_calls_cell(&self) -> &AtomicU64 {
        &self.fm_calls
    }

    /// The cell `Dnf::minus_counted` counts built conjunctions in.
    pub(crate) fn dnf_cell(&self) -> &AtomicU64 {
        &self.dnf_conjunctions
    }

    /// Folds another counter set into this one (counters add, gauges max).
    pub fn absorb(&self, other: &ExecStats) {
        self.filter_checked.fetch_add(other.checked(), Ordering::Relaxed);
        self.filter_rejected.fetch_add(other.rejected(), Ordering::Relaxed);
        self.fm_peak_atoms.fetch_max(other.fm_peak(), Ordering::Relaxed);
        self.fm_calls.fetch_add(other.fm_calls(), Ordering::Relaxed);
        self.index_probes.fetch_add(other.index_probes(), Ordering::Relaxed);
        self.index_accesses.fetch_add(other.index_accesses(), Ordering::Relaxed);
        self.pairs_enumerated.fetch_add(other.pairs_enumerated(), Ordering::Relaxed);
        self.dnf_conjunctions.fetch_add(other.dnf_conjunctions(), Ordering::Relaxed);
    }

    /// Mirrors this run's totals into the global `cqa-obs` registry
    /// (counters add, gauges max). A no-op when global metrics are
    /// disabled — the run-local counters still work, so traces and
    /// `\stats` are unaffected by the flag.
    pub fn flush_global(&self) {
        if !cqa_obs::metrics_enabled() {
            return;
        }
        let g = global_exec_metrics();
        g.filter_checked.add(self.checked());
        g.filter_rejected.add(self.rejected());
        g.fm_peak_atoms.record_max(self.fm_peak());
        g.fm_calls.add(self.fm_calls());
        g.index_probes.add(self.index_probes());
        g.index_accesses.add(self.index_accesses());
        g.pairs_enumerated.add(self.pairs_enumerated());
        g.dnf_conjunctions.add(self.dnf_conjunctions());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_serial() {
        let d = ExecOptions::default();
        assert_eq!(d.threads, 0);
        assert!(d.bbox_filter);
        assert!(d.effective_threads() >= 1);
        let s = ExecOptions::serial();
        assert_eq!(s.threads, 1);
        assert!(!s.bbox_filter);
        assert_eq!(ExecOptions::with_threads(3).threads, 3);
    }

    #[test]
    fn stats_count_and_absorb() {
        let s = ExecStats::new();
        s.record(false);
        s.record(true);
        s.record(true);
        assert_eq!(s.checked(), 3);
        assert_eq!(s.rejected(), 2);
        let t = ExecStats::new();
        t.record(true);
        t.absorb(&s);
        assert_eq!(t.checked(), 4);
        assert_eq!(t.rejected(), 3);
    }

    #[test]
    fn fm_peak_is_a_gauge() {
        let s = ExecStats::new();
        s.fm_peak_cell().fetch_max(7, Ordering::Relaxed);
        let t = ExecStats::new();
        t.fm_peak_cell().fetch_max(3, Ordering::Relaxed);
        t.absorb(&s);
        assert_eq!(t.fm_peak(), 7, "absorb takes the max, not the sum");
    }
}
