//! Indefinite information (§3.1): constraints read disjunctively.
//!
//! The same syntax — a conjunction of constraints per tuple — carries two
//! different semantics in the paper:
//!
//! * conjunctive (constraint tuples): *all* satisfying points belong to
//!   the relation (a land parcel occupies its whole extent);
//! * disjunctive (indefinite information): *one* satisfying point is the
//!   true value, we just don't know which (a meeting starts at some time
//!   in a window).
//!
//! Run with: `cargo run -p cqa --example indefinite`

use cqa::core::indefinite::IndefiniteRelation;
use cqa::core::plan::{CmpOp, Selection};
use cqa::core::{AttrDef, HRelation, Schema, Value};
use cqa::num::Rat;

fn main() {
    let schema = Schema::new(vec![
        AttrDef::str_rel("flight"),
        AttrDef::rat_con("arrival"), // hour of day, under-specified
    ])
    .unwrap();
    let mut rel = HRelation::new(schema);
    rel.insert_with(|b| b.set("flight", "CQ101").pin("arrival", Rat::from_int(14)))
        .unwrap(); // lands at exactly 14:00
    rel.insert_with(|b| b.set("flight", "CQ202").range("arrival", 15, 17))
        .unwrap(); // "between 15:00 and 17:00"
    rel.insert_with(|b| b.set("flight", "CQ303").range("arrival", 16, 22))
        .unwrap(); // "evening, could be late"

    let flights = IndefiniteRelation::new(rel);
    println!("Flight arrivals with indefinite times:");
    print!("{}", flights.as_definite());

    let before_18 = Selection::all().cmp_int("arrival", CmpOp::Le, 18);
    let possible = flights.possible_select(&before_18).unwrap();
    let certain = flights.certain_select(&before_18).unwrap();

    println!("\nWho *possibly* arrives by 18:00?  (some candidate time qualifies)");
    print!("{}", possible.as_definite());
    println!("Who *certainly* arrives by 18:00?  (every candidate time qualifies)");
    print!("{}", certain.as_definite());

    assert_eq!(possible.len(), 3, "CQ303 might land at 16");
    assert_eq!(certain.len(), 2, "CQ303 might also land at 22");

    // Point membership under both readings.
    let p = [Value::str("CQ202"), Value::int(16)];
    println!(
        "\nCQ202 at 16:00 — possible: {}, certain: {}",
        flights.possibly_contains(&p).unwrap(),
        flights.certainly_contains(&p).unwrap(),
    );
    let q = [Value::str("CQ101"), Value::int(14)];
    println!(
        "CQ101 at 14:00 — possible: {}, certain: {}",
        flights.possibly_contains(&q).unwrap(),
        flights.certainly_contains(&q).unwrap(),
    );
}
