//! Background registry sampler for `\top`-style live display.
//!
//! A [`Sampler`] owns one thread that wakes on a fixed interval, takes a
//! metrics [`snapshot`](crate::metrics::snapshot), diffs it against the
//! previous one, and pushes the delta into a bounded in-memory ring. The
//! shell reads the ring to show "what moved in the last tick".
//!
//! Determinism contract: the sampler only *reads* the registry (snapshot
//! is a read of relaxed atomics) and never touches the span ring, so a
//! traced run's span sequence is bit-identical with or without a sampler
//! attached. Dropping the sampler signals the thread through a condvar
//! and joins it, so no thread outlives the handle.

use crate::metrics::{snapshot, MetricValue, Snapshot};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// One interval's registry movement.
#[derive(Debug, Clone, Default)]
pub struct Sample {
    /// Sample index (0 = first tick after start).
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch at capture.
    pub at_ms: u64,
    /// Counter increments over the interval (name, delta), name-sorted,
    /// zero deltas included so consumers can distinguish "idle" from
    /// "unregistered".
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge high-water marks at capture (absolute, not delta).
    pub gauges: Vec<(&'static str, u64)>,
    /// Histogram observation-count increments over the interval.
    pub histograms: Vec<(&'static str, u64)>,
}

impl Sample {
    fn diff(seq: u64, prev: &Snapshot, cur: &Snapshot) -> Sample {
        let mut s = Sample { seq, at_ms: crate::eventlog::now_ms(), ..Sample::default() };
        for (name, v) in cur.entries() {
            match v {
                MetricValue::Counter(n) => {
                    let before = prev.counter(name);
                    s.counters.push((name, n.saturating_sub(before)));
                }
                MetricValue::Gauge(n) => s.gauges.push((name, *n)),
                MetricValue::Histogram { count, .. } => {
                    let before = match prev.get(name) {
                        Some(MetricValue::Histogram { count, .. }) => *count,
                        _ => 0,
                    };
                    s.histograms.push((name, count.saturating_sub(before)));
                }
            }
        }
        s
    }
}

struct Shared {
    ring: Mutex<VecDeque<Sample>>,
    wake: Condvar,
    stop_mutex: Mutex<bool>,
    stopping: AtomicBool,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Handle to a running sampler thread; drop to stop it.
pub struct Sampler {
    shared: Arc<Shared>,
    interval: Duration,
    capacity: usize,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Starts a sampler ticking every `interval`, retaining the newest
    /// `capacity` samples.
    pub fn start(interval: Duration, capacity: usize) -> Sampler {
        let capacity = capacity.max(1);
        let shared = Arc::new(Shared {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            wake: Condvar::new(),
            stop_mutex: Mutex::new(false),
            stopping: AtomicBool::new(false),
        });
        let worker = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("cqa-sampler".into())
            .spawn(move || {
                let mut prev = snapshot();
                let mut seq = 0u64;
                loop {
                    // Interruptible sleep: Drop flips the flag under the
                    // mutex and notifies, so shutdown doesn't wait out
                    // the tick. Checking *before* the wait as well closes
                    // the lost-wakeup window where Drop signals between
                    // two iterations.
                    let guard = lock(&worker.stop_mutex);
                    if *guard {
                        return;
                    }
                    let (guard, _timeout) = worker
                        .wake
                        .wait_timeout(guard, interval)
                        .unwrap_or_else(PoisonError::into_inner);
                    let stopped = *guard;
                    drop(guard);
                    if stopped || worker.stopping.load(Ordering::Relaxed) {
                        return;
                    }
                    let cur = snapshot();
                    let sample = Sample::diff(seq, &prev, &cur);
                    seq += 1;
                    prev = cur;
                    let mut ring = lock(&worker.ring);
                    if ring.len() >= capacity {
                        ring.pop_front();
                    }
                    ring.push_back(sample);
                }
            })
            .expect("spawn sampler thread");
        Sampler { shared, interval, capacity, handle: Some(handle) }
    }

    /// The configured tick interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Copies the retained samples, oldest first.
    pub fn samples(&self) -> Vec<Sample> {
        lock(&self.shared.ring).iter().cloned().collect()
    }

    /// The most recent sample, if any tick has fired yet.
    pub fn latest(&self) -> Option<Sample> {
        lock(&self.shared.ring).back().cloned()
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shared.stopping.store(true, Ordering::Relaxed);
        *lock(&self.shared.stop_mutex) = true;
        self.shared.wake.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::counter;

    #[test]
    fn samples_deltas_and_stops_cleanly() {
        let c = counter("test.sampler.work");
        let s = Sampler::start(Duration::from_millis(5), 8);
        c.add(10);
        // Wait for at least one tick to observe the increment.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let seen = loop {
            if let Some(sample) = s
                .samples()
                .iter()
                .find(|smp| smp.counters.iter().any(|(n, d)| *n == "test.sampler.work" && *d >= 10))
            {
                break sample.clone();
            }
            assert!(std::time::Instant::now() < deadline, "sampler never saw the delta");
            std::thread::sleep(Duration::from_millis(2));
        };
        assert!(seen.counters.iter().any(|(n, d)| *n == "test.sampler.work" && *d >= 10));
        // Ring stays bounded.
        std::thread::sleep(Duration::from_millis(60));
        assert!(s.samples().len() <= 8);
        // Drop joins the thread promptly even mid-interval.
        let slow = Sampler::start(Duration::from_secs(3600), 2);
        let t0 = std::time::Instant::now();
        drop(slow);
        assert!(t0.elapsed() < Duration::from_secs(5), "drop must not wait out the interval");
        drop(s);
    }
}
