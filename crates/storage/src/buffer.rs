//! A buffer pool with LRU replacement and disk-access accounting.
//!
//! The §5.4 experiments report "number of disk accesses"; in this system
//! that figure is read off [`AccessStats`]. Every page fetch counts one
//! *logical* access; a fetch that misses the pool and must go to the disk
//! manager counts one *physical* access. Running an experiment with a cold
//! (or deliberately tiny) pool makes logical ≈ physical, which is the
//! configuration the paper's experiments correspond to.

use crate::disk::DiskManager;
use crate::page::{PageId, SlottedPage, PAGE_SIZE};
use crate::{Result, StorageError};
use std::collections::HashMap;

/// Global observability handles for buffer-pool traffic: every pool
/// mirrors its [`AccessStats`] increments here (when metrics are on), so
/// `\metrics` sees storage behaviour across all pools in the process.
struct PoolMetrics {
    logical: &'static cqa_obs::Counter,
    physical: &'static cqa_obs::Counter,
    writebacks: &'static cqa_obs::Counter,
    io_retries: &'static cqa_obs::Counter,
    corrupt_rereads: &'static cqa_obs::Counter,
}

fn pool_metrics() -> &'static PoolMetrics {
    static M: std::sync::OnceLock<PoolMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| PoolMetrics {
        logical: cqa_obs::counter("storage.pool.logical"),
        physical: cqa_obs::counter("storage.pool.physical"),
        writebacks: cqa_obs::counter("storage.pool.writebacks"),
        io_retries: cqa_obs::counter("storage.pool.io_retries"),
        corrupt_rereads: cqa_obs::counter("storage.pool.corrupt_rereads"),
    })
}

/// Counters of buffer-pool traffic.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AccessStats {
    /// Page fetches requested (one per page touched by an operation).
    pub logical: u64,
    /// Fetches that had to read from the disk manager.
    pub physical: u64,
    /// Dirty pages written back.
    pub writebacks: u64,
    /// Transient I/O errors retried (with backoff) before succeeding or
    /// giving up.
    pub io_retries: u64,
    /// Checksum failures answered by evicting the bytes and rereading once.
    pub corrupt_rereads: u64,
}

/// Disk reads/writes are attempted this many times in total; only
/// [`StorageError::Io`] is considered transient and retried.
const IO_ATTEMPTS: u32 = 3;

/// Exponential backoff before retry `attempt` (1-based): 1ms, 2ms, …
fn backoff(attempt: u32) -> std::time::Duration {
    std::time::Duration::from_millis(1u64 << (attempt - 1).min(4))
}

/// Reads a page with bounded retry on transient I/O errors.
fn read_with_retry<D: DiskManager>(
    disk: &mut D,
    stats: &mut AccessStats,
    id: PageId,
    buf: &mut [u8],
) -> Result<()> {
    let mut attempt = 1;
    loop {
        match disk.read(id, buf) {
            Err(StorageError::Io(_)) if attempt < IO_ATTEMPTS => {
                stats.io_retries += 1;
                if cqa_obs::metrics_enabled() {
                    pool_metrics().io_retries.inc();
                }
                std::thread::sleep(backoff(attempt));
                attempt += 1;
            }
            other => return other,
        }
    }
}

/// Writes a page with bounded retry on transient I/O errors.
fn write_with_retry<D: DiskManager>(
    disk: &mut D,
    stats: &mut AccessStats,
    id: PageId,
    buf: &[u8],
) -> Result<()> {
    let mut attempt = 1;
    loop {
        match disk.write(id, buf) {
            Err(StorageError::Io(_)) if attempt < IO_ATTEMPTS => {
                stats.io_retries += 1;
                if cqa_obs::metrics_enabled() {
                    pool_metrics().io_retries.inc();
                }
                std::thread::sleep(backoff(attempt));
                attempt += 1;
            }
            other => return other,
        }
    }
}

struct Frame {
    id: PageId,
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    last_used: u64,
}

/// A fixed-capacity page cache over a [`DiskManager`].
pub struct BufferPool<D: DiskManager> {
    disk: D,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    capacity: usize,
    clock: u64,
    stats: AccessStats,
    checksums: bool,
}

impl<D: DiskManager> BufferPool<D> {
    /// Creates a pool caching at most `capacity` pages (a capacity of 0 is
    /// clamped to 1 frame rather than panicking).
    pub fn new(disk: D, capacity: usize) -> BufferPool<D> {
        BufferPool {
            disk,
            frames: Vec::new(),
            map: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            stats: AccessStats::default(),
            checksums: false,
        }
    }

    /// Enables per-page CRC maintenance: pages are sealed
    /// ([`SlottedPage::seal`]) on writeback and verified on every physical
    /// read; a mismatch is answered by one reread (graceful degradation
    /// against read-side corruption) before failing with
    /// [`StorageError::Corrupt`].
    ///
    /// Only valid for pools holding slotted pages — raw-byte page users
    /// (e.g. the paged R\*-tree) own bytes 4..8 themselves and must leave
    /// this off.
    pub fn with_checksums(mut self) -> BufferPool<D> {
        self.checksums = true;
        self
    }

    /// Whether per-page CRC maintenance is on.
    pub fn checksums_enabled(&self) -> bool {
        self.checksums
    }

    /// The underlying disk manager (e.g. to inspect fault-injection
    /// counters mid-run).
    pub fn disk(&self) -> &D {
        &self.disk
    }

    /// Access statistics so far.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Resets the statistics (e.g. between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }

    /// Allocates a fresh page on the underlying disk.
    pub fn allocate(&mut self) -> Result<PageId> {
        self.disk.allocate()
    }

    /// Number of pages on the underlying disk.
    pub fn num_pages(&self) -> u64 {
        self.disk.num_pages()
    }

    /// Runs `f` with read access to the page.
    pub fn with_page<R>(&mut self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let idx = self.fetch(id)?;
        Ok(f(&self.frames[idx].data[..]))
    }

    /// Runs `f` with write access to the page, marking it dirty.
    pub fn with_page_mut<R>(&mut self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let idx = self.fetch(id)?;
        self.frames[idx].dirty = true;
        Ok(f(&mut self.frames[idx].data[..]))
    }

    /// Writes all dirty pages back to the disk manager.
    pub fn flush(&mut self) -> Result<()> {
        for frame in &mut self.frames {
            if frame.dirty {
                if self.checksums {
                    SlottedPage::seal(&mut frame.data[..]);
                }
                write_with_retry(&mut self.disk, &mut self.stats, frame.id, &frame.data[..])?;
                frame.dirty = false;
                self.stats.writebacks += 1;
                if cqa_obs::metrics_enabled() {
                    pool_metrics().writebacks.inc();
                }
            }
        }
        Ok(())
    }

    /// Evicts everything (flushing dirty pages), leaving the cache cold.
    pub fn clear(&mut self) -> Result<()> {
        self.flush()?;
        self.frames.clear();
        self.map.clear();
        Ok(())
    }

    /// Reads `id` from disk into `data`, verifying the checksum when
    /// enabled. A mismatch evicts the bytes and rereads once — a read-side
    /// bit flip heals; persistent corruption fails with a typed error.
    fn read_verified(&mut self, id: PageId, data: &mut [u8; PAGE_SIZE]) -> Result<()> {
        read_with_retry(&mut self.disk, &mut self.stats, id, &mut data[..])?;
        if self.checksums && !SlottedPage::verify_checksum(&data[..]) {
            self.stats.corrupt_rereads += 1;
            if cqa_obs::metrics_enabled() {
                pool_metrics().corrupt_rereads.inc();
            }
            read_with_retry(&mut self.disk, &mut self.stats, id, &mut data[..])?;
            if !SlottedPage::verify_checksum(&data[..]) {
                return Err(StorageError::corrupt_page(id, "page checksum mismatch"));
            }
        }
        Ok(())
    }

    fn fetch(&mut self, id: PageId) -> Result<usize> {
        self.clock += 1;
        self.stats.logical += 1;
        let metrics_on = cqa_obs::metrics_enabled();
        if metrics_on {
            pool_metrics().logical.inc();
        }
        if let Some(&idx) = self.map.get(&id) {
            self.frames[idx].last_used = self.clock;
            if cqa_obs::spans_enabled() {
                cqa_obs::record_span("storage.page", format!("page {}", id.0), 0, vec![
                    ("physical", 0),
                ]);
            }
            return Ok(idx);
        }
        self.stats.physical += 1;
        if metrics_on {
            pool_metrics().physical.inc();
        }
        let span_start = cqa_obs::spans_enabled().then(std::time::Instant::now);
        let mut data = Box::new([0u8; PAGE_SIZE]);
        self.read_verified(id, &mut data)?;
        if let Some(t0) = span_start {
            cqa_obs::record_span(
                "storage.page",
                format!("page {}", id.0),
                t0.elapsed().as_nanos() as u64,
                vec![("physical", 1)],
            );
        }
        let idx = if self.frames.len() < self.capacity {
            self.frames.push(Frame { id, data, dirty: false, last_used: self.clock });
            self.frames.len() - 1
        } else {
            // Evict the least recently used frame. `frames` is nonempty
            // here (len == capacity ≥ 1), so fall back to frame 0 rather
            // than carrying a panic path.
            let victim = self
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(i, _)| i)
                .unwrap_or(0);
            if self.frames[victim].dirty {
                if self.checksums {
                    SlottedPage::seal(&mut self.frames[victim].data[..]);
                }
                let (old_id, stats) = (self.frames[victim].id, &mut self.stats);
                write_with_retry(&mut self.disk, stats, old_id, &self.frames[victim].data[..])?;
                self.stats.writebacks += 1;
                if metrics_on {
                    pool_metrics().writebacks.inc();
                }
            }
            let old = &mut self.frames[victim];
            self.map.remove(&old.id);
            *old = Frame { id, data, dirty: false, last_used: self.clock };
            victim
        };
        self.map.insert(id, idx);
        Ok(idx)
    }

    /// Consumes the pool, flushing and returning the disk manager.
    pub fn into_disk(mut self) -> Result<D> {
        self.flush()?;
        Ok(self.disk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    #[test]
    fn caches_hot_pages() {
        let mut pool = BufferPool::new(MemDisk::new(), 2);
        let a = pool.allocate().unwrap();
        pool.with_page(a, |_| ()).unwrap();
        pool.with_page(a, |_| ()).unwrap();
        pool.with_page(a, |_| ()).unwrap();
        let s = pool.stats();
        assert_eq!(s.logical, 3);
        assert_eq!(s.physical, 1);
    }

    #[test]
    fn lru_evicts_coldest() {
        let mut pool = BufferPool::new(MemDisk::new(), 2);
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        let c = pool.allocate().unwrap();
        pool.with_page(a, |_| ()).unwrap(); // a
        pool.with_page(b, |_| ()).unwrap(); // a b
        pool.with_page(a, |_| ()).unwrap(); // b a (a hot)
        pool.with_page(c, |_| ()).unwrap(); // evicts b
        pool.with_page(a, |_| ()).unwrap(); // hit
        assert_eq!(pool.stats().physical, 3);
        pool.with_page(b, |_| ()).unwrap(); // miss again
        assert_eq!(pool.stats().physical, 4);
    }

    #[test]
    fn writes_survive_eviction_and_flush() {
        let mut pool = BufferPool::new(MemDisk::new(), 1);
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        pool.with_page_mut(a, |p| p[0] = 42).unwrap();
        pool.with_page(b, |_| ()).unwrap(); // evicts dirty a
        let v = pool.with_page(a, |p| p[0]).unwrap();
        assert_eq!(v, 42);
        assert!(pool.stats().writebacks >= 1);
        pool.with_page_mut(a, |p| p[1] = 7).unwrap();
        let mut disk = pool.into_disk().unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        disk.read(a, &mut buf).unwrap();
        assert_eq!((buf[0], buf[1]), (42, 7));
    }

    #[test]
    fn reset_and_clear() {
        let mut pool = BufferPool::new(MemDisk::new(), 4);
        let a = pool.allocate().unwrap();
        pool.with_page(a, |_| ()).unwrap();
        pool.reset_stats();
        assert_eq!(pool.stats(), AccessStats::default());
        pool.clear().unwrap();
        pool.with_page(a, |_| ()).unwrap();
        assert_eq!(pool.stats().physical, 1, "cold after clear");
    }
}
