//! # cqa-constraints — the finite-representation layer of CQA/CDB
//!
//! The constraint database framework (Kanellakis–Kuper–Revesz, summarized in
//! §2 of the paper) replaces finite relations by *finitely representable*
//! ones: a constraint tuple is a conjunction of constraints over the tuple's
//! attributes, and a constraint relation is a disjunction (DNF) of such
//! conjunctions. This crate implements that representation for the class of
//! **rational linear constraints** — the class CQA/CDB chose for query
//! evaluation efficiency — together with the decision procedures the
//! Constraint Query Algebra needs:
//!
//! * [`LinExpr`] — linear expressions with exact rational coefficients;
//! * [`Atom`] — atomic constraints `e = 0`, `e ≤ 0`, `e < 0`;
//! * [`Conjunction`] — a constraint tuple: satisfiability, entailment,
//!   simplification, evaluation, and **variable elimination** (projection)
//!   via Gaussian substitution of equalities followed by Fourier–Motzkin;
//! * [`Dnf`] — a constraint relation body: closure under union,
//!   intersection, negation (for the difference operator) and projection;
//! * [`Interval`] / bounding boxes — the bridge to multidimensional
//!   indexing (§5 of the paper);
//! * [`denseorder`] — a second constraint class (dense order with
//!   constants, the Ferrante–Geiser theory) demonstrating that the
//!   framework, per §2.3, "encompasses all classes of constraints".
//!
//! Everything here operates on the *syntactic* layer; the semantic
//! (possibly infinite set-of-points) layer only ever appears through
//! [`Assignment`] evaluation, mirroring the closure principle of §2.5.

mod assignment;
mod atom;
mod conj;
pub mod denseorder;
mod dnf;
pub mod fourier_motzkin;
mod interval;
mod linexpr;
mod quickbox;
mod var;

pub use assignment::Assignment;
pub use atom::{Atom, Rel};
pub use conj::Conjunction;
pub use dnf::{Dnf, DnfBudgetExceeded};
pub use fourier_motzkin::{FmBudget, FmBudgetExceeded};
pub use interval::{Bound, Interval};
pub use linexpr::LinExpr;
pub use quickbox::QuickBox;
pub use var::Var;
