//! Upward compatibility (§3.2): on purely relational schemas the
//! heterogeneous engine must behave exactly like a classical relational
//! engine — the paper's Claim, tested property-style against the
//! `cqa::core::relational` oracle with random tables, nulls included.

use cqa::core::plan::{CmpOp, Selection};
use cqa::core::relational::RelTable;
use cqa::core::{ops, AttrDef, HRelation, Schema, Tuple, Value};

/// A random small relational table over (name: Str, a: Rat, b: Rat) with
/// occasional nulls.
#[derive(Debug, Clone)]
struct TestTable {
    rows: Vec<(Option<u8>, Option<i8>, Option<i8>)>,
}

fn schema() -> Schema {
    Schema::new(vec![
        AttrDef::str_rel("name"),
        AttrDef::rat_rel("a"),
        AttrDef::rat_rel("b"),
    ])
    .unwrap()
}

fn to_hrelation(t: &TestTable) -> HRelation {
    let mut r = HRelation::new(schema());
    for (n, a, b) in &t.rows {
        let mut builder = Tuple::builder(r.schema());
        if let Some(n) = n {
            builder = builder.set("name", Value::str(format!("n{}", n)));
        }
        if let Some(a) = a {
            builder = builder.set("a", Value::int(*a as i64));
        }
        if let Some(b) = b {
            builder = builder.set("b", Value::int(*b as i64));
        }
        r.insert(builder.build().unwrap());
    }
    r
}

fn to_reltable(t: &TestTable) -> RelTable {
    let mut r = RelTable::new(vec!["name".into(), "a".into(), "b".into()]);
    for (n, a, b) in &t.rows {
        r.insert(vec![
            n.map(|n| Value::str(format!("n{}", n))),
            a.map(|a| Value::int(a as i64)),
            b.map(|b| Value::int(b as i64)),
        ]);
    }
    r
}

// Property suite: compiled only with `--features proptest` (see
// third_party/README.md).
#[cfg(feature = "proptest")]
mod properties {
    use super::*;
    use proptest::prelude::*;

    fn arb_table() -> impl Strategy<Value = TestTable> {
        prop::collection::vec(
            (
                prop::option::weighted(0.85, 0u8..4),
                prop::option::weighted(0.85, -4i8..4),
                prop::option::weighted(0.85, -4i8..4),
            ),
            0..8,
        )
        .prop_map(|rows| TestTable { rows })
    }

    /// Normalizes an HRelation over a purely relational schema to sorted rows.
    fn h_rows(r: &HRelation) -> Vec<Vec<Option<Value>>> {
        let mut rows: Vec<Vec<Option<Value>>> = r
            .tuples()
            .iter()
            .map(|t| (0..r.schema().arity()).map(|i| t.value(i).cloned()).collect())
            .collect();
        rows.sort();
        rows.dedup();
        rows
    }

    fn rel_rows(r: &RelTable) -> Vec<Vec<Option<Value>>> {
        let n = r.normalized();
        n.rows().to_vec()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn select_matches_oracle(t in arb_table(), threshold in -4i8..4, op_idx in 0usize..6) {
            let op = [CmpOp::Eq, CmpOp::Ne, CmpOp::Le, CmpOp::Lt, CmpOp::Ge, CmpOp::Gt][op_idx];
            let sel = Selection::all().cmp_int("a", op, threshold as i64);
            let h = ops::select(&to_hrelation(&t), &sel).unwrap();
            let o = to_reltable(&t).select(&sel).unwrap();
            prop_assert_eq!(h_rows(&h), rel_rows(&o));
        }

        #[test]
        fn string_select_matches_oracle(t in arb_table(), target in 0u8..4, ne in any::<bool>()) {
            let value = format!("n{}", target);
            let sel = if ne {
                Selection::all().str_ne("name", value)
            } else {
                Selection::all().str_eq("name", value)
            };
            let h = ops::select(&to_hrelation(&t), &sel).unwrap();
            let o = to_reltable(&t).select(&sel).unwrap();
            prop_assert_eq!(h_rows(&h), rel_rows(&o));
        }

        #[test]
        fn project_matches_oracle(t in arb_table()) {
            let attrs = vec!["name".to_string(), "b".to_string()];
            let h = ops::project(&to_hrelation(&t), &attrs).unwrap();
            let o = to_reltable(&t).project(&attrs).unwrap();
            prop_assert_eq!(h_rows(&h), rel_rows(&o));
        }

        #[test]
        fn join_matches_oracle(t1 in arb_table(), t2 in arb_table()) {
            // Join on the shared attribute `name` after projecting different
            // column sets so the join is not trivial.
            let l_attrs = vec!["name".to_string(), "a".to_string()];
            let r_attrs = vec!["name".to_string(), "b".to_string()];
            let hl = ops::project(&to_hrelation(&t1), &l_attrs).unwrap();
            let hr = ops::project(&to_hrelation(&t2), &r_attrs).unwrap();
            let h = ops::join(&hl, &hr).unwrap();
            let ol = to_reltable(&t1).project(&l_attrs).unwrap();
            let or = to_reltable(&t2).project(&r_attrs).unwrap();
            let o = ol.join(&or).unwrap();
            prop_assert_eq!(h_rows(&h), rel_rows(&o));
        }

        #[test]
        fn union_matches_oracle(t1 in arb_table(), t2 in arb_table()) {
            let h = ops::union(&to_hrelation(&t1), &to_hrelation(&t2)).unwrap();
            let o = to_reltable(&t1).union(&to_reltable(&t2)).unwrap();
            prop_assert_eq!(h_rows(&h), rel_rows(&o));
        }

        #[test]
        fn difference_matches_oracle(t1 in arb_table(), t2 in arb_table()) {
            let h = ops::difference(&to_hrelation(&t1), &to_hrelation(&t2)).unwrap();
            let o = to_reltable(&t1).difference(&to_reltable(&t2)).unwrap();
            prop_assert_eq!(h_rows(&h), rel_rows(&o));
        }

        #[test]
        fn rename_matches_oracle(t in arb_table()) {
            let h = ops::rename(&to_hrelation(&t), "a", "alpha").unwrap();
            let o = to_reltable(&t).rename("a", "alpha").unwrap();
            prop_assert_eq!(h.schema().attrs()[1].name.as_str(), "alpha");
            prop_assert_eq!(h_rows(&h), rel_rows(&o));
        }
    }

}

/// The motivating example, stated directly: an employee with missing age
/// is not returned by "whose age is 40?" in either engine.
#[test]
fn missing_age_example() {
    let t = TestTable { rows: vec![(Some(1), None, Some(0))] };
    let sel = Selection::all().cmp_int("a", CmpOp::Eq, 40);
    let h = ops::select(&to_hrelation(&t), &sel).unwrap();
    let o = to_reltable(&t).select(&sel).unwrap();
    assert!(h.is_empty());
    assert!(o.is_empty());
}
