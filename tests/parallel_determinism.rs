//! Determinism contract of the parallel evaluator, and soundness of the
//! cheap bounding-box filter.
//!
//! The chunked executor promises *bit-identical* output for every thread
//! count: it partitions the outer tuple loop into contiguous chunks and
//! concatenates per-chunk outputs in partition order, so the result is the
//! serial loop's, merely computed by more workers. These tests pin that
//! contract on the Hurricane case-study queries (§3.3) and on seeded random
//! interval workloads.
//!
//! The filter's contract is different per operator: for `select` and `join`
//! it may only skip work the exact path would discard anyway (output
//! byte-identical with the filter off); for `difference` it prunes
//! provably-redundant subtrahends (semantics preserved, syntax may
//! simplify), so thread-count comparisons hold the filter setting fixed.

use cqa::constraints::{Atom, LinExpr, Var};
use cqa::core::ops::{difference_opts, join_opts, select_opts};
use cqa::core::plan::{CmpOp, Selection};
use cqa::core::{AttrDef, Catalog, ExecOptions, ExecStats, HRelation, Schema};
use cqa::lang::schema_def::parse_cdb;
use cqa::lang::ScriptRunner;
use cqa::num::prng::Pcg32;
use cqa::num::Rat;

const DATA: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/data/hurricane.cdb");

const HURRICANE_QUERIES: [&str; 5] = [
    // Query 1: owners of parcel A over time.
    "R0 = select landId = \"A\" from Landownership\nR1 = project R0 on name, t\n",
    // Query 2: parcels the hurricane passed.
    "R0 = join Hurricane and Land\nR1 = project R0 on landId\n",
    // Query 3: owners hit between t = 4 and t = 9.
    "R0 = join Landownership and Land\nR1 = select t >= 4, t <= 9 from Hurricane\nR2 = join R0 and R1\nR3 = project R2 on name\n",
    // Query 4: hit parcels Ann never owned.
    "R0 = join Hurricane and Land\nR1 = project R0 on landId\nR2 = select name = \"Ann\" from Landownership\nR3 = project R2 on landId\nR4 = diff R1 and R3\n",
    // Query 5: when parcel B was hit.
    "R0 = select landId = \"B\" from Land\nR1 = join Hurricane and R0\nR2 = project R1 on t\n",
];

fn runner_with(opts: ExecOptions) -> ScriptRunner {
    let source = std::fs::read_to_string(DATA).expect("hurricane.cdb present");
    let mut catalog = Catalog::new();
    parse_cdb(&source).expect("valid .cdb file").load_into(&mut catalog);
    let mut r = ScriptRunner::new(catalog);
    r.set_exec_options(opts);
    r
}

#[test]
fn hurricane_queries_identical_across_thread_counts() {
    for (i, script) in HURRICANE_QUERIES.iter().enumerate() {
        for filter in [false, true] {
            let baseline = runner_with(ExecOptions { threads: 1, bbox_filter: filter, ..ExecOptions::default() })
                .run(script)
                .unwrap();
            for threads in [2usize, 4, 7] {
                let out = runner_with(ExecOptions { threads, bbox_filter: filter, ..ExecOptions::default() })
                    .run(script)
                    .unwrap();
                assert_eq!(
                    baseline, out,
                    "query {} diverged at threads={} filter={}",
                    i + 1,
                    threads,
                    filter
                );
            }
        }
    }
}

#[test]
fn hurricane_filter_is_invisible_without_difference() {
    // Queries 1, 2, 3 and 5 use only select/join/project, where the filter
    // must be byte-invisible. (Query 4 uses diff, whose pruning may
    // simplify the output's syntax — checked semantically elsewhere.)
    for (i, script) in HURRICANE_QUERIES.iter().enumerate() {
        if i == 3 {
            continue;
        }
        let off = runner_with(ExecOptions { threads: 1, bbox_filter: false, ..ExecOptions::default() }).run(script).unwrap();
        let on = runner_with(ExecOptions { threads: 1, bbox_filter: true, ..ExecOptions::default() }).run(script).unwrap();
        assert_eq!(off, on, "query {} changed under the bbox filter", i + 1);
    }
}

#[test]
fn hurricane_query4_filter_preserves_semantics() {
    let script = HURRICANE_QUERIES[3];
    let off = runner_with(ExecOptions { threads: 1, bbox_filter: false, ..ExecOptions::default() }).run(script).unwrap();
    let on = runner_with(ExecOptions { threads: 1, bbox_filter: true, ..ExecOptions::default() }).run(script).unwrap();
    // Same point sets, whatever the syntax: B and C hit, A not.
    for id in ["A", "B", "C"] {
        assert_eq!(
            off.contains_point(&[cqa::core::Value::str(id)]).unwrap(),
            on.contains_point(&[cqa::core::Value::str(id)]).unwrap(),
            "parcel {}",
            id
        );
    }
}

/// A relation `(id: string relational, x: rational constraint)` of seeded
/// random integer intervals — the same workload family as the
/// `parallel_speedup` bench.
fn interval_relation(id_attr: &str, n: usize, seed: u64) -> HRelation {
    let schema =
        Schema::new(vec![AttrDef::str_rel(id_attr), AttrDef::rat_con("x")]).unwrap();
    let mut rel = HRelation::new(schema);
    let mut rng = Pcg32::seed_from_u64(seed);
    for i in 0..n {
        let lo = rng.gen_range_i64(0, 500);
        let w = rng.gen_range_i64(1, 60);
        rel.insert_with(|b| {
            b.set(id_attr, format!("{}{}", id_attr, i).as_str()).range("x", lo, lo + w)
        })
        .unwrap();
    }
    rel
}

#[test]
fn random_joins_identical_across_threads_and_filter() {
    for seed in [1u64, 99, 0xDEAD] {
        let left = interval_relation("a", 60, seed);
        let right = interval_relation("b", 60, seed ^ 0x5555);
        let base = join_opts(&left, &right, &ExecOptions::serial(), &ExecStats::new()).unwrap();
        for threads in [1usize, 2, 4, 8] {
            for filter in [false, true] {
                let opts = ExecOptions { threads, bbox_filter: filter, ..ExecOptions::default() };
                let out = join_opts(&left, &right, &opts, &ExecStats::new()).unwrap();
                assert_eq!(base, out, "seed={} threads={} filter={}", seed, threads, filter);
            }
        }
    }
}

#[test]
fn random_selects_identical_across_threads_and_filter() {
    let rel = interval_relation("a", 120, 7);
    let sel = Selection::all().cmp_int("x", CmpOp::Ge, 100).cmp_int("x", CmpOp::Le, 220);
    let base = select_opts(&rel, &sel, &ExecOptions::serial(), &ExecStats::new()).unwrap();
    for threads in [1usize, 2, 4, 8] {
        for filter in [false, true] {
            let opts = ExecOptions { threads, bbox_filter: filter, ..ExecOptions::default() };
            let out = select_opts(&rel, &sel, &opts, &ExecStats::new()).unwrap();
            assert_eq!(base, out, "threads={} filter={}", threads, filter);
        }
    }
}

#[test]
fn random_differences_identical_across_threads() {
    // Same ids on both sides so subtrahends actually match; the filter is
    // held fixed per comparison (it may change the output's syntax).
    let left = interval_relation("a", 50, 11);
    let right = {
        let schema =
            Schema::new(vec![AttrDef::str_rel("a"), AttrDef::rat_con("x")]).unwrap();
        let mut rel = HRelation::new(schema);
        let mut rng = Pcg32::seed_from_u64(12);
        for i in 0..50 {
            let lo = rng.gen_range_i64(0, 500);
            let w = rng.gen_range_i64(1, 60);
            rel.insert_with(|b| {
                b.set("a", format!("a{}", i).as_str()).range("x", lo, lo + w)
            })
            .unwrap();
        }
        rel
    };
    for filter in [false, true] {
        let base = difference_opts(
            &left,
            &right,
            &ExecOptions { threads: 1, bbox_filter: filter, ..ExecOptions::default() },
            &ExecStats::new(),
        )
        .unwrap();
        for threads in [2usize, 4, 8] {
            let opts = ExecOptions { threads, bbox_filter: filter, ..ExecOptions::default() };
            let out = difference_opts(&left, &right, &opts, &ExecStats::new()).unwrap();
            assert_eq!(base, out, "threads={} filter={}", threads, filter);
        }
    }
}

/// A 500×500 join keyed by a shared relational group attribute (so the
/// hash pre-bucketing partitions it), projected afterwards so Fourier–
/// Motzkin runs too. The traced evaluator must produce the same relation
/// AND the same trace identity (labels, row counts, every counter —
/// everything but wall time) for every thread count.
#[test]
fn trace_identity_invariant_across_thread_counts() {
    let make = |id_attr: &str, seed: u64| {
        let schema = Schema::new(vec![
            AttrDef::str_rel("g"),
            AttrDef::str_rel(id_attr),
            AttrDef::rat_con("x"),
        ])
        .unwrap();
        let mut rel = HRelation::new(schema);
        let mut rng = Pcg32::seed_from_u64(seed);
        for i in 0..500 {
            let lo = rng.gen_range_i64(0, 500);
            let w = rng.gen_range_i64(1, 60);
            let g = rng.gen_range_i64(0, 50);
            rel.insert_with(|b| {
                b.set("g", format!("g{}", g).as_str())
                    .set(id_attr, format!("{}{}", id_attr, i).as_str())
                    .range("x", lo, lo + w)
            })
            .unwrap();
        }
        rel
    };
    let mut catalog = Catalog::new();
    catalog.register("L", make("a", 41));
    catalog.register("R", make("b", 42));
    let plan = cqa::core::plan::Plan::scan("L")
        .join(cqa::core::plan::Plan::scan("R"))
        .project(&["g", "x"]);

    let opts1 = ExecOptions::with_threads(1);
    let (base_rel, base_trace) =
        cqa::core::exec::execute_traced_opts(&plan, &catalog, &opts1, &ExecStats::new()).unwrap();
    // Bucketing really kicked in: far fewer pairs than the full 250 000.
    assert!(base_trace.children[0].pairs_enumerated > 0);
    assert!(
        base_trace.children[0].pairs_enumerated < 250_000 / 10,
        "hash pre-bucketing should cut pair enumeration well below the cross product, got {}",
        base_trace.children[0].pairs_enumerated
    );
    let base_id = base_trace.identity();
    for threads in [2usize, 8] {
        let opts = ExecOptions::with_threads(threads);
        let (rel, trace) =
            cqa::core::exec::execute_traced_opts(&plan, &catalog, &opts, &ExecStats::new())
                .unwrap();
        assert_eq!(base_rel, rel, "relation diverged at threads={}", threads);
        assert_eq!(base_id, trace.identity(), "trace diverged at threads={}", threads);
    }
}

/// Seeded random single-variable conjunctions for the filter-soundness
/// check below.
fn random_conjunction(rng: &mut Pcg32, arity: usize) -> cqa::constraints::Conjunction {
    let mut atoms = Vec::new();
    for d in 0..arity {
        let v = Var(d as u32);
        let lo = rng.gen_range_i64(-50, 50);
        let w = rng.gen_range_i64(0, 30);
        // Mix strict/non-strict and rational endpoints.
        let lo_expr = LinExpr::from_terms(
            [(v, Rat::from_int(rng.gen_range_i64(1, 4)))],
            Rat::from_pair(-lo, rng.gen_range_i64(1, 3)),
        );
        atoms.push(if rng.gen_bool(0.5) {
            Atom::ge(lo_expr.clone(), LinExpr::zero())
        } else {
            Atom::gt(lo_expr.clone(), LinExpr::zero())
        });
        let hi_expr =
            LinExpr::from_terms([(v, Rat::one())], Rat::from_int(-(lo + w)));
        atoms.push(if rng.gen_bool(0.5) {
            Atom::le(hi_expr, LinExpr::zero())
        } else {
            Atom::lt(hi_expr, LinExpr::zero())
        });
    }
    cqa::constraints::Conjunction::from_atoms(atoms)
}

/// The filter's soundness contract: whenever `quick_disjoint` fires, the
/// exact conjunction must really be unsatisfiable. (The converse need not
/// hold — the box is conservative.)
#[test]
fn quick_disjoint_implies_exact_unsat_seeded() {
    let mut rng = Pcg32::seed_from_u64(2024);
    let arity = 2;
    let mut fired = 0;
    for _ in 0..500 {
        let a = random_conjunction(&mut rng, arity);
        let b = random_conjunction(&mut rng, arity);
        if a.quick_disjoint(&b, arity) {
            fired += 1;
            assert!(!a.and(&b).is_satisfiable(), "filter rejected a satisfiable pair:\n{:?}\n{:?}", a, b);
        }
    }
    assert!(fired > 0, "the seed should produce some disjoint pairs");
}
