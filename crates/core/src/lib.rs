//! # cqa-core — the heterogeneous data model and the Constraint Query
//! Algebra
//!
//! This crate is the paper's primary contribution: CQA/CDB's *middle layer*
//! (Figure 1) between the user-facing query language and the disk-access
//! layer.
//!
//! ## The heterogeneous data model (§3)
//!
//! §3.1 exhibits the **missing attribute inconsistency** (Proposition 1):
//! under the pure constraint model a tuple that does not mention an
//! attribute admits *all* domain values for it (broad semantics), while the
//! relational model treats a missing value as a null distinct from every
//! domain value (narrow semantics). CQA/CDB resolves the inconsistency by
//! extending the schema with a **C/R flag** per attribute
//! ([`AttrKind`]): constraint attributes get broad semantics, relational
//! attributes narrow semantics. [`Schema`], [`Tuple`], and [`HRelation`]
//! implement the resulting model; the claim of §3.2 — full upward
//! compatibility with the relational model — is checked in the
//! `upward_compat` integration tests against the [`relational`] reference
//! engine.
//!
//! ## The Constraint Query Algebra (§2.4)
//!
//! The six primitive operators — [`ops::select`], [`ops::project`],
//! [`ops::join`] (natural join), [`ops::union`], [`ops::rename`],
//! [`ops::difference`] — are implemented syntactically over constraint
//! tuples, with correctness stated against the semantic (set-of-points)
//! layer per the closure principle (§2.5). Projection uses exact quantifier
//! elimination; difference uses DNF negation.
//!
//! ## Queries as plans
//!
//! [`Plan`] is the algebra's AST, [`exec`] evaluates plans against a
//! [`Catalog`], [`optimizer`] performs the classical algebraic rewrites
//! (select merging and pushdown), and [`safety`] enforces the §2.4 closure
//! requirement — rejecting, e.g., the raw `distance` operator while
//! accepting the whole-feature operators of §4.

pub mod catalog;
pub mod error;
pub mod exec;
pub mod governor;
pub mod indefinite;
pub mod ops;
pub mod optimizer;
pub mod par;
pub mod persist;
pub mod plan;
pub mod relational;
pub mod relation;
pub mod safety;
pub mod schema;
pub mod spatial_bridge;
pub mod tuple;
pub mod value;

pub use catalog::Catalog;
pub use error::{CoreError, Result};
pub use governor::{Budgets, Governor};
pub use par::{ExecOptions, ExecStats};
pub use plan::{Plan, Selection};
pub use relation::HRelation;
pub use schema::{AttrDef, AttrKind, AttrType, Schema};
pub use tuple::Tuple;
pub use value::Value;
