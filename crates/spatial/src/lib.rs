//! # cqa-spatial — geometry, whole-feature operators, and representation
//! flexibility for CQA/CDB
//!
//! This crate implements two sections of the paper:
//!
//! **§4 — whole-feature spatial operators.** Spatial data is organized as
//! *spatial constraint relations*: the feature ID is the only non-spatial
//! attribute, and the spatial extent is the rest. The operators
//! [`ops::buffer_join`] and [`ops::k_nearest`] are *whole-feature*
//! operators: they consume and produce relations keyed by feature IDs, so —
//! unlike a raw `distance` operator, whose output is not representable with
//! linear constraints — they are guaranteed **safe** (closed-form).
//! Distances are compared exactly: all predicates work on *squared*
//! distances, which are rational whenever the inputs are.
//!
//! **§6 — taking constraints out of CDBs.** The same spatial extent can be
//! represented as constraints (a union of convex polyhedra, one constraint
//! tuple each) or as vectors (point sequences). [`decompose`] converts
//! vector features to constraint tuples (ear clipping + Hertel–Mehlhorn
//! convex merging); [`convert`] converts back (vertex enumeration of convex
//! constraint cells); and [`convert::project_extent`] implements Example 8
//! — projection evaluated directly on the vector representation by taking
//! coordinate extrema.

pub mod convert;
pub mod decompose;
pub mod feature;
pub mod geom;
pub mod ops;
pub mod relation;
pub mod wkt;

pub use feature::{Feature, Geometry};
pub use geom::{Point, Segment};
pub use relation::SpatialRelation;
