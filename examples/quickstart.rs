//! Quickstart: build a heterogeneous constraint database, query it through
//! both the Rust API and the ASCII script language.
//!
//! Run with: `cargo run -p cqa --example quickstart`

use cqa::core::plan::{CmpOp, Plan, Selection};
use cqa::core::{exec, AttrDef, Catalog, HRelation, Schema, Value};
use cqa::lang::ScriptRunner;

fn main() {
    // --- 1. A heterogeneous schema: the C/R flag per attribute. ---------
    // `city` is relational (narrow nulls); `low`/`high` are constraint
    // attributes: each tuple stores a *range* of temperatures, i.e.
    // infinitely many points, finitely represented.
    let schema = Schema::new(vec![
        AttrDef::str_rel("city"),
        AttrDef::rat_con("temp"),
    ])
    .unwrap();

    let mut forecast = HRelation::new(schema);
    forecast
        .insert_with(|b| b.set("city", "Storrs").range("temp", -5, 8))
        .unwrap();
    forecast
        .insert_with(|b| b.set("city", "Hartford").range("temp", -2, 11))
        .unwrap();
    forecast
        .insert_with(|b| b.set("city", "Mystic").range("temp", 3, 14))
        .unwrap();

    println!("The Forecast relation (finite representation of infinite point sets):");
    println!("{}", forecast);

    // --- 2. Query through the algebra API. -------------------------------
    let mut catalog = Catalog::new();
    catalog.register("Forecast", forecast);

    // Which cities can reach exactly 12 degrees? Conjoining `temp = 12`
    // with each tuple's range keeps only satisfiable combinations.
    let plan = Plan::scan("Forecast")
        .select(Selection::all().cmp_int("temp", CmpOp::Eq, 12))
        .project(&["city"]);
    let answer = exec::execute(&plan, &catalog).unwrap();
    println!("Cities whose range admits 12°:");
    println!("{}", answer);
    assert!(answer.contains_point(&[Value::str("Mystic")]).unwrap());

    // --- 3. The same database through the §3.3 ASCII script syntax. -----
    let mut runner = ScriptRunner::new(catalog);
    let result = runner
        .run(
            "Freezing = select temp <= 0 from Forecast\n\
             Names = project Freezing on city\n",
        )
        .unwrap();
    println!("Cities whose range admits freezing temperatures (via script):");
    println!("{}", result);
    assert_eq!(result.len(), 2); // Storrs and Hartford

    // Intermediate script steps are regular catalog relations.
    let freezing = runner.catalog().get("Freezing").unwrap();
    println!(
        "The intermediate step kept its constraint form: {} tuple(s), e.g.\n  {}",
        freezing.len(),
        freezing.tuples()[0].display(freezing.schema())
    );
}
