//! Disjunctive normal forms — the body of a constraint relation.
//!
//! Per Definition 2 of the paper, the formula of a constraint relation is
//! the *disjunction* of the formulas of its constraint tuples, i.e. a
//! first-order formula in DNF. [`Dnf`] provides the closure operations the
//! Constraint Query Algebra needs at the relation level: union,
//! intersection, **negation** (needed by the difference operator),
//! projection, and satisfiability.

use crate::assignment::Assignment;
use crate::atom::Atom;
use crate::conj::Conjunction;
use crate::var::Var;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A disjunction of conjunctions of linear constraint atoms.
///
/// The empty disjunction is `false`; a disjunction containing the empty
/// conjunction is `true`.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Dnf {
    conjs: Vec<Conjunction>,
}

/// A DNF expansion outgrew the caller's disjunct budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnfBudgetExceeded {
    /// Disjunct count when the budget tripped.
    pub conjunctions: u64,
    /// The configured limit.
    pub limit: u64,
}

impl fmt::Display for DnfBudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DNF expansion exceeded its disjunct budget ({} conjunctions, limit {})",
            self.conjunctions, self.limit
        )
    }
}

impl std::error::Error for DnfBudgetExceeded {}

impl Dnf {
    /// The unsatisfiable formula `false` (no disjuncts).
    pub fn fals() -> Dnf {
        Dnf::default()
    }

    /// The valid formula `true` (one empty disjunct).
    pub fn tru() -> Dnf {
        Dnf { conjs: vec![Conjunction::tru()] }
    }

    /// A single-disjunct formula.
    pub fn from_conjunction(c: Conjunction) -> Dnf {
        Dnf { conjs: vec![c] }
    }

    /// Builds from disjuncts, dropping trivially false ones.
    pub fn from_conjunctions(cs: impl IntoIterator<Item = Conjunction>) -> Dnf {
        Dnf { conjs: cs.into_iter().filter(|c| !c.is_trivially_false()).collect() }
    }

    /// The disjuncts.
    pub fn conjunctions(&self) -> &[Conjunction] {
        &self.conjs
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.conjs.len()
    }

    /// Whether there are no disjuncts (syntactically false).
    pub fn is_empty(&self) -> bool {
        self.conjs.is_empty()
    }

    /// All variables mentioned.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.conjs.iter().flat_map(|c| c.vars()).collect()
    }

    /// Disjunction.
    pub fn or(&self, other: &Dnf) -> Dnf {
        Dnf::from_conjunctions(self.conjs.iter().chain(&other.conjs).cloned())
    }

    /// Conjunction: the cross product of disjuncts, unsatisfiable products
    /// dropped eagerly.
    pub fn and(&self, other: &Dnf) -> Dnf {
        // Without a cap `and_bounded` cannot fail.
        self.and_bounded(other, None).unwrap_or_default()
    }

    /// [`Self::and`] with an optional cap on the surviving disjunct count;
    /// exceeding it aborts the expansion with a typed error instead of
    /// letting the cross product grow without bound.
    pub fn and_bounded(
        &self,
        other: &Dnf,
        max_conjs: Option<u64>,
    ) -> Result<Dnf, DnfBudgetExceeded> {
        self.and_opt(other, max_conjs, None)
    }

    fn and_opt(
        &self,
        other: &Dnf,
        max_conjs: Option<u64>,
        built: Option<&AtomicU64>,
    ) -> Result<Dnf, DnfBudgetExceeded> {
        let mut out = Vec::new();
        for a in &self.conjs {
            for b in &other.conjs {
                if let Some(built) = built {
                    built.fetch_add(1, Ordering::Relaxed);
                }
                let c = a.and(b);
                if !c.is_trivially_false() && c.is_satisfiable() {
                    out.push(c);
                    if let Some(limit) = max_conjs {
                        if out.len() as u64 > limit {
                            return Err(DnfBudgetExceeded {
                                conjunctions: out.len() as u64,
                                limit,
                            });
                        }
                    }
                }
            }
        }
        Ok(Dnf { conjs: out })
    }

    /// Negation, re-normalized to DNF.
    ///
    /// `¬(C₁ ∨ … ∨ Cₙ) = ¬C₁ ∧ … ∧ ¬Cₙ`, and each `¬Cᵢ` is the disjunction
    /// of its atoms' negations; the conjunction of those disjunctions is
    /// expanded by distribution. This is worst-case exponential — which is
    /// exactly why the paper treats the difference operator (the only CQA
    /// operator that needs negation) as the expensive one.
    pub fn negate(&self) -> Dnf {
        self.negate_bounded(None).unwrap_or_default()
    }

    /// [`Self::negate`] with an optional cap on the intermediate disjunct
    /// count (the exponential distribution step is checked after each
    /// factor is multiplied in).
    pub fn negate_bounded(&self, max_conjs: Option<u64>) -> Result<Dnf, DnfBudgetExceeded> {
        self.negate_opt(max_conjs, None)
    }

    fn negate_opt(
        &self,
        max_conjs: Option<u64>,
        built: Option<&AtomicU64>,
    ) -> Result<Dnf, DnfBudgetExceeded> {
        let mut acc = Dnf::tru();
        for c in &self.conjs {
            // ¬C = ∨_{atom a ∈ C} ¬a   (each ¬a is 1–2 atoms)
            let mut neg_c = Vec::new();
            if c.is_empty() {
                return Ok(Dnf::fals()); // ¬true = false
            }
            for atom in c.atoms() {
                for n in atom.negate() {
                    neg_c.push(Conjunction::from_atoms([n]));
                }
            }
            acc = acc.and_opt(&Dnf::from_conjunctions(neg_c), max_conjs, built)?;
            if acc.is_empty() {
                return Ok(acc);
            }
        }
        Ok(acc)
    }

    /// Set difference `self ∧ ¬other`.
    pub fn minus(&self, other: &Dnf) -> Dnf {
        self.and(&other.negate())
    }

    /// [`Self::minus`] with an optional cap on intermediate disjunct counts.
    pub fn minus_bounded(
        &self,
        other: &Dnf,
        max_conjs: Option<u64>,
    ) -> Result<Dnf, DnfBudgetExceeded> {
        self.minus_counted(other, max_conjs, None)
    }

    /// [`Self::minus_bounded`] with instrumentation: every conjunction the
    /// distribution step constructs (kept or discarded) is counted into
    /// `built`, exposing the data-dependent negation blow-up that makes
    /// difference the expensive operator.
    pub fn minus_counted(
        &self,
        other: &Dnf,
        max_conjs: Option<u64>,
        built: Option<&AtomicU64>,
    ) -> Result<Dnf, DnfBudgetExceeded> {
        self.and_opt(&other.negate_opt(max_conjs, built)?, max_conjs, built)
    }

    /// Projects out `vars` from every disjunct (∃ distributes over ∨).
    pub fn eliminate(&self, vars: impl IntoIterator<Item = Var> + Clone) -> Dnf {
        Dnf::from_conjunctions(self.conjs.iter().map(|c| c.eliminate(vars.clone())))
    }

    /// Whether some disjunct is satisfiable.
    pub fn is_satisfiable(&self) -> bool {
        self.conjs.iter().any(|c| c.is_satisfiable())
    }

    /// Point membership: true iff some disjunct is satisfied. `None` if the
    /// assignment misses a variable of a disjunct that is not already
    /// decided by the bound ones.
    pub fn eval(&self, a: &Assignment) -> Option<bool> {
        let mut any_unknown = false;
        for c in &self.conjs {
            match c.eval(a) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => any_unknown = true,
            }
        }
        if any_unknown {
            None
        } else {
            Some(false)
        }
    }

    /// Drops unsatisfiable disjuncts and disjuncts absorbed by another
    /// (i.e. whose point set is contained in another disjunct's).
    pub fn normalize(&self) -> Dnf {
        let sat: Vec<Conjunction> =
            self.conjs.iter().filter(|c| c.is_satisfiable()).map(|c| c.simplify()).collect();
        let mut keep: Vec<bool> = vec![true; sat.len()];
        for i in 0..sat.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..sat.len() {
                if i == j || !keep[j] {
                    continue;
                }
                // Drop i if i ⊆ j (prefer dropping the later of equals).
                if sat[i].implies(&sat[j]) && (!sat[j].implies(&sat[i]) || j < i) {
                    keep[i] = false;
                    break;
                }
            }
        }
        Dnf {
            conjs: sat
                .into_iter()
                .zip(keep)
                .filter(|(_, k)| *k)
                .map(|(c, _)| c)
                .collect(),
        }
    }

    /// Whether every point of `self` is a point of `other`.
    /// Exact but potentially expensive (uses negation).
    pub fn contained_in(&self, other: &Dnf) -> bool {
        !self.minus(other).is_satisfiable()
    }

    /// Semantic equivalence.
    pub fn equivalent(&self, other: &Dnf) -> bool {
        self.contained_in(other) && other.contained_in(self)
    }

    /// Adds an atom to every disjunct (conjunction with a single atom).
    pub fn with_atom(&self, atom: &Atom) -> Dnf {
        Dnf::from_conjunctions(self.conjs.iter().map(|c| {
            let mut c = c.clone();
            c.add(atom.clone());
            c
        }))
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conjs.is_empty() {
            return f.write_str("false");
        }
        for (i, c) in self.conjs.iter().enumerate() {
            if i > 0 {
                f.write_str(" or ")?;
            }
            write!(f, "({})", c)?;
        }
        Ok(())
    }
}

impl fmt::Debug for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dnf({})", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::LinExpr;
    use cqa_num::Rat;

    fn x() -> Var {
        Var(0)
    }
    fn ri(v: i64) -> Rat {
        Rat::from_int(v)
    }
    fn between(v: Var, lo: i64, hi: i64) -> Conjunction {
        Conjunction::from_atoms([
            Atom::ge(LinExpr::var(v), LinExpr::constant_int(lo)),
            Atom::le(LinExpr::var(v), LinExpr::constant_int(hi)),
        ])
    }
    fn holds(d: &Dnf, v: i64) -> bool {
        d.eval(&Assignment::from_pairs([(x(), ri(v))])).unwrap()
    }

    #[test]
    fn truth_constants() {
        assert!(!Dnf::fals().is_satisfiable());
        assert!(Dnf::tru().is_satisfiable());
        assert_eq!(Dnf::tru().negate(), Dnf::fals());
        assert!(Dnf::fals().negate().equivalent(&Dnf::tru()));
    }

    #[test]
    fn union_and_membership() {
        let d = Dnf::from_conjunctions([between(x(), 0, 1), between(x(), 5, 6)]);
        assert!(holds(&d, 0));
        assert!(holds(&d, 6));
        assert!(!holds(&d, 3));
    }

    #[test]
    fn intersection() {
        let a = Dnf::from_conjunction(between(x(), 0, 10));
        let b = Dnf::from_conjunctions([between(x(), 5, 15), between(x(), -5, -1)]);
        let i = a.and(&b);
        assert!(holds(&i, 7));
        assert!(!holds(&i, 2)); // only in a
        assert!(!holds(&i, -3)); // a ∧ [-5,-1] is unsat, dropped
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn negation_complements_pointwise() {
        let d = Dnf::from_conjunctions([between(x(), 0, 2), between(x(), 5, 6)]);
        let n = d.negate();
        for v in -2..9 {
            assert_eq!(holds(&n, v), !holds(&d, v), "at {}", v);
        }
    }

    #[test]
    fn difference() {
        let a = Dnf::from_conjunction(between(x(), 0, 10));
        let b = Dnf::from_conjunction(between(x(), 3, 5));
        let diff = a.minus(&b);
        assert!(holds(&diff, 1));
        assert!(!holds(&diff, 4));
        assert!(holds(&diff, 9));
        // Difference with self is empty.
        assert!(!a.minus(&a).is_satisfiable());
    }

    #[test]
    fn containment_and_equivalence() {
        let small = Dnf::from_conjunction(between(x(), 2, 3));
        let big = Dnf::from_conjunction(between(x(), 0, 10));
        assert!(small.contained_in(&big));
        assert!(!big.contained_in(&small));
        let split = Dnf::from_conjunctions([between(x(), 0, 5), between(x(), 5, 10)]);
        assert!(split.equivalent(&big));
    }

    #[test]
    fn normalize_absorbs() {
        let d = Dnf::from_conjunctions([
            between(x(), 0, 10),
            between(x(), 2, 3), // absorbed
            Conjunction::from_atoms([
                Atom::ge(LinExpr::var(x()), LinExpr::constant_int(5)),
                Atom::le(LinExpr::var(x()), LinExpr::constant_int(4)),
            ]), // unsat
        ]);
        let n = d.normalize();
        assert_eq!(n.len(), 1);
        assert!(n.equivalent(&d));
    }

    #[test]
    fn projection_distributes() {
        let y = Var(1);
        let c1 = Conjunction::from_atoms([
            Atom::ge(LinExpr::var(x()), LinExpr::var(y)),
            Atom::ge(LinExpr::var(y), LinExpr::constant_int(3)),
        ]);
        let c2 = between(x(), 0, 1);
        let d = Dnf::from_conjunctions([c1, c2]).eliminate([y]);
        assert!(holds(&d, 5)); // from c1: x ≥ 3
        assert!(holds(&d, 1)); // from c2
        assert!(!holds(&d, 2));
    }

    #[test]
    fn display() {
        assert_eq!(Dnf::fals().to_string(), "false");
        let d = Dnf::from_conjunction(between(x(), 0, 1));
        assert!(d.to_string().starts_with('('));
    }

    #[test]
    fn bounded_ops_match_unbounded_under_generous_caps() {
        let a = Dnf::from_conjunctions([between(x(), 0, 10), between(x(), 20, 30)]);
        let b = Dnf::from_conjunction(between(x(), 3, 25));
        assert_eq!(a.and_bounded(&b, Some(1000)), Ok(a.and(&b)));
        assert_eq!(a.negate_bounded(Some(1000)), Ok(a.negate()));
        assert_eq!(a.minus_bounded(&b, Some(1000)), Ok(a.minus(&b)));
    }

    #[test]
    fn bounded_negation_trips_on_tight_cap() {
        let a = Dnf::from_conjunctions([between(x(), 0, 1), between(x(), 3, 4), between(x(), 6, 7)]);
        match a.negate_bounded(Some(1)) {
            Err(DnfBudgetExceeded { conjunctions, limit: 1 }) => assert!(conjunctions > 1),
            other => panic!("expected budget trip, got {:?}", other),
        }
    }
}
