//! A buffer pool with LRU replacement and disk-access accounting.
//!
//! The §5.4 experiments report "number of disk accesses"; in this system
//! that figure is read off [`AccessStats`]. Every page fetch counts one
//! *logical* access; a fetch that misses the pool and must go to the disk
//! manager counts one *physical* access. Running an experiment with a cold
//! (or deliberately tiny) pool makes logical ≈ physical, which is the
//! configuration the paper's experiments correspond to.

use crate::disk::DiskManager;
use crate::page::{PageId, PAGE_SIZE};
use crate::Result;
use std::collections::HashMap;

/// Counters of buffer-pool traffic.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AccessStats {
    /// Page fetches requested (one per page touched by an operation).
    pub logical: u64,
    /// Fetches that had to read from the disk manager.
    pub physical: u64,
    /// Dirty pages written back.
    pub writebacks: u64,
}

struct Frame {
    id: PageId,
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    last_used: u64,
}

/// A fixed-capacity page cache over a [`DiskManager`].
pub struct BufferPool<D: DiskManager> {
    disk: D,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    capacity: usize,
    clock: u64,
    stats: AccessStats,
}

impl<D: DiskManager> BufferPool<D> {
    /// Creates a pool caching at most `capacity` pages.
    pub fn new(disk: D, capacity: usize) -> BufferPool<D> {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            disk,
            frames: Vec::new(),
            map: HashMap::new(),
            capacity,
            clock: 0,
            stats: AccessStats::default(),
        }
    }

    /// Access statistics so far.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Resets the statistics (e.g. between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }

    /// Allocates a fresh page on the underlying disk.
    pub fn allocate(&mut self) -> Result<PageId> {
        self.disk.allocate()
    }

    /// Number of pages on the underlying disk.
    pub fn num_pages(&self) -> u64 {
        self.disk.num_pages()
    }

    /// Runs `f` with read access to the page.
    pub fn with_page<R>(&mut self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let idx = self.fetch(id)?;
        Ok(f(&self.frames[idx].data[..]))
    }

    /// Runs `f` with write access to the page, marking it dirty.
    pub fn with_page_mut<R>(&mut self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let idx = self.fetch(id)?;
        self.frames[idx].dirty = true;
        Ok(f(&mut self.frames[idx].data[..]))
    }

    /// Writes all dirty pages back to the disk manager.
    pub fn flush(&mut self) -> Result<()> {
        for frame in &mut self.frames {
            if frame.dirty {
                self.disk.write(frame.id, &frame.data[..])?;
                frame.dirty = false;
                self.stats.writebacks += 1;
            }
        }
        Ok(())
    }

    /// Evicts everything (flushing dirty pages), leaving the cache cold.
    pub fn clear(&mut self) -> Result<()> {
        self.flush()?;
        self.frames.clear();
        self.map.clear();
        Ok(())
    }

    fn fetch(&mut self, id: PageId) -> Result<usize> {
        self.clock += 1;
        self.stats.logical += 1;
        if let Some(&idx) = self.map.get(&id) {
            self.frames[idx].last_used = self.clock;
            return Ok(idx);
        }
        self.stats.physical += 1;
        let mut data = Box::new([0u8; PAGE_SIZE]);
        self.disk.read(id, &mut data[..])?;
        let idx = if self.frames.len() < self.capacity {
            self.frames.push(Frame { id, data, dirty: false, last_used: self.clock });
            self.frames.len() - 1
        } else {
            // Evict the least recently used frame.
            let victim = self
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(i, _)| i)
                .expect("capacity > 0");
            let old = &mut self.frames[victim];
            if old.dirty {
                self.disk.write(old.id, &old.data[..])?;
                self.stats.writebacks += 1;
            }
            self.map.remove(&old.id);
            *old = Frame { id, data, dirty: false, last_used: self.clock };
            victim
        };
        self.map.insert(id, idx);
        Ok(idx)
    }

    /// Consumes the pool, flushing and returning the disk manager.
    pub fn into_disk(mut self) -> Result<D> {
        self.flush()?;
        Ok(self.disk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    #[test]
    fn caches_hot_pages() {
        let mut pool = BufferPool::new(MemDisk::new(), 2);
        let a = pool.allocate().unwrap();
        pool.with_page(a, |_| ()).unwrap();
        pool.with_page(a, |_| ()).unwrap();
        pool.with_page(a, |_| ()).unwrap();
        let s = pool.stats();
        assert_eq!(s.logical, 3);
        assert_eq!(s.physical, 1);
    }

    #[test]
    fn lru_evicts_coldest() {
        let mut pool = BufferPool::new(MemDisk::new(), 2);
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        let c = pool.allocate().unwrap();
        pool.with_page(a, |_| ()).unwrap(); // a
        pool.with_page(b, |_| ()).unwrap(); // a b
        pool.with_page(a, |_| ()).unwrap(); // b a (a hot)
        pool.with_page(c, |_| ()).unwrap(); // evicts b
        pool.with_page(a, |_| ()).unwrap(); // hit
        assert_eq!(pool.stats().physical, 3);
        pool.with_page(b, |_| ()).unwrap(); // miss again
        assert_eq!(pool.stats().physical, 4);
    }

    #[test]
    fn writes_survive_eviction_and_flush() {
        let mut pool = BufferPool::new(MemDisk::new(), 1);
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        pool.with_page_mut(a, |p| p[0] = 42).unwrap();
        pool.with_page(b, |_| ()).unwrap(); // evicts dirty a
        let v = pool.with_page(a, |p| p[0]).unwrap();
        assert_eq!(v, 42);
        assert!(pool.stats().writebacks >= 1);
        pool.with_page_mut(a, |p| p[1] = 7).unwrap();
        let mut disk = pool.into_disk().unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        disk.read(a, &mut buf).unwrap();
        assert_eq!((buf[0], buf[1]), (42, 7));
    }

    #[test]
    fn reset_and_clear() {
        let mut pool = BufferPool::new(MemDisk::new(), 4);
        let a = pool.allocate().unwrap();
        pool.with_page(a, |_| ()).unwrap();
        pool.reset_stats();
        assert_eq!(pool.stats(), AccessStats::default());
        pool.clear().unwrap();
        pool.with_page(a, |_| ()).unwrap();
        assert_eq!(pool.stats().physical, 1, "cold after clear");
    }
}
