//! Atomic linear constraints.
//!
//! An [`Atom`] is `e = 0`, `e ≤ 0`, or `e < 0` for a linear expression `e`.
//! The richer surface forms (`e₁ ≥ e₂`, `e₁ > e₂`, `e₁ = e₂`) normalize into
//! these three at construction. Atoms are kept in a canonical scaling —
//! integer coefficients with content 1, and for equations a positive leading
//! coefficient — so semantically identical atoms are structurally equal,
//! which lets conjunctions deduplicate syntactically.

use crate::assignment::Assignment;
use crate::linexpr::LinExpr;
use crate::var::Var;
use cqa_num::{BigInt, Rat};
use std::fmt;

/// The relation of an atom to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rel {
    /// `e = 0`
    Eq,
    /// `e ≤ 0`
    Le,
    /// `e < 0`
    Lt,
}

impl Rel {
    /// Whether the relation admits the boundary (`=` or `≤`).
    pub fn admits_equality(self) -> bool {
        matches!(self, Rel::Eq | Rel::Le)
    }

    /// The strictness resulting from chaining two bounds (used by
    /// Fourier–Motzkin): strict if either side is strict.
    pub fn chain(self, other: Rel) -> Rel {
        debug_assert!(self != Rel::Eq && other != Rel::Eq);
        if self == Rel::Lt || other == Rel::Lt {
            Rel::Lt
        } else {
            Rel::Le
        }
    }
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rel::Eq => "=",
            Rel::Le => "<=",
            Rel::Lt => "<",
        })
    }
}

/// An atomic constraint `expr rel 0` in canonical scaling.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    expr: LinExpr,
    rel: Rel,
}

impl Atom {
    /// Builds `expr rel 0`, canonicalizing the scaling.
    pub fn new(expr: LinExpr, rel: Rel) -> Atom {
        Atom { expr, rel }.canonicalize()
    }

    /// `lhs = rhs`.
    pub fn eq(lhs: LinExpr, rhs: LinExpr) -> Atom {
        Atom::new(&lhs - &rhs, Rel::Eq)
    }

    /// `lhs ≤ rhs`.
    pub fn le(lhs: LinExpr, rhs: LinExpr) -> Atom {
        Atom::new(&lhs - &rhs, Rel::Le)
    }

    /// `lhs < rhs`.
    pub fn lt(lhs: LinExpr, rhs: LinExpr) -> Atom {
        Atom::new(&lhs - &rhs, Rel::Lt)
    }

    /// `lhs ≥ rhs`.
    pub fn ge(lhs: LinExpr, rhs: LinExpr) -> Atom {
        Atom::le(rhs, lhs)
    }

    /// `lhs > rhs`.
    pub fn gt(lhs: LinExpr, rhs: LinExpr) -> Atom {
        Atom::lt(rhs, lhs)
    }

    /// `v = c` for a constant.
    pub fn var_eq_const(v: Var, c: Rat) -> Atom {
        Atom::eq(LinExpr::var(v), LinExpr::constant(c))
    }

    /// The always-false atom `1 ≤ 0`, used as the canonical contradiction.
    pub fn falsum() -> Atom {
        Atom { expr: LinExpr::constant_int(1), rel: Rel::Le }
    }

    /// The expression compared against zero.
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// The relation against zero.
    pub fn rel(&self) -> Rel {
        self.rel
    }

    /// Scales to integer coefficients with content 1; for equations also
    /// flips so the leading coefficient (or, for ground atoms, the constant)
    /// is positive.
    fn canonicalize(mut self) -> Atom {
        if self.expr.is_zero() {
            return self;
        }
        // Multiplier = lcm(denominators) / gcd(numerators) over all
        // coefficients and the constant term.
        let mut lcm_den = BigInt::one();
        let mut gcd_num = BigInt::zero();
        {
            let mut feed = |r: &Rat| {
                if !r.is_zero() {
                    let d = r.denom();
                    let g = lcm_den.gcd(d);
                    lcm_den = &lcm_den * &(d / &g);
                    gcd_num = gcd_num.gcd(r.numer());
                }
            };
            for (_, c) in self.expr.terms() {
                feed(c);
            }
            feed(self.expr.constant_term());
        }
        if gcd_num.is_zero() {
            return self; // expression was zero (handled above), defensive
        }
        let mult = Rat::new(lcm_den, gcd_num); // positive: gcd & lcm are positive
        if mult != Rat::one() {
            self.expr = self.expr.scale(&mult);
        }
        if self.rel == Rel::Eq {
            let flip = match self.expr.leading_coeff() {
                Some(c) => c.is_negative(),
                None => self.expr.constant_term().is_negative(),
            };
            if flip {
                self.expr = -&self.expr;
            }
        }
        self
    }

    /// If the atom mentions no variables, its truth value.
    pub fn ground_truth(&self) -> Option<bool> {
        if !self.expr.is_constant() {
            return None;
        }
        let c = self.expr.constant_term();
        Some(match self.rel {
            Rel::Eq => c.is_zero(),
            Rel::Le => !c.is_positive(),
            Rel::Lt => c.is_negative(),
        })
    }

    /// Whether the atom is trivially true (e.g. `0 ≤ 0`).
    pub fn is_trivially_true(&self) -> bool {
        self.ground_truth() == Some(true)
    }

    /// Whether the atom is trivially false (e.g. `1 ≤ 0`).
    pub fn is_trivially_false(&self) -> bool {
        self.ground_truth() == Some(false)
    }

    /// Whether `v` occurs in the atom.
    pub fn mentions(&self, v: Var) -> bool {
        self.expr.mentions(v)
    }

    /// Variables mentioned, in order.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.expr.vars()
    }

    /// Evaluates under an assignment; `None` if some variable is unbound.
    pub fn eval(&self, a: &Assignment) -> Option<bool> {
        let val = self.expr.eval(a)?;
        Some(match self.rel {
            Rel::Eq => val.is_zero(),
            Rel::Le => !val.is_positive(),
            Rel::Lt => val.is_negative(),
        })
    }

    /// Replaces `v` by `repl` everywhere.
    pub fn substitute(&self, v: Var, repl: &LinExpr) -> Atom {
        Atom::new(self.expr.substitute(v, repl), self.rel)
    }

    /// The negation, as a disjunction of atoms:
    ///
    /// * `¬(e = 0)` → `e < 0 ∨ -e < 0`
    /// * `¬(e ≤ 0)` → `-e < 0`
    /// * `¬(e < 0)` → `-e ≤ 0`
    pub fn negate(&self) -> Vec<Atom> {
        match self.rel {
            Rel::Eq => vec![
                Atom::new(self.expr.clone(), Rel::Lt),
                Atom::new(-&self.expr, Rel::Lt),
            ],
            Rel::Le => vec![Atom::new(-&self.expr, Rel::Lt)],
            Rel::Lt => vec![Atom::new(-&self.expr, Rel::Le)],
        }
    }

    /// Renames `from` to `to` (which must be fresh in the atom).
    pub fn rename(&self, from: Var, to: Var) -> Atom {
        debug_assert!(!self.mentions(to));
        self.substitute(from, &LinExpr::var(to))
    }

    /// Renders with a custom variable printer, as `lhs rel rhs` with the
    /// constant moved to the right-hand side.
    pub fn display_with<'a>(&'a self, name: &'a dyn Fn(Var) -> String) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Atom, &'a dyn Fn(Var) -> String);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let mut lhs = self.0.expr.clone();
                let c = lhs.constant_term().clone();
                lhs.set_constant(Rat::zero());
                let rhs = -c;
                let lhs_d = lhs.display_with(self.1);
                write!(f, "{} {} {}", lhs_d, self.0.rel, rhs)
            }
        }
        D(self, name)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |v: Var| v.to_string();
        let d = self.display_with(&name);
        write!(f, "{}", d)
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Atom({})", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(p: i64, q: i64) -> Rat {
        Rat::from_pair(p, q)
    }
    fn x() -> Var {
        Var(0)
    }
    fn y() -> Var {
        Var(1)
    }

    #[test]
    fn canonical_scaling_merges_equivalent_atoms() {
        // x/2 + y/3 ≤ 1   and   3x + 2y ≤ 6 are the same atom.
        let a1 = Atom::le(
            LinExpr::from_terms([(x(), r(1, 2)), (y(), r(1, 3))], Rat::zero()),
            LinExpr::constant_int(1),
        );
        let a2 = Atom::le(
            LinExpr::from_terms([(x(), r(3, 1)), (y(), r(2, 1))], Rat::zero()),
            LinExpr::constant_int(6),
        );
        assert_eq!(a1, a2);
    }

    #[test]
    fn equation_sign_canonical() {
        // x - y = 0 and y - x = 0 are the same atom.
        let a1 = Atom::eq(LinExpr::var(x()), LinExpr::var(y()));
        let a2 = Atom::eq(LinExpr::var(y()), LinExpr::var(x()));
        assert_eq!(a1, a2);
        // But x - y ≤ 0 and y - x ≤ 0 differ.
        let b1 = Atom::le(LinExpr::var(x()), LinExpr::var(y()));
        let b2 = Atom::le(LinExpr::var(y()), LinExpr::var(x()));
        assert_ne!(b1, b2);
    }

    #[test]
    fn ground_truth() {
        assert_eq!(Atom::new(LinExpr::constant_int(0), Rel::Eq).ground_truth(), Some(true));
        assert_eq!(Atom::new(LinExpr::constant_int(1), Rel::Eq).ground_truth(), Some(false));
        assert_eq!(Atom::new(LinExpr::constant_int(-1), Rel::Lt).ground_truth(), Some(true));
        assert_eq!(Atom::new(LinExpr::constant_int(0), Rel::Lt).ground_truth(), Some(false));
        assert_eq!(Atom::new(LinExpr::constant_int(0), Rel::Le).ground_truth(), Some(true));
        assert_eq!(Atom::new(LinExpr::var(x()), Rel::Le).ground_truth(), None);
        assert!(Atom::falsum().is_trivially_false());
    }

    #[test]
    fn eval() {
        // 2x - y < 0
        let a = Atom::lt(
            LinExpr::from_terms([(x(), r(2, 1))], Rat::zero()),
            LinExpr::var(y()),
        );
        let mut asg = Assignment::new();
        asg.set(x(), r(1, 1));
        asg.set(y(), r(3, 1));
        assert_eq!(a.eval(&asg), Some(true));
        asg.set(y(), r(2, 1));
        assert_eq!(a.eval(&asg), Some(false));
        let partial = Assignment::from_pairs([(x(), r(1, 1))]);
        assert_eq!(a.eval(&partial), None);
    }

    #[test]
    fn negation_is_complement() {
        let atoms = vec![
            Atom::eq(LinExpr::var(x()), LinExpr::constant_int(2)),
            Atom::le(LinExpr::var(x()), LinExpr::constant_int(2)),
            Atom::lt(LinExpr::var(x()), LinExpr::constant_int(2)),
        ];
        for a in atoms {
            let neg = a.negate();
            for val in [0i64, 1, 2, 3, 4] {
                let asg = Assignment::from_pairs([(x(), Rat::from_int(val))]);
                let original = a.eval(&asg).unwrap();
                let negated = neg.iter().any(|n| n.eval(&asg).unwrap());
                assert_eq!(original, !negated, "atom {} at {}", a, val);
            }
        }
    }

    #[test]
    fn ge_gt_flip() {
        let a = Atom::ge(LinExpr::var(x()), LinExpr::constant_int(4));
        // x >= 4  ⇒  4 - x <= 0, canonical integers
        let asg = Assignment::from_pairs([(x(), Rat::from_int(4))]);
        assert_eq!(a.eval(&asg), Some(true));
        let b = Atom::gt(LinExpr::var(x()), LinExpr::constant_int(4));
        assert_eq!(b.eval(&asg), Some(false));
    }

    #[test]
    fn display() {
        let a = Atom::le(
            LinExpr::from_terms([(x(), r(1, 1)), (y(), r(1, 1))], Rat::zero()),
            LinExpr::constant_int(2),
        );
        assert_eq!(a.to_string(), "v0 + v1 <= 2");
        let e = Atom::var_eq_const(x(), r(5, 2));
        assert_eq!(e.to_string(), "2*v0 = 5");
    }

    #[test]
    fn substitution() {
        // x + y ≤ 2 with x := 1 - y  →  1 ≤ 2 (trivially true)
        let a = Atom::le(
            LinExpr::from_terms([(x(), r(1, 1)), (y(), r(1, 1))], Rat::zero()),
            LinExpr::constant_int(2),
        );
        let repl = LinExpr::from_terms([(y(), r(-1, 1))], r(1, 1));
        let out = a.substitute(x(), &repl);
        assert!(out.is_trivially_true());
    }
}
