//! `Option` strategies (`prop::option::{of, weighted}`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `Some` with probability 1/2.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner, some_probability: 0.5 }
}

/// `Some` with the given probability.
pub fn weighted<S: Strategy>(some_probability: f64, inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner, some_probability }
}

/// See [`of`] / [`weighted`].
pub struct OptionStrategy<S> {
    inner: S,
    some_probability: f64,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.unit_f64() < self.some_probability {
            Some(self.inner.sample_value(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_probability_holds_roughly() {
        let mut rng = TestRng::from_seed(10);
        let s = weighted(0.9, 0u8..10);
        let some = (0..1000).filter(|_| s.sample_value(&mut rng).is_some()).count();
        assert!((850..=950).contains(&some), "got {some} Somes");
    }
}
