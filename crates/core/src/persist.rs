//! Persistence of heterogeneous relations through the storage layer.
//!
//! Figure 1 of the paper puts a disk access layer beneath the CQA layer;
//! this module is the bridge: schemas and tuples serialize into heap-file
//! records ([`cqa_storage::HeapFile`]), one record per tuple, with the
//! schema in record 0. Rationals serialize exactly (no rounding — the
//! representation invariant of §3.3 survives a round trip through disk).
//!
//! Format (all integers little-endian, via [`cqa_storage::codec`]):
//!
//! ```text
//! record 0:            schema = arity, then per attribute:
//!                      name, type tag (0 str, 1 rat), kind tag (0 rel, 1 con)
//! records 1..:         tuple = per attribute value slot:
//!                        0 = absent, 1 = string, 2 = rational
//!                      then the constraint part: atom count, then per atom:
//!                        rel tag (0 =, 1 ≤, 2 <), term count,
//!                        per term (var index, coefficient), constant
//! rational:            numerator bytes, denominator bytes (BigInt encoding)
//! ```

use crate::error::CoreError;
use crate::relation::HRelation;
use crate::schema::{AttrDef, AttrKind, AttrType, Schema};
use crate::tuple::Tuple;
use crate::value::Value;
use cqa_constraints::{Atom, Conjunction, LinExpr, Rel, Var};
use cqa_num::{BigInt, Rat};
use cqa_storage::codec::{Reader, Writer};
use cqa_storage::{BufferPool, DiskManager, HeapFile, StorageError};

/// Errors from persistence: storage failures or malformed records.
#[derive(Debug)]
pub enum PersistError {
    /// The storage layer failed.
    Storage(StorageError),
    /// The records do not decode to a valid relation.
    Corrupt(&'static str),
    /// Schema-level validation failed after decoding.
    Core(CoreError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Storage(e) => write!(f, "storage error: {}", e),
            PersistError::Corrupt(what) => write!(f, "corrupt relation file: {}", what),
            PersistError::Core(e) => write!(f, "invalid persisted relation: {}", e),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<StorageError> for PersistError {
    fn from(e: StorageError) -> Self {
        PersistError::Storage(e)
    }
}

impl From<CoreError> for PersistError {
    fn from(e: CoreError) -> Self {
        PersistError::Core(e)
    }
}

type PResult<T> = std::result::Result<T, PersistError>;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn write_bigint(w: &mut Writer, v: &BigInt) {
    w.bytes(&v.to_bytes());
}

fn write_rat(w: &mut Writer, r: &Rat) {
    write_bigint(w, r.numer());
    write_bigint(w, r.denom());
}

fn encode_schema(schema: &Schema) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(schema.arity() as u32);
    for a in schema.attrs() {
        w.str(&a.name);
        w.u8(match a.ty {
            AttrType::Str => 0,
            AttrType::Rat => 1,
        });
        w.u8(match a.kind {
            AttrKind::Relational => 0,
            AttrKind::Constraint => 1,
        });
    }
    w.finish()
}

fn encode_tuple(schema: &Schema, t: &Tuple) -> Vec<u8> {
    let mut w = Writer::new();
    for i in 0..schema.arity() {
        match t.value(i) {
            None => {
                w.u8(0);
            }
            Some(Value::Str(s)) => {
                w.u8(1);
                w.str(s);
            }
            Some(Value::Rat(r)) => {
                w.u8(2);
                write_rat(&mut w, r);
            }
        }
    }
    let atoms: Vec<&Atom> = t.constraint().atoms().collect();
    w.u32(atoms.len() as u32);
    for a in atoms {
        w.u8(match a.rel() {
            Rel::Eq => 0,
            Rel::Le => 1,
            Rel::Lt => 2,
        });
        let terms: Vec<(Var, &Rat)> = a.expr().terms().collect();
        w.u32(terms.len() as u32);
        for (v, c) in terms {
            w.u32(v.0);
            write_rat(&mut w, c);
        }
        write_rat(&mut w, a.expr().constant_term());
    }
    w.finish()
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn read_bigint(r: &mut Reader<'_>) -> PResult<BigInt> {
    BigInt::from_bytes(r.bytes()?).ok_or(PersistError::Corrupt("bad bigint"))
}

fn read_rat(r: &mut Reader<'_>) -> PResult<Rat> {
    let num = read_bigint(r)?;
    let den = read_bigint(r)?;
    if den.is_zero() || den.is_negative() {
        return Err(PersistError::Corrupt("bad rational denominator"));
    }
    Ok(Rat::new(num, den))
}

fn decode_schema(bytes: &[u8]) -> PResult<Schema> {
    let mut r = Reader::new(bytes);
    let arity = r.u32()? as usize;
    // An attribute costs at least 6 encoded bytes; an impossible arity is
    // corruption, and pre-allocating from it would be an abort vector.
    if arity > r.remaining() / 6 {
        return Err(PersistError::Corrupt("implausible arity"));
    }
    let mut attrs = Vec::with_capacity(arity);
    for _ in 0..arity {
        let name = r.str()?.to_string();
        let ty = match r.u8()? {
            0 => AttrType::Str,
            1 => AttrType::Rat,
            _ => return Err(PersistError::Corrupt("bad type tag")),
        };
        let kind = match r.u8()? {
            0 => AttrKind::Relational,
            1 => AttrKind::Constraint,
            _ => return Err(PersistError::Corrupt("bad kind tag")),
        };
        attrs.push(AttrDef { name, ty, kind });
    }
    if !r.at_end() {
        return Err(PersistError::Corrupt("trailing bytes after schema"));
    }
    Ok(Schema::new(attrs)?)
}

fn decode_tuple(schema: &Schema, bytes: &[u8]) -> PResult<Tuple> {
    let mut r = Reader::new(bytes);
    let mut values: Vec<Option<Value>> = Vec::with_capacity(schema.arity().min(bytes.len()));
    for _ in 0..schema.arity() {
        match r.u8()? {
            0 => values.push(None),
            1 => values.push(Some(Value::Str(r.str()?.to_string()))),
            2 => values.push(Some(Value::Rat(read_rat(&mut r)?))),
            _ => return Err(PersistError::Corrupt("bad value tag")),
        }
    }
    let atom_count = r.u32()? as usize;
    let mut conj = Conjunction::tru();
    for _ in 0..atom_count {
        let rel = match r.u8()? {
            0 => Rel::Eq,
            1 => Rel::Le,
            2 => Rel::Lt,
            _ => return Err(PersistError::Corrupt("bad rel tag")),
        };
        let term_count = r.u32()? as usize;
        let mut expr = LinExpr::zero();
        for _ in 0..term_count {
            let var = r.u32()?;
            if var as usize >= schema.arity() {
                return Err(PersistError::Corrupt("atom variable out of schema range"));
            }
            let coeff = read_rat(&mut r)?;
            expr.add_term(Var(var), coeff);
        }
        expr.set_constant(read_rat(&mut r)?);
        conj.add(Atom::new(expr, rel));
    }
    if !r.at_end() {
        return Err(PersistError::Corrupt("trailing bytes after tuple"));
    }
    Ok(Tuple::from_parts(values, conj))
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Writes the relation into a fresh heap file through the pool; returns
/// the heap file (whose page list addresses the relation on disk).
pub fn save_relation<D: DiskManager>(
    rel: &HRelation,
    pool: &mut BufferPool<D>,
) -> PResult<HeapFile> {
    let mut heap = HeapFile::create();
    heap.insert(pool, &encode_schema(rel.schema()))?;
    for t in rel.tuples() {
        heap.insert(pool, &encode_tuple(rel.schema(), t))?;
    }
    pool.flush()?;
    Ok(heap)
}

/// Reads a relation back from a heap file written by [`save_relation`].
pub fn load_relation<D: DiskManager>(
    heap: &HeapFile,
    pool: &mut BufferPool<D>,
) -> PResult<HRelation> {
    let records = heap.scan(pool)?;
    let mut iter = records.into_iter();
    let (_, schema_bytes) =
        iter.next().ok_or(PersistError::Corrupt("empty relation file"))?;
    let schema = decode_schema(&schema_bytes)?;
    let mut rel = HRelation::new(schema);
    for (_, bytes) in iter {
        let t = decode_tuple(rel.schema(), &bytes)?;
        rel.insert(t);
    }
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_storage::MemDisk;

    fn pool() -> BufferPool<MemDisk> {
        BufferPool::new(MemDisk::new(), 16)
    }

    fn sample_relation() -> HRelation {
        let schema = Schema::new(vec![
            AttrDef::str_rel("name"),
            AttrDef::rat_rel("count"),
            AttrDef::rat_con("x"),
            AttrDef::rat_con("y"),
        ])
        .unwrap();
        let mut r = HRelation::new(schema);
        r.insert_with(|b| {
            b.set("name", "alpha")
                .set("count", Value::rat(Rat::from_pair(22, 7)))
                .range("x", 0, 5)
                .range_rat("y", Rat::from_pair(-1, 3), Rat::from_pair(7, 2))
        })
        .unwrap();
        // A tuple with a null and an equational constraint linking x and y.
        r.insert_with(|b| {
            use cqa_constraints::{Atom, LinExpr};
            b.set("name", "beta").atom(Atom::eq(
                LinExpr::var(Var(2)),
                LinExpr::from_terms([(Var(3), Rat::from_int(2))], Rat::from_pair(1, 2)),
            ))
        })
        .unwrap();
        // A broad tuple: no values, no constraints.
        r.insert_with(|b| b).unwrap();
        r
    }

    #[test]
    fn roundtrip_preserves_relation_exactly() {
        let rel = sample_relation();
        let mut pool = pool();
        let heap = save_relation(&rel, &mut pool).unwrap();
        let back = load_relation(&heap, &mut pool).unwrap();
        assert_eq!(rel, back);
    }

    #[test]
    fn roundtrip_preserves_semantics_through_cold_pool() {
        let rel = sample_relation();
        let mut pool = pool();
        let heap = save_relation(&rel, &mut pool).unwrap();
        pool.clear().unwrap(); // force re-reads from the disk manager
        let back = load_relation(&heap, &mut pool).unwrap();
        let point = [
            Value::str("alpha"),
            Value::rat(Rat::from_pair(22, 7)),
            Value::int(3),
            Value::int(1),
        ];
        assert_eq!(
            rel.contains_point(&point).unwrap(),
            back.contains_point(&point).unwrap()
        );
    }

    #[test]
    fn huge_rationals_survive() {
        let schema = Schema::new(vec![AttrDef::rat_con("x")]).unwrap();
        let mut rel = HRelation::new(schema);
        let big = Rat::new(BigInt::from(3).pow(200), BigInt::from(7).pow(150));
        rel.insert_with(|b| b.range_rat("x", -&big, big.clone())).unwrap();
        let mut pool = pool();
        let heap = save_relation(&rel, &mut pool).unwrap();
        let back = load_relation(&heap, &mut pool).unwrap();
        assert_eq!(rel, back);
    }

    #[test]
    fn empty_relation_roundtrips() {
        let schema = Schema::new(vec![AttrDef::str_rel("only")]).unwrap();
        let rel = HRelation::new(schema);
        let mut pool = pool();
        let heap = save_relation(&rel, &mut pool).unwrap();
        let back = load_relation(&heap, &mut pool).unwrap();
        assert_eq!(rel, back);
        assert!(back.is_empty());
    }

    #[test]
    fn corrupt_records_detected() {
        let mut pool = pool();
        let mut heap = HeapFile::create();
        heap.insert(&mut pool, b"garbage that is not a schema").unwrap();
        assert!(load_relation(&heap, &mut pool).is_err());
        let empty = HeapFile::create();
        assert!(matches!(
            load_relation(&empty, &mut pool),
            Err(PersistError::Corrupt("empty relation file"))
        ));
    }

    #[test]
    fn file_backed_roundtrip() {
        use cqa_storage::FileDisk;
        let dir = std::env::temp_dir().join(format!("cqa_persist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rel.db");
        let rel = sample_relation();
        let pages;
        {
            let disk = FileDisk::open(&path).unwrap();
            let mut pool = BufferPool::new(disk, 4);
            let heap = save_relation(&rel, &mut pool).unwrap();
            pages = heap.pages().to_vec();
            pool.into_disk().unwrap();
        }
        {
            let disk = FileDisk::open(&path).unwrap();
            let mut pool = BufferPool::new(disk, 4);
            let heap = HeapFile::from_pages(pages);
            let back = load_relation(&heap, &mut pool).unwrap();
            assert_eq!(rel, back);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
