//! The `.cdb` file format: schema declarations, constraint tuples, and
//! spatial (vector-model) relations.
//!
//! ```text
//! relation Land {
//!   landId: string relational;
//!   x: rational constraint;
//!   y: rational constraint;
//! }
//!
//! tuple Land { landId = "A"; 0 <= x; x <= 2; 3 <= y; y <= 6 }
//!
//! spatial Roads {
//!   feature "r1" polyline (0, 0) (10, 5) (20, 5);
//!   feature "lake" polygon (0, 0) (4, 0) (4, 4) (0, 4);
//!   feature "well" point (3, 3);
//! }
//! ```
//!
//! Tuple conditions are the same comparisons as query selections; an
//! equality pinning a relational attribute (`landId = "A"`, `age = 30`)
//! stores a value, everything else becomes a constraint atom over the
//! schema's constraint attributes. Spatial relations use the *vector*
//! representation directly — the §6 flexibility — and can be converted to
//! constraint form through `cqa_spatial::decompose`.

use crate::ast::{AstOp, Cond, CondSide};
use crate::lex::{lex, LangError, Tok};
use crate::parse::Parser;
use cqa_core::{AttrDef, AttrKind, AttrType, Catalog, HRelation, Schema, Tuple, Value};
use cqa_num::Rat;
use cqa_spatial::{Feature, Geometry, Point, SpatialRelation};
use std::collections::BTreeMap;

/// The parsed contents of a `.cdb` file.
#[derive(Default)]
pub struct CdbFile {
    /// Heterogeneous relations, in declaration order.
    pub relations: Vec<(String, HRelation)>,
    /// Spatial relations, in declaration order.
    pub spatial: Vec<(String, SpatialRelation)>,
}

impl CdbFile {
    /// Registers everything into a catalog.
    pub fn load_into(self, catalog: &mut Catalog) {
        for (name, rel) in self.relations {
            catalog.register(name, rel);
        }
        for (name, rel) in self.spatial {
            catalog.register_spatial(name, rel);
        }
    }
}

/// Parses a `.cdb` file.
pub fn parse_cdb(input: &str) -> Result<CdbFile, LangError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut file = CdbFile::default();
    let mut relations: BTreeMap<String, HRelation> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();

    loop {
        p.skip_newlines();
        if p.peek_is(&Tok::Eof) {
            break;
        }
        if p.peek_keyword("relation") {
            p.next();
            let name = p.ident()?;
            let schema = parse_schema_block(&mut p)?;
            if relations.insert(name.clone(), HRelation::new(schema)).is_none() {
                order.push(name);
            }
        } else if p.peek_keyword("tuple") {
            p.next();
            let name = p.ident()?;
            let line = p.peek().line;
            let conds = parse_tuple_block(&mut p)?;
            let rel = relations
                .get_mut(&name)
                .ok_or_else(|| LangError::new(line, 1, format!("tuple for undeclared relation {:?}", name)))?;
            let tuple = build_tuple(rel.schema(), &conds, line)?;
            rel.insert(tuple);
        } else if p.peek_keyword("spatial") {
            p.next();
            let name = p.ident()?;
            let rel = parse_spatial_block(&mut p)?;
            file.spatial.push((name, rel));
        } else {
            return Err(LangError::new(
                p.peek().line,
                p.peek().col,
                format!("expected 'relation', 'tuple', or 'spatial', found {}", p.peek().tok),
            ));
        }
    }
    for name in order {
        let rel = relations.remove(&name).expect("ordered key");
        file.relations.push((name, rel));
    }
    Ok(file)
}

pub(crate) fn parse_schema_block(p: &mut Parser) -> Result<Schema, LangError> {
    p.expect(Tok::LBrace)?;
    let mut attrs = Vec::new();
    loop {
        if p.peek_is(&Tok::RBrace) {
            p.next();
            break;
        }
        let name = p.ident()?;
        p.expect(Tok::Colon)?;
        let line = p.peek().line;
        let ty_word = p.ident()?;
        let ty = match ty_word.to_ascii_lowercase().as_str() {
            "string" => AttrType::Str,
            "rational" => AttrType::Rat,
            other => {
                return Err(LangError::new(line, 1, format!("unknown type {:?} (string or rational)", other)))
            }
        };
        let kind_word = p.ident()?;
        let kind = match kind_word.to_ascii_lowercase().as_str() {
            "relational" => AttrKind::Relational,
            "constraint" => AttrKind::Constraint,
            other => {
                return Err(LangError::new(
                    line,
                    1,
                    format!("unknown kind {:?} (relational or constraint)", other),
                ))
            }
        };
        attrs.push(AttrDef { name, ty, kind });
        if p.peek_is(&Tok::Semi) {
            p.next();
        }
    }
    let line = p.peek().line;
    Schema::new(attrs).map_err(|e| LangError::new(line, 1, e.to_string()))
}

pub(crate) fn parse_tuple_block(p: &mut Parser) -> Result<Vec<Cond>, LangError> {
    p.expect(Tok::LBrace)?;
    let mut conds = Vec::new();
    loop {
        if p.peek_is(&Tok::RBrace) {
            p.next();
            break;
        }
        conds.push(p.condition()?);
        if p.peek_is(&Tok::Semi) {
            p.next();
        }
    }
    Ok(conds)
}

/// Turns the conditions of a `tuple` block into a heterogeneous tuple.
pub(crate) fn build_tuple(schema: &Schema, conds: &[Cond], line: usize) -> Result<Tuple, LangError> {
    let err = |msg: String| LangError::new(line, 1, msg);
    let mut builder = Tuple::builder(schema);
    for cond in conds {
        // String value: attr = "literal".
        if let Some((attr, value)) = as_string_assignment(cond) {
            if cond.op != AstOp::Eq {
                return Err(err("string attributes take '=' only in tuples".into()));
            }
            builder = builder.set(&attr, Value::str(value));
            continue;
        }
        // Relational rational value: attr = number.
        if let Some((attr, value)) = as_numeric_assignment(cond, schema) {
            builder = builder.set(&attr, Value::rat(value));
            continue;
        }
        // Otherwise: a constraint atom over constraint attributes.
        let pred = crate::lower::lower_condition(cond, line)?;
        match pred {
            cqa_core::plan::Predicate::Linear { terms, constant, op } => {
                use cqa_constraints::{Atom, LinExpr, Rel};
                let mut expr = LinExpr::constant(constant);
                for (name, coeff) in terms {
                    let var = schema
                        .var_of(&name)
                        .map_err(|e| err(e.to_string()))?;
                    expr.add_term(var, coeff);
                }
                let atom = match op {
                    cqa_core::plan::CmpOp::Eq => Atom::new(expr, Rel::Eq),
                    cqa_core::plan::CmpOp::Le => Atom::new(expr, Rel::Le),
                    cqa_core::plan::CmpOp::Lt => Atom::new(expr, Rel::Lt),
                    cqa_core::plan::CmpOp::Ge => Atom::new(-&expr, Rel::Le),
                    cqa_core::plan::CmpOp::Gt => Atom::new(-&expr, Rel::Lt),
                    cqa_core::plan::CmpOp::Ne => {
                        return Err(err("'<>' cannot appear in a constraint tuple".into()))
                    }
                };
                builder = builder.atom(atom);
            }
            cqa_core::plan::Predicate::Str { .. } => {
                unreachable!("string assignments handled above")
            }
        }
    }
    builder.build().map_err(|e| err(e.to_string()))
}

/// Recognizes `attr = "literal"` (either orientation).
fn as_string_assignment(cond: &Cond) -> Option<(String, String)> {
    match (&cond.lhs, &cond.rhs) {
        (CondSide::Linear { terms, constant }, CondSide::Str(s))
        | (CondSide::Str(s), CondSide::Linear { terms, constant })
            if constant.is_zero() && terms.len() == 1 && terms[0].1 == Rat::one() =>
        {
            Some((terms[0].0.clone(), s.clone()))
        }
        _ => None,
    }
}

/// Recognizes `attr = number` where `attr` is a *relational* rational.
fn as_numeric_assignment(cond: &Cond, schema: &Schema) -> Option<(String, Rat)> {
    if cond.op != AstOp::Eq {
        return None;
    }
    let pick = |a: &CondSide, b: &CondSide| -> Option<(String, Rat)> {
        match (a, b) {
            (CondSide::Linear { terms, constant }, CondSide::Linear { terms: t2, constant: c2 })
                if constant.is_zero()
                    && terms.len() == 1
                    && terms[0].1 == Rat::one()
                    && t2.is_empty() =>
            {
                Some((terms[0].0.clone(), c2.clone()))
            }
            _ => None,
        }
    };
    let (attr, value) = pick(&cond.lhs, &cond.rhs).or_else(|| pick(&cond.rhs, &cond.lhs))?;
    let def = schema.attr(&attr).ok()?;
    if def.kind == AttrKind::Relational && def.ty == AttrType::Rat {
        Some((attr, value))
    } else {
        None
    }
}

fn parse_spatial_block(p: &mut Parser) -> Result<SpatialRelation, LangError> {
    p.expect(Tok::LBrace)?;
    let mut rel = SpatialRelation::new();
    loop {
        if p.peek_is(&Tok::RBrace) {
            p.next();
            break;
        }
        p.keyword("feature")?;
        let line = p.peek().line;
        let id = match p.next().tok {
            Tok::Str(s) => s,
            other => {
                return Err(LangError::new(line, 1, format!("expected feature id string, found {}", other)))
            }
        };
        let kind = p.ident()?.to_ascii_lowercase();
        let mut points = Vec::new();
        while p.peek_is(&Tok::LParen) {
            p.next();
            let x = p.number()?;
            p.expect(Tok::Comma)?;
            let y = p.number()?;
            p.expect(Tok::RParen)?;
            points.push(Point::new(x, y));
        }
        let geom = match kind.as_str() {
            "wkt" => {
                if !points.is_empty() {
                    return Err(LangError::new(line, 1, "wkt takes a quoted string, not coordinates"));
                }
                let text = match p.next().tok {
                    Tok::Str(s) => s,
                    other => {
                        return Err(LangError::new(
                            line,
                            1,
                            format!("expected a WKT string literal, found {}", other),
                        ))
                    }
                };
                cqa_spatial::wkt::parse_wkt(&text)
                    .map_err(|e| LangError::new(line, 1, e.to_string()))?
            }
            "point" => {
                if points.len() != 1 {
                    return Err(LangError::new(line, 1, "point takes exactly one coordinate pair"));
                }
                Geometry::Point(points.pop().unwrap())
            }
            "polyline" => Geometry::polyline(points)
                .map_err(|e| LangError::new(line, 1, e.to_string()))?,
            "polygon" => Geometry::polygon(points)
                .map_err(|e| LangError::new(line, 1, e.to_string()))?,
            other => {
                return Err(LangError::new(
                    line,
                    1,
                    format!("unknown geometry {:?} (point, polyline, or polygon)", other),
                ))
            }
        };
        rel.insert(Feature::new(id, geom));
        if p.peek_is(&Tok::Semi) {
            p.next();
        }
    }
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
relation Land {
  landId: string relational;
  x: rational constraint;
  y: rational constraint;
}

tuple Land { landId = "A"; 0 <= x; x <= 2; 3 <= y; y <= 6 }
tuple Land { landId = "B"; x >= 4; x <= 6; y >= 0; y <= 2 }

relation People {
  name: string relational;
  age: rational relational;
}
tuple People { name = "ann"; age = 40 }

spatial Roads {
  feature "r1" polyline (0, 0) (10, 5);
  feature "sq" polygon (0, 0) (4, 0) (4, 4) (0, 4);
  feature "w" point (3, 3);
}
"#;

    #[test]
    fn parses_relations_and_tuples() {
        let file = parse_cdb(SAMPLE).unwrap();
        assert_eq!(file.relations.len(), 2);
        let (name, land) = &file.relations[0];
        assert_eq!(name, "Land");
        assert_eq!(land.len(), 2);
        assert!(land
            .contains_point(&[Value::str("A"), Value::int(1), Value::int(4)])
            .unwrap());
        assert!(!land
            .contains_point(&[Value::str("A"), Value::int(5), Value::int(1)])
            .unwrap());
        assert!(land
            .contains_point(&[Value::str("B"), Value::int(5), Value::int(1)])
            .unwrap());
        let (_, people) = &file.relations[1];
        assert_eq!(people.tuples()[0].value(1), Some(&Value::int(40)));
    }

    #[test]
    fn parses_spatial_features() {
        let file = parse_cdb(SAMPLE).unwrap();
        assert_eq!(file.spatial.len(), 1);
        let (name, roads) = &file.spatial[0];
        assert_eq!(name, "Roads");
        assert_eq!(roads.len(), 3);
        assert!(roads.by_id("sq").is_some());
    }

    #[test]
    fn loads_into_catalog() {
        let mut cat = Catalog::new();
        parse_cdb(SAMPLE).unwrap().load_into(&mut cat);
        assert!(cat.get("Land").is_ok());
        assert!(cat.get_spatial("Roads").is_ok());
    }

    #[test]
    fn rational_constraint_syntax() {
        let file = parse_cdb(
            "relation H { t: rational constraint; x: rational constraint }\n\
             tuple H { t >= 0; t <= 1; x = 2*t + 1/2 }\n",
        )
        .unwrap();
        let (_, h) = &file.relations[0];
        // At t = 1/4, x = 1.
        assert!(h
            .contains_point(&[Value::rat(Rat::from_pair(1, 4)), Value::int(1)])
            .unwrap());
        assert!(!h.contains_point(&[Value::int(0), Value::int(1)]).unwrap());
    }

    #[test]
    fn wkt_features() {
        let file = parse_cdb(
            "spatial G {\n\
               feature \"pt\" wkt \"POINT (2.5 7)\";\n\
               feature \"road\" wkt \"LINESTRING (0 0, 10 5)\";\n\
               feature \"park\" wkt \"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))\";\n\
             }\n",
        )
        .unwrap();
        let (_, g) = &file.spatial[0];
        assert_eq!(g.len(), 3);
        assert!(matches!(g.by_id("park").unwrap().geom, cqa_spatial::Geometry::Polygon(_)));
        // Round trip back out through the exporter.
        let wkt = cqa_spatial::wkt::to_wkt(&g.by_id("pt").unwrap().geom);
        assert_eq!(wkt, "POINT (2.5 7)");
        // Bad WKT carries a position-bearing error.
        let err = match parse_cdb("spatial G { feature \"x\" wkt \"TRIANGLE (0 0)\"; }") {
            Err(e) => e,
            Ok(_) => panic!("bad WKT must be rejected"),
        };
        assert!(err.msg.contains("unknown geometry type"), "{}", err);
    }

    #[test]
    fn errors() {
        assert!(parse_cdb("tuple Ghost { x = 1 }").is_err());
        assert!(parse_cdb("relation R { x: complex constraint }").is_err());
        assert!(parse_cdb("relation R { x: string constraint }").is_err());
        assert!(parse_cdb("spatial S { feature \"p\" point (0,0) (1,1); }").is_err());
        assert!(parse_cdb("spatial S { feature \"p\" blob (0,0); }").is_err());
        assert!(parse_cdb("relation R { x: rational constraint }\ntuple R { x <> 3 }").is_err());
    }
}
