//! # cqa — CQA/CDB, a rational linear constraint database system
//!
//! A from-scratch Rust implementation of the CQA/CDB system described in
//! *"The Constraint Database Framework: Lessons Learned from CQA/CDB"*
//! (Goldin, Kutlu, Song, Yang — ICDE 2003) and its companion paper
//! *"Extending the Constraint Database Framework"* (PCK50 2003).
//!
//! Constraint databases finitely represent infinite point sets: a tuple is
//! a conjunction of rational linear constraints, a relation is a disjunction
//! of tuples, and the Constraint Query Algebra (select, project, join,
//! union, rename, difference) evaluates queries in closed form. This crate
//! re-exports the whole system:
//!
//! * [`num`] — arbitrary-precision integers and exact rationals;
//! * [`constraints`] — linear constraints, Fourier–Motzkin elimination,
//!   DNF formulas, and the dense-order constraint class;
//! * [`storage`] — pages, buffer pool with disk-access accounting, heap
//!   files;
//! * [`index`] — the R\*-tree, joint vs. separate indexing strategies, and
//!   the index advisor;
//! * [`spatial`] — vector geometry, convex decomposition, constraint ⇄
//!   vector conversion, Buffer-Join, and k-Nearest;
//! * [`core`] — the heterogeneous data model (C/R flags), the six CQA
//!   operators, plans, optimizer, evaluator, and safety checking;
//! * [`lang`] — the ASCII query-script language and the `.cdb` data format;
//! * [`obs`] — the observability layer: global metrics registry, structured
//!   span tracing, and the JSON value type behind `\trace json`.
//!
//! ## Quickstart
//!
//! ```
//! use cqa::lang::{schema_def::parse_cdb, ScriptRunner};
//! use cqa::core::Catalog;
//!
//! let mut catalog = Catalog::new();
//! parse_cdb(r#"
//!     relation Land {
//!         landId: string relational;
//!         x: rational constraint;
//!         y: rational constraint;
//!     }
//!     tuple Land { landId = "A"; 0 <= x; x <= 2; 3 <= y; y <= 6 }
//! "#).unwrap().load_into(&mut catalog);
//!
//! let mut runner = ScriptRunner::new(catalog);
//! let result = runner.run(
//!     "R0 = select x >= 1 from Land\n\
//!      R1 = project R0 on landId\n",
//! ).unwrap();
//! assert_eq!(result.len(), 1);
//! ```

pub use cqa_constraints as constraints;
pub use cqa_core as core;
pub use cqa_index as index;
pub use cqa_lang as lang;
pub use cqa_num as num;
pub use cqa_obs as obs;
pub use cqa_spatial as spatial;
pub use cqa_storage as storage;
