//! The safety checker: the closure requirement of §2.4 as a static check.
//!
//! The framework demands that "for each input, the queries must be
//! evaluable in closed form" — the output must be representable in the
//! same constraint class as the input. The six CQA primitives preserve
//! this by construction (the linear class is closed under conjunction,
//! disjunction, complement, and projection). The spatial `distance`
//! operator does **not**: exposing the Euclidean distance between
//! constraint attributes as an output attribute requires the quadratic
//! constraint `d² = Δx² + Δy²`, which leaves the linear class. §4's
//! whole-feature operators exist precisely to make such queries safe —
//! their outputs are finite relations of feature IDs.

use crate::error::{CoreError, Result};
use crate::plan::Plan;

/// Checks the closure/safety requirement on a plan. Returns the offending
/// description on failure.
pub fn check(plan: &Plan) -> Result<()> {
    match plan {
        Plan::Distance { left, right } => Err(CoreError::UnsafeOperation(format!(
            "distance({}, {}) exposes a Euclidean distance as a constraint output; \
             the result is not representable with rational linear constraints. \
             Use BufferJoin (distance threshold) or KNearest (ranking) instead — \
             their whole-feature outputs are safe (§4)",
            left, right
        ))),
        Plan::Scan(_) | Plan::SpatialScan(_) | Plan::BufferJoin { .. } | Plan::KNearest { .. } => Ok(()),
        Plan::Select { input, .. } | Plan::Project { input, .. } | Plan::Rename { input, .. } => {
            check(input)
        }
        Plan::Join { left, right }
        | Plan::Union { left, right }
        | Plan::Difference { left, right } => {
            check(left)?;
            check(right)
        }
    }
}

/// Whether the plan passes the safety check.
pub fn is_safe(plan: &Plan) -> bool {
    check(plan).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_num::Rat;

    #[test]
    fn primitives_are_safe() {
        let p = Plan::scan("A")
            .join(Plan::scan("B"))
            .select(crate::plan::Selection::all())
            .project(&["x"]);
        assert!(is_safe(&p));
    }

    #[test]
    fn whole_feature_operators_are_safe() {
        assert!(is_safe(&Plan::BufferJoin {
            left: "Roads".into(),
            right: "Cities".into(),
            distance: Rat::from_int(5),
        }));
        assert!(is_safe(&Plan::KNearest { left: "R".into(), right: "C".into(), k: 3 }));
    }

    #[test]
    fn distance_is_rejected_even_when_nested() {
        let unsafe_leaf = Plan::Distance { left: "R".into(), right: "C".into() };
        let nested = unsafe_leaf.select(crate::plan::Selection::all()).project(&["d"]);
        let err = check(&nested).unwrap_err();
        match err {
            CoreError::UnsafeOperation(msg) => {
                assert!(msg.contains("BufferJoin"), "error teaches the fix: {}", msg)
            }
            other => panic!("expected UnsafeOperation, got {:?}", other),
        }
    }
}
