//! Structured span tracing into a bounded ring buffer.
//!
//! A [`Span`] is one completed unit of instrumented work: a plan node, an
//! FM elimination call, an R*-tree probe, a buffer-pool page access. Each
//! span carries a kind, a label, payload counters, and two orthogonal
//! orderings:
//!
//! * `seq` — a deterministic sequence number assigned at record time.
//!   Span-producing sites sit on the *serial spine* of evaluation (plan
//!   nodes evaluate one after another; project's elimination loop, index
//!   probes, and buffer-pool accesses are single-threaded), while the
//!   parallel inner loops contribute only order-independent counters
//!   *into* the enclosing span. Consequently the sequence of recorded
//!   spans — and the trace digest — is bit-identical across thread
//!   counts.
//! * `elapsed_ns` — wall time, excluded from [`Span::identity`] and the
//!   determinism digest (time is the one thing that legitimately varies
//!   between runs).
//!
//! The ring is bounded ([`set_span_capacity`], default 4096): on
//! overflow the oldest span is dropped and a drop count kept, so a
//! pathological traced run degrades to "most recent window" instead of
//! unbounded memory.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Default ring capacity.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// One completed instrumented unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Deterministic sequence number (record order on the serial spine).
    pub seq: u64,
    /// Site kind, e.g. `exec.node`, `fm.eliminate`, `index.probe`,
    /// `storage.page`.
    pub kind: &'static str,
    /// Human label (operator name, page id, relation name…).
    pub label: String,
    /// Wall time in nanoseconds. Excluded from [`Span::identity`].
    pub elapsed_ns: u64,
    /// Payload counters, in recording order (e.g. `rows`, `atoms_in`).
    pub counters: Vec<(&'static str, u64)>,
}

impl Span {
    /// A counter's value, or `None` when the span didn't record it.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// Canonical identity string: everything except wall time. Two runs
    /// of the same workload produce identical identities regardless of
    /// thread count.
    pub fn identity(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("{}#{} {:?}", self.kind, self.seq, self.label);
        for (name, v) in &self.counters {
            let _ = write!(out, " {}={}", name, v);
        }
        out
    }
}

/// A drained copy of the ring: spans in sequence order plus how many were
/// dropped to the capacity bound.
#[derive(Debug, Clone, Default)]
pub struct SpanTrace {
    /// Retained spans, ascending `seq`.
    pub spans: Vec<Span>,
    /// Spans evicted because the ring was full.
    pub dropped: u64,
}

impl SpanTrace {
    /// Deterministic digest of the whole trace (identities only — no
    /// wall time), for cross-thread-count comparisons.
    pub fn identity(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&s.identity());
            out.push('\n');
        }
        if self.dropped > 0 {
            out.push_str(&format!("dropped {}\n", self.dropped));
        }
        out
    }
}

struct Ring {
    spans: VecDeque<Span>,
    capacity: usize,
    dropped: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring { spans: VecDeque::new(), capacity: DEFAULT_SPAN_CAPACITY, dropped: 0 })
    })
}

// A poisoned ring means a recording thread panicked; the ring only holds
// completed spans, which stay valid, so recover the guard. This matters
// for the flight recorder: its panic-hook dump must still be able to
// read the span tail.
fn lock_ring() -> MutexGuard<'static, Ring> {
    ring().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether span recording is on. Defaults to off — spans cost a mutex
/// push each, so only traced/analyzed runs enable them.
pub fn spans_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off.
pub fn set_spans_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Sets the ring capacity (existing overflow is evicted oldest-first).
pub fn set_span_capacity(capacity: usize) {
    let mut r = lock_ring();
    r.capacity = capacity.max(1);
    while r.spans.len() > r.capacity {
        r.spans.pop_front();
        r.dropped += 1;
    }
}

/// Records one span (no-op when recording is disabled). `seq` is
/// assigned here, monotonically.
pub fn record_span(kind: &'static str, label: String, elapsed_ns: u64, counters: Vec<(&'static str, u64)>) {
    if !spans_enabled() {
        return;
    }
    let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
    let span = Span { seq, kind, label, elapsed_ns, counters };
    let mut r = lock_ring();
    if r.spans.len() >= r.capacity {
        r.spans.pop_front();
        r.dropped += 1;
    }
    r.spans.push_back(span);
}

/// Drains the ring: returns everything recorded since the last drain (or
/// [`reset_spans`]) and empties it. The drained spans are already in
/// ascending `seq` order.
pub fn drain_spans() -> SpanTrace {
    let mut r = lock_ring();
    let spans = r.spans.drain(..).collect();
    let dropped = std::mem::take(&mut r.dropped);
    SpanTrace { spans, dropped }
}

/// Copies the newest `n` spans without draining the ring. This is the
/// flight recorder's read path: a crash dump must not perturb the trace
/// an operator later drains (and readers like the sampler must never
/// *write* into the ring).
pub fn peek_spans(n: usize) -> SpanTrace {
    let r = lock_ring();
    let skip = r.spans.len().saturating_sub(n);
    let spans = r.spans.iter().skip(skip).cloned().collect();
    SpanTrace { spans, dropped: r.dropped }
}

/// Empties the ring and restarts sequence numbering from zero (so two
/// identical workloads traced back-to-back produce identical traces).
pub fn reset_spans() {
    let mut r = lock_ring();
    r.spans.clear();
    r.dropped = 0;
    NEXT_SEQ.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The span ring is process-global; run the whole lifecycle in one
    // test so parallel test scheduling can't interleave ring state.
    #[test]
    fn ring_lifecycle() {
        let _guard = crate::test_guard();
        assert!(!spans_enabled(), "spans default off");
        record_span("test.kind", "ignored".into(), 1, vec![]);
        assert!(drain_spans().spans.is_empty(), "disabled recording is a no-op");

        set_spans_enabled(true);
        reset_spans();
        record_span("test.kind", "a".into(), 10, vec![("rows", 3)]);
        record_span("test.kind", "b".into(), 20, vec![("rows", 5)]);
        // Peeking is non-destructive and windows from the newest end.
        let peeked = peek_spans(1);
        assert_eq!(peeked.spans.len(), 1);
        assert_eq!(peeked.spans[0].label, "b");
        assert_eq!(peek_spans(10).spans.len(), 2);
        let t = drain_spans();
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.dropped, 0);
        assert_eq!(t.spans[0].seq, 0);
        assert_eq!(t.spans[1].seq, 1);
        assert_eq!(t.spans[1].counter("rows"), Some(5));
        assert!(t.identity().contains("test.kind#0 \"a\" rows=3"));

        // Identity excludes wall time: same workload, different timings,
        // same digest.
        reset_spans();
        record_span("test.kind", "a".into(), 999, vec![("rows", 3)]);
        record_span("test.kind", "b".into(), 1, vec![("rows", 5)]);
        let t2 = drain_spans();
        assert_eq!(t.identity(), t2.identity());

        // Bounded: capacity 2 keeps the newest two and counts drops.
        reset_spans();
        set_span_capacity(2);
        for i in 0..5u64 {
            record_span("test.kind", format!("s{}", i), 0, vec![]);
        }
        let t = drain_spans();
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.dropped, 3);
        assert_eq!(t.spans[0].label, "s3");
        set_span_capacity(DEFAULT_SPAN_CAPACITY);
        set_spans_enabled(false);
        reset_spans();
    }
}
