//! Error type of the query layer.

use std::fmt;

/// Errors raised by schema validation, operator application, and plan
/// evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Duplicate attribute name in a schema.
    DuplicateAttribute(String),
    /// A constraint attribute with a non-rational type.
    NonRationalConstraintAttribute(String),
    /// Attribute not present in a schema.
    UnknownAttribute(String),
    /// Relation not present in the catalog.
    UnknownRelation(String),
    /// Two schemas were required to be identical (union, difference).
    SchemaMismatch(String),
    /// A shared join attribute whose C/R flags disagree.
    KindMismatch(String),
    /// A value of the wrong type for an attribute.
    TypeMismatch { attribute: String, expected: &'static str },
    /// A rename target that already exists, or renaming a missing source.
    BadRename(String),
    /// The query violates the closure requirement of §2.4 (e.g. exposes
    /// `distance` as a constraint): its output is not representable in the
    /// system's constraint class.
    UnsafeOperation(String),
    /// A predicate that references an attribute unusable in that position
    /// (e.g. a linear constraint over a string attribute).
    BadPredicate(String),
    /// Evaluation observed a raised cancellation token. All partial output
    /// was discarded, so a cancelled run leaves no trace of itself.
    Cancelled,
    /// The governor's wall-clock deadline passed mid-evaluation.
    DeadlineExceeded,
    /// A resource budget was exhausted; `used` is the demand that crossed
    /// `limit`. Turns would-be memory blow-ups (DNF negation, FM
    /// elimination, huge intermediates) into typed, recoverable errors.
    BudgetExceeded {
        /// Which budget tripped (`"fm atoms"`, `"dnf conjunctions"`,
        /// `"output tuples"`).
        what: &'static str,
        /// The observed demand.
        used: u64,
        /// The configured ceiling.
        limit: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DuplicateAttribute(a) => write!(f, "duplicate attribute {:?}", a),
            CoreError::NonRationalConstraintAttribute(a) => {
                write!(f, "constraint attribute {:?} must be rational", a)
            }
            CoreError::UnknownAttribute(a) => write!(f, "unknown attribute {:?}", a),
            CoreError::UnknownRelation(r) => write!(f, "unknown relation {:?}", r),
            CoreError::SchemaMismatch(what) => write!(f, "schema mismatch: {}", what),
            CoreError::KindMismatch(a) => {
                write!(f, "attribute {:?} is constraint on one side and relational on the other", a)
            }
            CoreError::TypeMismatch { attribute, expected } => {
                write!(f, "attribute {:?} expects a {} value", attribute, expected)
            }
            CoreError::BadRename(what) => write!(f, "bad rename: {}", what),
            CoreError::UnsafeOperation(what) => {
                write!(f, "unsafe operation (no closed-form output): {}", what)
            }
            CoreError::BadPredicate(what) => write!(f, "bad predicate: {}", what),
            CoreError::Cancelled => f.write_str("execution cancelled"),
            CoreError::DeadlineExceeded => f.write_str("execution deadline exceeded"),
            CoreError::BudgetExceeded { what, used, limit } => {
                write!(f, "{} budget exceeded ({} > {})", what, used, limit)
            }
        }
    }
}

impl CoreError {
    /// Stable outcome tag for the telemetry event log: `ok` is reserved
    /// for successful runs; errors map to `budget_exceeded`,
    /// `deadline_exceeded`, `cancelled`, `corrupt` (storage-originated
    /// corruption surfaced through an error message), or `error`.
    pub fn outcome(&self) -> &'static str {
        match self {
            CoreError::BudgetExceeded { .. } => "budget_exceeded",
            CoreError::DeadlineExceeded => "deadline_exceeded",
            CoreError::Cancelled => "cancelled",
            e if e.to_string().to_ascii_lowercase().contains("corrupt") => "corrupt",
            _ => "error",
        }
    }

    /// Whether this error is the governor killing the run (the flight
    /// recorder's second trigger condition, besides panics).
    pub fn is_governor_abort(&self) -> bool {
        matches!(
            self,
            CoreError::BudgetExceeded { .. } | CoreError::DeadlineExceeded | CoreError::Cancelled
        )
    }
}

impl std::error::Error for CoreError {}

impl From<cqa_num::par::Cancelled> for CoreError {
    fn from(_: cqa_num::par::Cancelled) -> CoreError {
        CoreError::Cancelled
    }
}

impl From<cqa_constraints::FmBudgetExceeded> for CoreError {
    fn from(e: cqa_constraints::FmBudgetExceeded) -> CoreError {
        CoreError::BudgetExceeded { what: "fm atoms", used: e.atoms, limit: e.limit }
    }
}

impl From<cqa_constraints::DnfBudgetExceeded> for CoreError {
    fn from(e: cqa_constraints::DnfBudgetExceeded) -> CoreError {
        CoreError::BudgetExceeded { what: "dnf conjunctions", used: e.conjunctions, limit: e.limit }
    }
}

/// Result alias for the query layer.
pub type Result<T> = std::result::Result<T, CoreError>;
