//! Observability-layer harness: overhead gate, golden metrics snapshot,
//! and the §5-style index experiment, with per-operator breakdowns.
//!
//! Three jobs in one binary:
//!
//! * **Overhead gate** — the instrumented evaluator with metrics *enabled*
//!   must stay within 3% of the same evaluator with metrics *disabled* on
//!   the seeded bench join (disabled short-circuits to the pre-existing
//!   per-run atomics, i.e. the seed's cost). Interleaved A/B repeats,
//!   median-vs-median.
//! * **Golden snapshot** (`--golden`) — runs a fixed seeded workload
//!   (algebra + indexed selection + faulty buffer pool) against a reset
//!   registry and prints `Snapshot::canonical()`: counter/gauge values and
//!   histogram counts only, no timings, so the output is bit-stable and
//!   diffable in CI.
//! * **§5 index experiment** — the same box selections answered through a
//!   joint 2-D `[x, y]` index vs. two separate 1-D indexes, comparing
//!   R\*-tree node accesses and refinement candidates (the paper's
//!   multi-attribute-indexing lesson).
//! * **Prometheus golden** (`--golden-prom`) — the same fixed workload
//!   rendered through the canonical Prometheus exporter (timing series
//!   skipped), for the byte-exact exposition-format golden in verify.sh.
//! * **Flight smoke** (`--flight-smoke`) — installs the flight recorder
//!   into a temp dir, aborts a traced join with a zero governor deadline
//!   and then with an injected panic, and asserts both dumps parse and
//!   carry the aborted query's span tail.
//!
//! Usage: `obs_bench [--quick] [--gate] [--golden] [--golden-prom]
//! [--flight-smoke] [--out PATH]`

use cqa::core::plan::{CmpOp, Plan, Selection};
use cqa::core::{exec, AttrDef, Catalog, ExecOptions, ExecStats, HRelation, Schema};
use cqa::num::prng::Pcg32;
use cqa::obs::json::Json;
use cqa::storage::fault::FaultKind;
use cqa::storage::{BufferPool, FaultConfig, FaultyDisk, MemDisk};
use std::time::Instant;

const SEED: u64 = 0x0B5E_7B5E;
const OVERHEAD_LIMIT: f64 = 1.03;

fn main() {
    let mut quick = false;
    let mut golden = false;
    let mut golden_prom = false;
    let mut flight_smoke = false;
    let mut gate = false;
    let mut out_path = String::from("BENCH_obs.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--golden" => golden = true,
            "--golden-prom" => golden_prom = true,
            "--flight-smoke" => flight_smoke = true,
            "--gate" => gate = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: obs_bench [--quick] [--gate] [--golden] [--golden-prom] [--flight-smoke] [--out PATH]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {:?}", other);
                std::process::exit(2);
            }
        }
    }

    if golden || golden_prom {
        run_golden_workload();
        let snap = cqa::obs::snapshot();
        if golden {
            print!("{}", snap.canonical());
        } else {
            print!("{}", cqa::obs::prom::render_canonical(&snap));
        }
        return;
    }
    if flight_smoke {
        run_flight_smoke();
        return;
    }

    let (n, repeats) = if quick { (150, 3) } else { (400, 5) };
    println!("# obs_bench ({}): seed {:#x}", if quick { "quick" } else { "full" }, SEED);

    let (ratio, med_on, med_off) = overhead_gate(n, repeats);
    println!(
        "OVERHEAD_RATIO {:.4} (metrics on {:.2} ms vs off {:.2} ms, median of {})",
        ratio, med_on, med_off, repeats
    );
    let pass = ratio <= OVERHEAD_LIMIT;
    println!("OVERHEAD_GATE {}", if pass { "PASS" } else { "FAIL" });
    if gate && !pass {
        eprintln!("metrics-enabled overhead {:.2}% exceeds the 3% budget", (ratio - 1.0) * 100.0);
        std::process::exit(1);
    }

    let index_expt = index_experiment(if quick { 500 } else { 2000 });
    let breakdown = operator_breakdown(n);

    let metrics = vec![
        ("mode".to_string(), Json::str(if quick { "quick" } else { "full" })),
        ("seed".to_string(), Json::from_u64(SEED)),
        ("overhead".to_string(), Json::Obj(vec![
            ("metrics_on_ms".to_string(), Json::Num(med_on)),
            ("metrics_off_ms".to_string(), Json::Num(med_off)),
            ("ratio".to_string(), Json::Num((ratio * 1e4).round() / 1e4)),
            ("limit".to_string(), Json::Num(OVERHEAD_LIMIT)),
            ("pass".to_string(), Json::Bool(pass)),
        ])),
        ("index_experiment".to_string(), index_expt),
        ("explain_analyze".to_string(), breakdown),
    ];
    if let Err(e) = cqa_bench::report::write(&out_path, "obs_bench", metrics) {
        eprintln!("cannot write {}: {}", out_path, e);
        std::process::exit(1);
    }
    println!("wrote {}", out_path);
}

/// Seeded 1-D interval relation, the bench-join workload family.
fn interval_relation(id_attr: &str, n: usize, seed: u64) -> HRelation {
    let schema =
        Schema::new(vec![AttrDef::str_rel(id_attr), AttrDef::rat_con("x")]).expect("valid schema");
    let mut rel = HRelation::new(schema);
    let mut rng = Pcg32::seed_from_u64(seed);
    for i in 0..n {
        let lo = rng.gen_range_i64(0, 3000);
        let w = rng.gen_range_i64(1, 100);
        rel.insert_with(|b| {
            b.set(id_attr, format!("{}{}", id_attr, i).as_str()).range("x", lo, lo + w)
        })
        .expect("valid tuple");
    }
    rel
}

/// Seeded 2-D box relation for the index experiment and golden workload.
fn box_relation(n: usize, seed: u64) -> HRelation {
    let schema = Schema::new(vec![
        AttrDef::str_rel("id"),
        AttrDef::rat_con("x"),
        AttrDef::rat_con("y"),
    ])
    .expect("valid schema");
    let mut rel = HRelation::new(schema);
    let mut rng = Pcg32::seed_from_u64(seed);
    for i in 0..n {
        let (lx, ly) = (rng.gen_range_i64(0, 1000), rng.gen_range_i64(0, 1000));
        let (w, h) = (rng.gen_range_i64(1, 20), rng.gen_range_i64(1, 20));
        rel.insert_with(|b| {
            b.set("id", format!("t{}", i).as_str())
                .range("x", lx, lx + w)
                .range("y", ly, ly + h)
        })
        .expect("valid tuple");
    }
    rel
}

/// Interleaved A/B medians of the seeded join with the full telemetry
/// path on vs. off. "On" is the complete enabled configuration — metrics
/// registry, JSONL event log, and a live background sampler — because
/// that is what a production scrape target actually runs; "off" is the
/// single master switch users get, which short-circuits all of it.
fn overhead_gate(n: usize, repeats: usize) -> (f64, f64, f64) {
    let mut cat = Catalog::new();
    cat.register("L", interval_relation("aid", n, SEED));
    cat.register("R", interval_relation("bid", n, SEED ^ 0x9E37_79B9));
    let plan = Plan::scan("L").join(Plan::scan("R"));
    let opts = ExecOptions::default();

    let log_path = std::env::temp_dir().join(format!("cqa-obs-bench-{}.jsonl", std::process::id()));
    cqa::obs::eventlog::install(
        &log_path,
        cqa::obs::eventlog::DEFAULT_MAX_BYTES,
        cqa::obs::eventlog::DEFAULT_MAX_FILES,
    )
    .expect("event log installs");
    let sampler = cqa::obs::sampler::Sampler::start(std::time::Duration::from_millis(25), 64);

    let run_once = |enabled: bool| -> f64 {
        cqa::obs::set_metrics_enabled(enabled);
        let stats = ExecStats::new();
        let t = Instant::now();
        let out = exec::execute_opts(&plan, &cat, &opts, &stats).expect("join succeeds");
        let ms = t.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(out.len());
        ms
    };
    // Warm-up both paths once, then interleave measurements so drift hits
    // both sides equally.
    run_once(true);
    run_once(false);
    let mut on = Vec::with_capacity(repeats);
    let mut off = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        on.push(run_once(true));
        off.push(run_once(false));
    }
    cqa::obs::set_metrics_enabled(true);
    drop(sampler);
    cqa::obs::eventlog::uninstall();
    let _ = std::fs::remove_file(&log_path);
    let med = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v[v.len() / 2]
    };
    let (m_on, m_off) = (med(&mut on), med(&mut off));
    ((m_on / m_off).max(0.0), m_on, m_off)
}

/// §5-style experiment: the same bounded selections through a joint 2-D
/// index vs. two separate 1-D indexes, node accesses and refinement
/// candidates compared.
fn index_experiment(n: usize) -> Json {
    let rel = box_relation(n, SEED ^ 0x51);
    let mut joint = Catalog::new();
    joint.register("R", rel.clone());
    joint.build_index("R", &["x", "y"]).expect("joint index");
    let mut separate = Catalog::new();
    separate.register("R", rel.clone());
    separate.build_index("R", &["x"]).expect("x index");
    separate.build_index("R", &["y"]).expect("y index");

    let mut rng = Pcg32::seed_from_u64(SEED ^ 0x52);
    let mut queries = Vec::new();
    for _ in 0..20 {
        let (qx, qy) = (rng.gen_range_i64(0, 900), rng.gen_range_i64(0, 900));
        let (w, h) = (rng.gen_range_i64(20, 120), rng.gen_range_i64(20, 120));
        queries.push(
            Selection::all()
                .cmp_int("x", CmpOp::Ge, qx)
                .cmp_int("x", CmpOp::Le, qx + w)
                .cmp_int("y", CmpOp::Ge, qy)
                .cmp_int("y", CmpOp::Le, qy + h),
        );
    }

    let run = |cat: &Catalog| -> (u64, u64, usize) {
        let stats = ExecStats::new();
        let mut rows = 0usize;
        for sel in &queries {
            let plan = Plan::scan("R").select(sel.clone());
            let out = exec::execute_opts(&plan, cat, &ExecOptions::default(), &stats)
                .expect("selection succeeds");
            rows += out.len();
        }
        (stats.index_accesses(), stats.checked(), rows)
    };
    let (joint_accesses, joint_candidates, joint_rows) = run(&joint);
    let (sep_accesses, sep_candidates, sep_rows) = run(&separate);
    assert_eq!(joint_rows, sep_rows, "index choice must not change results");

    println!(
        "index experiment: joint [x, y] {} node accesses / {} candidates; separate 1-D {} node accesses / {} candidates ({} queries, {} rows)",
        joint_accesses, joint_candidates, sep_accesses, sep_candidates, queries.len(), joint_rows
    );
    Json::Obj(vec![
        ("tuples".to_string(), Json::from_u64(n as u64)),
        ("queries".to_string(), Json::from_u64(queries.len() as u64)),
        ("result_rows".to_string(), Json::from_u64(joint_rows as u64)),
        ("joint_xy".to_string(), Json::Obj(vec![
            ("node_accesses".to_string(), Json::from_u64(joint_accesses)),
            ("refinement_candidates".to_string(), Json::from_u64(joint_candidates)),
        ])),
        ("separate_1d".to_string(), Json::Obj(vec![
            ("node_accesses".to_string(), Json::from_u64(sep_accesses)),
            ("refinement_candidates".to_string(), Json::from_u64(sep_candidates)),
        ])),
    ])
}

/// Per-operator breakdown: the bench join + projection, traced, as JSON.
fn operator_breakdown(n: usize) -> Json {
    let mut cat = Catalog::new();
    cat.register("L", interval_relation("aid", n, SEED));
    cat.register("R", interval_relation("bid", n, SEED ^ 0x9E37_79B9));
    let plan = Plan::scan("L").join(Plan::scan("R")).project(&["x"]);
    let (_, trace) =
        exec::execute_traced_opts(&plan, &cat, &ExecOptions::default(), &ExecStats::new())
            .expect("traced join succeeds");
    trace.to_json()
}

/// The fixed golden workload: algebra (join, project, select, difference),
/// index-assisted selection, and a faulty buffer pool, against a freshly
/// reset registry. Both golden modes render only order- and
/// timing-independent values from the resulting registry state.
fn run_golden_workload() {
    cqa::obs::reset_metrics();
    cqa::obs::set_metrics_enabled(true);

    // Algebra with an index: counters are identical for every thread count
    // (the determinism contract), so the snapshot pins threads = 2 only to
    // prove the point.
    let mut cat = Catalog::new();
    cat.register("L", interval_relation("aid", 120, SEED));
    cat.register("R", interval_relation("bid", 120, SEED ^ 0x9E37_79B9));
    cat.register("B", box_relation(300, SEED ^ 0x51));
    cat.build_index("B", &["x", "y"]).expect("index");
    let opts = ExecOptions::with_threads(2);
    let run = |cat: &Catalog, plan: &Plan| {
        exec::execute_opts(plan, cat, &opts, &ExecStats::new()).expect("golden query succeeds")
    };
    run(&cat, &Plan::scan("L").join(Plan::scan("R")).project(&["x"]));
    run(
        &cat,
        &Plan::scan("B").select(
            Selection::all()
                .cmp_int("x", CmpOp::Ge, 100)
                .cmp_int("x", CmpOp::Le, 400)
                .cmp_int("y", CmpOp::Ge, 100)
                .cmp_int("y", CmpOp::Le, 400),
        ),
    );
    run(&cat, &Plan::scan("L").minus(Plan::scan("L")));

    // Storage: seeded faulty disk under a tiny pool — hits, misses,
    // writebacks, retried I/O errors, and checksum rereads all fire
    // deterministically from the seed.
    let disk = FaultyDisk::new(MemDisk::new(), FaultConfig::only(13, FaultKind::IoError, 0.15));
    let mut pool = BufferPool::new(disk, 2).with_checksums();
    let mut pages = Vec::new();
    for _ in 0..6 {
        pages.push(pool.allocate().expect("allocate"));
    }
    for (i, &p) in pages.iter().enumerate() {
        pool.with_page_mut(p, |bytes| bytes[64] = i as u8).expect("write");
    }
    pool.flush().expect("flush");
    pool.clear().expect("clear");
    for &p in &pages {
        pool.with_page(p, |_| ()).expect("read");
    }
}

/// Flight-recorder smoke test: both trigger conditions must produce a
/// parseable dump carrying the aborted query's span tail and plan tree.
fn run_flight_smoke() {
    let dir = std::env::temp_dir().join(format!("cqa-flight-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    cqa::obs::flight::install(&dir, 64).expect("flight recorder installs");
    cqa::obs::set_spans_enabled(true);
    cqa::obs::reset_spans();

    // Trigger 1: governor DeadlineExceeded. A zero timeout trips at the
    // join's first check, after the traced scan children have already
    // closed their spans — so the dump's tail holds the aborted query's
    // own spans.
    let mut cat = Catalog::new();
    cat.register("L", interval_relation("aid", 60, SEED));
    cat.register("R", interval_relation("bid", 60, SEED ^ 0x9E37_79B9));
    let plan = Plan::scan("L").join(Plan::scan("R"));
    let mut opts = ExecOptions::with_threads(2);
    opts.governor.timeout = Some(std::time::Duration::ZERO);
    let err = exec::execute_traced_opts(&plan, &cat, &opts, &ExecStats::new())
        .expect_err("zero deadline must abort the join");
    assert_eq!(err.outcome(), "deadline_exceeded", "got {:?}", err);

    let dumps = cqa::obs::flight::list_dumps(&dir);
    assert_eq!(dumps.len(), 1, "governor abort writes exactly one dump");
    let doc = parse_dump(&dumps[0]);
    let reason = doc.get("reason").and_then(Json::as_str).expect("reason");
    assert!(reason.contains("deadline"), "reason {:?}", reason);
    let spans = doc.get("spans").and_then(Json::as_arr).expect("spans");
    assert!(!spans.is_empty(), "dump carries the aborted query's span tail");
    assert!(
        spans.iter().any(|s| s
            .get("label")
            .and_then(Json::as_str)
            .is_some_and(|l| l.starts_with("Scan"))),
        "span tail holds the traced scan children"
    );
    let active = doc
        .get("context")
        .and_then(|c| c.get("active_query"))
        .and_then(Json::as_str)
        .expect("active_query context");
    assert!(active.contains("Join"), "plan tree {:?}", active);
    println!("flight smoke: governor abort -> {}", dumps[0].display());

    // Trigger 2: panic hook.
    cqa::obs::flight::install_panic_hook();
    let caught = std::panic::catch_unwind(|| panic!("injected flight-smoke panic"));
    assert!(caught.is_err());
    let dumps = cqa::obs::flight::list_dumps(&dir);
    assert_eq!(dumps.len(), 2, "panic writes a second dump");
    let doc = parse_dump(&dumps[1]);
    let reason = doc.get("reason").and_then(Json::as_str).expect("reason");
    assert!(reason.contains("injected flight-smoke panic"), "reason {:?}", reason);
    println!("flight smoke: panic hook    -> {}", dumps[1].display());

    cqa::obs::flight::uninstall();
    cqa::obs::set_spans_enabled(false);
    let _ = std::fs::remove_dir_all(&dir);
    println!("FLIGHT_SMOKE PASS");
}

/// Reads and parses one dump, asserting the schema envelope.
fn parse_dump(path: &std::path::Path) -> Json {
    let text = std::fs::read_to_string(path).expect("dump readable");
    let doc = cqa::obs::json::parse(&text).expect("dump parses as obs JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_num), Some(1.0));
    assert_eq!(doc.get("kind").and_then(Json::as_str), Some("flight"));
    assert!(matches!(doc.get("metrics"), Some(Json::Obj(_))), "metrics snapshot present");
    doc
}
