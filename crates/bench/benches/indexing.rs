//! Criterion microbenchmarks for the §5.4 indexing strategies: per-query
//! latency of the joint 2-D index vs separate 1-D indexes, on both query
//! shapes. (The disk-access figures come from `cargo run --bin figure4/5`;
//! this measures wall-clock on the same structures.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqa_bench::workload;
use cqa::index::strategy::{BoxQuery, IndexStrategy, JointIndex, SeparateIndices};
use cqa::index::RStarParams;

fn build(n: usize) -> (JointIndex, SeparateIndices, Vec<workload::Box2>) {
    let data: Vec<workload::Box2> = workload::constraint_data(42).into_iter().take(n).collect();
    let mut joint = JointIndex::new(RStarParams::fitting_page(2), workload::WORLD);
    let mut sep = SeparateIndices::new(RStarParams::fitting_page(1));
    for (i, b) in data.iter().enumerate() {
        joint.insert(b.x, b.y, i as u64);
        sep.insert(b.x, b.y, i as u64);
    }
    let queries = workload::queries(7, 64);
    (joint, sep, queries)
}

fn bench_strategies(c: &mut Criterion) {
    let (joint, sep, queries) = build(5000);
    let mut group = c.benchmark_group("index_query");
    group.bench_function(BenchmarkId::new("two_attr", "joint"), |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            joint.query(&BoxQuery::both(q.x, q.y))
        })
    });
    group.bench_function(BenchmarkId::new("two_attr", "separate"), |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            sep.query(&BoxQuery::both(q.x, q.y))
        })
    });
    group.bench_function(BenchmarkId::new("one_attr", "joint"), |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            joint.query(&BoxQuery::x_only(q.x))
        })
    });
    group.bench_function(BenchmarkId::new("one_attr", "separate"), |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            sep.query(&BoxQuery::x_only(q.x))
        })
    });
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let data = workload::constraint_data(42);
    c.bench_function("rstar_insert_1000", |b| {
        b.iter(|| {
            let mut joint = JointIndex::new(RStarParams::fitting_page(2), workload::WORLD);
            for (i, d) in data.iter().take(1000).enumerate() {
                joint.insert(d.x, d.y, i as u64);
            }
            joint
        })
    });
}

criterion_group!(benches, bench_strategies, bench_insert);
criterion_main!(benches);
