//! Minimal JSON value, writer, and parser — enough for the repo's
//! machine-readable surfaces (`\trace json`, `\metrics`, `BENCH_*.json`,
//! the event log, and flight dumps) without an external dependency.
//! Objects preserve insertion order, so rendering is deterministic.

use crate::error::JsonError;

/// A JSON value. Numbers are `f64` (integers render without a fraction
/// when exact).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A numeric value from a `u64` (exact up to 2^53, plenty for
    /// counters in practice; larger values round like `as f64`).
    pub fn from_u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, when it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, when it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{}", n);
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry a byte offset and message
/// ([`JsonError`]).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { offset: self.pos, msg: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else { return Err(self.err("unterminated string")) };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not paired here — the writer
                            // never emits them for our data.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole character.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    if self.pos > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        // The scanned range is ASCII by construction, but report a typed
        // error rather than asserting it.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_roundtrip() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("Scan \"R\"\n")),
            ("rows".into(), Json::from_u64(42)),
            ("ratio".into(), Json::Num(0.5)),
            ("flag".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            ("children".into(), Json::Arr(vec![Json::from_u64(1), Json::from_u64(2)])),
        ]);
        let text = v.render();
        let back = parse(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(back.get("rows").unwrap().as_num(), Some(42.0));
        assert_eq!(back.get("name").unwrap().as_str(), Some("Scan \"R\"\n"));
        assert_eq!(back.get("children").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn parses_whitespace_unicode_and_escapes() {
        let v = parse(" { \"k\" : [ 1 , -2.5e1 , \"π\\u00e9\" ] } ").unwrap();
        let arr = v.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_num(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("πé"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{:?} should fail", bad);
        }
    }

    #[test]
    fn errors_carry_typed_offsets() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4, "points at the bad token");
        assert!(err.to_string().contains("at byte 4"));
        let err = parse("{\"a\": 1} trailing").unwrap_err();
        assert_eq!(err.msg, "trailing input");
    }

    #[test]
    fn integers_render_exactly() {
        assert_eq!(Json::from_u64(0).render(), "0");
        assert_eq!(Json::from_u64(123456789).render(), "123456789");
        assert_eq!(Json::Num(0.25).render(), "0.25");
    }
}
