//! Lock-light process-global metrics registry.
//!
//! Naming scheme: `layer.object.metric` in lowercase snake case, e.g.
//! `exec.filter.checked`, `index.rstar.node_accesses`,
//! `storage.pool.io_retries`. The registry is a `BTreeMap` keyed by name,
//! so snapshots are deterministically sorted.
//!
//! Cost model:
//! * registration ([`counter`]/[`gauge`]/[`histogram`]) takes the registry
//!   lock and leaks one allocation the first time a name is seen — call
//!   sites cache the `&'static` handle in a `OnceLock` so this happens
//!   once per process, not per event;
//! * recording is a relaxed atomic add/max with no lock;
//! * hot paths guard recording behind [`metrics_enabled`], one relaxed
//!   load, so the disabled configuration costs a predictable branch.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Monotonic counter (combined across sources by sum).
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Fresh zeroed counter (for local, non-registered use).
    pub const fn new() -> Counter {
        Counter { v: AtomicU64::new(0) }
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.v.store(0, Ordering::Relaxed);
    }
}

/// High-water-mark gauge (combined across sources by max).
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    /// Fresh zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge { v: AtomicU64::new(0) }
    }

    /// Raises the gauge to at least `n`.
    pub fn record_max(&self, n: u64) {
        self.v.fetch_max(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.v.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: powers of two from 1 up to 2^14, plus a
/// final overflow bucket. Bucket `i` counts observations `v` with
/// `v < 2^i` (and `v` not in an earlier bucket), i.e. bucket upper bounds
/// are 1, 2, 4, …, 16384, +inf.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// Fixed-bucket (power-of-two) histogram of `u64` observations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Fresh empty histogram.
    pub const fn new() -> Histogram {
        const Z: AtomicU64 = AtomicU64::new(0);
        Histogram { buckets: [Z; HISTOGRAM_BUCKETS], count: AtomicU64::new(0), sum: AtomicU64::new(0) }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        // v < 2^i picks bucket i; 65-v.leading_zeros() would overflow the
        // array for huge v, so clamp into the overflow bucket.
        let idx = ((64 - u64::leading_zeros(v | 1)) as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (bucket `i` holds observations in
    /// `[2^(i-1), 2^i)`, with bucket 0 holding 0 and the last bucket
    /// everything ≥ 2^(BUCKETS-1)).
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Resets all buckets.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

static ENABLED: AtomicBool = AtomicBool::new(true);

fn registry() -> &'static Mutex<BTreeMap<&'static str, Metric>> {
    static REG: OnceLock<Mutex<BTreeMap<&'static str, Metric>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Whether global-metric recording is on (call sites should check this
/// before recording on hot paths). Defaults to enabled.
pub fn metrics_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns global-metric recording on or off.
pub fn set_metrics_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Registers (or fetches) the counter named `name`. The handle is
/// `'static`: cache it, don't call this per event.
///
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    match reg.entry(name).or_insert_with(|| Metric::Counter(Box::leak(Box::default()))) {
        Metric::Counter(c) => c,
        _ => panic!("metric {:?} already registered with a different kind", name),
    }
}

/// Registers (or fetches) the gauge named `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    match reg.entry(name).or_insert_with(|| Metric::Gauge(Box::leak(Box::default()))) {
        Metric::Gauge(g) => g,
        _ => panic!("metric {:?} already registered with a different kind", name),
    }
}

/// Registers (or fetches) the histogram named `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    match reg.entry(name).or_insert_with(|| Metric::Histogram(Box::leak(Box::default()))) {
        Metric::Histogram(h) => h,
        _ => panic!("metric {:?} already registered with a different kind", name),
    }
}

/// Resets every registered metric to zero (the registry itself — names
/// and handles — survives).
pub fn reset_metrics() {
    let reg = registry().lock().expect("metrics registry poisoned");
    for m in reg.values() {
        match m {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

/// One metric's value in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge high-water mark.
    Gauge(u64),
    /// Histogram count, sum, and per-bucket counts.
    Histogram { count: u64, sum: u64, buckets: [u64; HISTOGRAM_BUCKETS] },
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    entries: Vec<(&'static str, MetricValue)>,
}

/// Captures the current value of every registered metric.
pub fn snapshot() -> Snapshot {
    let reg = registry().lock().expect("metrics registry poisoned");
    let entries = reg
        .iter()
        .map(|(name, m)| {
            let v = match m {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => MetricValue::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    buckets: h.buckets(),
                },
            };
            (*name, v)
        })
        .collect();
    Snapshot { entries }
}

impl Snapshot {
    /// The captured `(name, value)` pairs, sorted by name.
    pub fn entries(&self) -> &[(&'static str, MetricValue)] {
        &self.entries
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
    }

    /// Convenience: a counter's value, or 0 when absent/not a counter.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Convenience: a gauge's value, or 0 when absent/not a gauge.
    pub fn gauge(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Human-readable one-metric-per-line rendering (sorted by name).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.entries {
            match v {
                MetricValue::Counter(n) => {
                    let _ = writeln!(out, "{:<40} {}", name, n);
                }
                MetricValue::Gauge(n) => {
                    let _ = writeln!(out, "{:<40} {} (gauge)", name, n);
                }
                MetricValue::Histogram { count, sum, .. } => {
                    let mean = if *count > 0 { *sum as f64 / *count as f64 } else { 0.0 };
                    let _ = writeln!(
                        out,
                        "{:<40} count={} sum={} mean={:.1} (histogram)",
                        name, count, sum, mean
                    );
                }
            }
        }
        out
    }

    /// Canonical deterministic form for golden-snapshot diffs: counters,
    /// gauges, and histogram counts/sums — everything here is a pure
    /// function of the workload (no wall-clock).
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.entries {
            match v {
                MetricValue::Counter(n) => {
                    let _ = writeln!(out, "counter {} {}", name, n);
                }
                MetricValue::Gauge(n) => {
                    let _ = writeln!(out, "gauge {} {}", name, n);
                }
                MetricValue::Histogram { count, sum, .. } => {
                    let _ = writeln!(out, "histogram {} count={} sum={}", name, count, sum);
                }
            }
        }
        out
    }

    /// JSON object rendering, `{"name": value, ...}` with histograms as
    /// nested objects. Keys are sorted (registry order).
    pub fn render_json(&self) -> String {
        use crate::json::Json;
        let mut obj: Vec<(String, Json)> = Vec::new();
        for (name, v) in &self.entries {
            let val = match v {
                MetricValue::Counter(n) => Json::from_u64(*n),
                MetricValue::Gauge(n) => Json::from_u64(*n),
                MetricValue::Histogram { count, sum, buckets } => Json::Obj(vec![
                    ("count".into(), Json::from_u64(*count)),
                    ("sum".into(), Json::from_u64(*sum)),
                    (
                        "buckets".into(),
                        Json::Arr(buckets.iter().map(|b| Json::from_u64(*b)).collect()),
                    ),
                ]),
            };
            obj.push((name.to_string(), val));
        }
        Json::Obj(obj).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_record() {
        let c = Counter::new();
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.record_max(5);
        g.record_max(2);
        assert_eq!(g.get(), 5);

        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1 << 20] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 106 + (1 << 20));
        let b = h.buckets();
        assert_eq!(b.iter().sum::<u64>(), 6);
        assert_eq!(b[1], 2, "0 and 1 land in the lowest occupied bucket");
        assert_eq!(b[HISTOGRAM_BUCKETS - 1], 1, "2^20 overflows into the last bucket");
    }

    #[test]
    fn registry_roundtrip_and_snapshot_sorted() {
        let c = counter("test.registry.alpha");
        let g = gauge("test.registry.beta");
        let h = histogram("test.registry.gamma");
        c.add(7);
        g.record_max(9);
        h.record(3);
        // Same handle on re-registration.
        assert!(std::ptr::eq(c, counter("test.registry.alpha")));
        let snap = snapshot();
        assert_eq!(snap.counter("test.registry.alpha"), 7);
        assert_eq!(snap.gauge("test.registry.beta"), 9);
        let names: Vec<_> = snap.entries().iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot is name-sorted");
        assert!(snap.render_text().contains("test.registry.alpha"));
        assert!(snap.canonical().contains("counter test.registry.alpha 7"));
        // JSON parses back.
        let parsed = crate::json::parse(&snap.render_json()).unwrap();
        assert!(parsed.get("test.registry.alpha").is_some());
    }

    #[test]
    fn enable_flag_toggles() {
        assert!(metrics_enabled());
        set_metrics_enabled(false);
        assert!(!metrics_enabled());
        set_metrics_enabled(true);
    }
}
