//! Fault-matrix sweep: storage robustness under injected faults.
//!
//! Persists a reference relation through a checksummed buffer pool over a
//! [`FaultyDisk`], sweeping fault kind × injection rate × schedule seed,
//! and asserts the robustness contract at every cell:
//!
//! * every injected fault that reaches the caller is a **typed error**
//!   (`PersistError::Storage` / `Corrupt`) — the process never panics;
//! * an `Ok` round trip is **bit-identical** to the original relation —
//!   faults are healed (retry, reread) or reported, never absorbed into
//!   silently wrong data;
//! * the zero-fault control column round-trips identically for every
//!   seed and pool capacity, i.e. the fault machinery at rate 0 is a
//!   true no-op.
//!
//! Run with `cargo run --release --bin fault_matrix`. Exits non-zero on
//! any contract violation.

use cqa::core::persist::{load_relation, save_relation, PersistError};
use cqa::core::{AttrDef, HRelation, Schema};
use cqa::storage::fault::FaultKind;
use cqa::storage::{BufferPool, FaultConfig, FaultyDisk, MemDisk};

/// A relation big enough to span several pages (so eviction, reread and
/// torn-write detection all engage) but quick to build.
fn reference_relation() -> HRelation {
    let schema = Schema::new(vec![
        AttrDef::str_rel("parcel"),
        AttrDef::rat_con("x"),
        AttrDef::rat_con("y"),
    ])
    .expect("static schema");
    let mut r = HRelation::new(schema);
    for i in 0..120i64 {
        let name = format!("p{:03}", i);
        r.insert_with(|b| {
            b.set("parcel", name.as_str())
                .range("x", i, i + 3)
                .range("y", 2 * i, 2 * i + 5)
        })
        .expect("static tuple");
    }
    r
}

struct Cell {
    kind: &'static str,
    rate: f64,
    seed: u64,
    injected: u64,
    retries: u64,
    rereads: u64,
    outcome: &'static str,
}

/// One sweep cell: save + flush + load through a faulty, checksummed pool.
/// Returns the cell summary, or an error message on contract violation.
fn run_cell(
    original: &HRelation,
    kind_name: &'static str,
    cfg: FaultConfig,
    capacity: usize,
) -> Result<Cell, String> {
    let rate = cfg.io_error_rate + cfg.torn_write_rate + cfg.bit_flip_rate;
    let mut pool = BufferPool::new(FaultyDisk::new(MemDisk::new(), cfg), capacity)
        .with_checksums();
    let outcome = save_relation(original, &mut pool)
        .and_then(|heap| {
            pool.flush()?;
            load_relation(&heap, &mut pool)
        });
    let injected = pool.disk().counts().total();
    let stats = pool.stats();
    let outcome_tag = match outcome {
        Ok(loaded) => {
            if &loaded != original {
                return Err(format!(
                    "SILENT CORRUPTION: kind={} rate={} seed={}: Ok round trip differs from original",
                    kind_name, rate, cfg.seed
                ));
            }
            "ok"
        }
        Err(PersistError::Storage(_)) => "err:storage",
        Err(PersistError::Corrupt(_)) => "err:corrupt",
        Err(PersistError::Core(e)) => {
            return Err(format!(
                "UNEXPECTED ERROR CLASS: kind={} rate={} seed={}: {}",
                kind_name, rate, cfg.seed, e
            ));
        }
    };
    Ok(Cell {
        kind: kind_name,
        rate,
        seed: cfg.seed,
        injected,
        retries: stats.io_retries,
        rereads: stats.corrupt_rereads,
        outcome: outcome_tag,
    })
}

fn main() {
    let original = reference_relation();
    let kinds = [
        (FaultKind::IoError, "io_error"),
        (FaultKind::TornWrite, "torn_write"),
        (FaultKind::BitFlip, "bit_flip"),
    ];
    let rates = [0.01, 0.05, 0.2, 0.5];
    let seeds = 0..8u64;
    let mut cells: Vec<Cell> = Vec::new();
    let mut violations: Vec<String> = Vec::new();

    // Zero-fault control: every seed and capacity must round-trip Ok and
    // inject nothing — the decorator at rate 0 is a true passthrough.
    for seed in seeds.clone() {
        for capacity in [2usize, 8, 64] {
            match run_cell(&original, "control", FaultConfig::none(seed), capacity) {
                Ok(cell) => {
                    if cell.outcome != "ok" || cell.injected != 0 {
                        violations.push(format!(
                            "CONTROL FAILED: seed={} capacity={} outcome={} injected={}",
                            seed, capacity, cell.outcome, cell.injected
                        ));
                    }
                    cells.push(cell);
                }
                Err(v) => violations.push(v),
            }
        }
    }

    for (kind, kind_name) in kinds {
        for rate in rates {
            for seed in seeds.clone() {
                match run_cell(&original, kind_name, FaultConfig::only(seed, kind, rate), 4) {
                    Ok(cell) => cells.push(cell),
                    Err(v) => violations.push(v),
                }
            }
        }
    }

    println!("# fault matrix: {} cells", cells.len());
    println!("# kind rate seed injected retries rereads outcome");
    let mut healed = 0u64;
    let mut typed = 0u64;
    for c in &cells {
        println!(
            "RESULT {} {} {} {} {} {} {}",
            c.kind, c.rate, c.seed, c.injected, c.retries, c.rereads, c.outcome
        );
        if c.outcome == "ok" && c.injected > 0 {
            healed += 1;
        }
        if c.outcome.starts_with("err") {
            typed += 1;
        }
    }
    println!(
        "# summary: {} cells, {} healed-with-faults, {} typed errors, {} violations",
        cells.len(),
        healed,
        typed,
        violations.len()
    );

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("{}", v);
        }
        std::process::exit(1);
    }
    // The sweep is vacuous unless both survival paths were exercised:
    // some cells must heal injected faults and some must fail typed.
    if healed == 0 || typed == 0 {
        eprintln!(
            "SWEEP TOO WEAK: healed={} typed={} — adjust rates/seeds",
            healed, typed
        );
        std::process::exit(1);
    }
    println!("fault matrix passed");
}
