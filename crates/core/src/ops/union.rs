//! The union operator `R₁ ∪ R₂` (§2.4).
//!
//! Schemas must agree exactly (names, types, and C/R flags). The formula of
//! the result is the disjunction of both relations' formulas — syntactically,
//! just the concatenation of their constraint tuples.

use crate::error::Result;
use crate::relation::HRelation;

/// Applies the union.
pub fn union(left: &HRelation, right: &HRelation) -> Result<HRelation> {
    left.schema().require_same(right.schema())?;
    let mut out = left.clone();
    for t in right.tuples() {
        out.insert(t.clone());
    }
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrDef, Schema};
    use crate::value::Value;

    fn interval_rel(ranges: &[(i64, i64)]) -> HRelation {
        let s = Schema::new(vec![AttrDef::rat_con("x")]).unwrap();
        let mut r = HRelation::new(s);
        for &(lo, hi) in ranges {
            r.insert_with(|b| b.range("x", lo, hi)).unwrap();
        }
        r
    }

    #[test]
    fn union_concatenates_and_dedups() {
        let a = interval_rel(&[(0, 1), (5, 6)]);
        let b = interval_rel(&[(5, 6), (9, 10)]);
        let out = union(&a, &b).unwrap();
        assert_eq!(out.len(), 3, "(5,6) deduplicated");
        assert!(out.contains_point(&[Value::int(0)]).unwrap());
        assert!(out.contains_point(&[Value::int(10)]).unwrap());
        assert!(!out.contains_point(&[Value::int(3)]).unwrap());
    }

    #[test]
    fn union_requires_identical_schema() {
        let a = interval_rel(&[(0, 1)]);
        let s2 = Schema::new(vec![AttrDef::rat_rel("x")]).unwrap();
        let b = HRelation::new(s2);
        assert!(union(&a, &b).is_err(), "kind flag differs");
    }
}
