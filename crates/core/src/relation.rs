//! Heterogeneous relations: a schema plus a finite set of tuples.
//!
//! Per Definition 2 the relation's formula is the disjunction of its
//! tuples' formulas; its semantics is the (possibly infinite) set of points
//! satisfying that formula, with the C/R flag of §3.2 deciding the
//! missing-attribute reading per attribute.

use crate::error::Result;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use cqa_constraints::{Conjunction, Var};
use std::collections::BTreeSet;
use std::fmt;

/// A heterogeneous relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HRelation {
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl HRelation {
    /// An empty relation.
    pub fn new(schema: Schema) -> HRelation {
        HRelation { schema, tuples: Vec::new() }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of (syntactic) tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Appends a tuple (callers build it against this relation's schema).
    pub fn insert(&mut self, tuple: Tuple) {
        self.tuples.push(tuple);
    }

    /// Appends a tuple built by the given closure.
    pub fn insert_with(
        &mut self,
        f: impl FnOnce(crate::tuple::TupleBuilder<'_>) -> crate::tuple::TupleBuilder<'_>,
    ) -> Result<()> {
        let t = f(Tuple::builder(&self.schema)).build()?;
        self.tuples.push(t);
        Ok(())
    }

    /// Point membership: some tuple contains the point.
    pub fn contains_point(&self, point: &[Value]) -> Result<bool> {
        for t in &self.tuples {
            if t.contains_point(&self.schema, point)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Removes structurally duplicate tuples (canonical atom storage makes
    /// structural equality a sound approximation of semantic equality).
    pub fn dedup(&mut self) {
        let mut seen: BTreeSet<Tuple> = BTreeSet::new();
        self.tuples.retain(|t| seen.insert(t.clone()));
    }

    /// Drops tuples whose constraint part is unsatisfiable.
    pub fn drop_unsatisfiable(&mut self) {
        self.tuples.retain(|t| t.is_satisfiable());
    }

    /// A printer naming constraint variables after their attributes.
    pub fn var_namer(&self) -> impl Fn(Var) -> String + '_ {
        move |v: Var| {
            self.schema
                .attrs()
                .get(v.0 as usize)
                .map(|a| a.name.clone())
                .unwrap_or_else(|| v.to_string())
        }
    }

    /// Consumes the relation into its parts.
    pub fn into_parts(self) -> (Schema, Vec<Tuple>) {
        (self.schema, self.tuples)
    }

    /// Builds from parts (operators use this).
    pub(crate) fn from_parts(schema: Schema, tuples: Vec<Tuple>) -> HRelation {
        HRelation { schema, tuples }
    }

    /// Semantic equivalence check for *purely constraint* relations over
    /// the same schema: mutual containment of the denoted point sets.
    /// (Used in tests; exponential in the worst case.)
    pub fn equivalent_constraint_part(&self, other: &HRelation) -> bool {
        let to_dnf = |r: &HRelation| {
            cqa_constraints::Dnf::from_conjunctions(
                r.tuples.iter().map(|t| t.constraint().clone()),
            )
        };
        self.schema == other.schema && to_dnf(self).equivalent(&to_dnf(other))
    }
}

impl fmt::Display for HRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in &self.tuples {
            writeln!(f, "  {}", t.display(&self.schema))?;
        }
        Ok(())
    }
}

/// Remaps a conjunction's variables simultaneously: `mapping[i] = j` sends
/// `Var(i)` to `Var(j)`. Entries may permute freely; a two-phase rename
/// through a disjoint temporary range makes the substitution simultaneous.
pub(crate) fn remap_vars(conj: &Conjunction, mapping: &[(Var, Var)]) -> Conjunction {
    let max_var = conj
        .vars()
        .iter()
        .map(|v| v.0)
        .chain(mapping.iter().flat_map(|(a, b)| [a.0, b.0]))
        .max()
        .unwrap_or(0);
    let offset = max_var + 1;
    let mut out = conj.clone();
    for (from, _) in mapping {
        if out.mentions(*from) {
            out = out.rename(*from, Var(from.0 + offset));
        }
    }
    for (from, to) in mapping {
        if out.mentions(Var(from.0 + offset)) {
            out = out.rename(Var(from.0 + offset), *to);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrDef;
    use cqa_constraints::{Atom, LinExpr};
    use cqa_num::Rat;

    #[test]
    fn insert_and_membership() {
        let schema = Schema::new(vec![AttrDef::str_rel("id"), AttrDef::rat_con("x")]).unwrap();
        let mut r = HRelation::new(schema);
        r.insert_with(|b| b.set("id", "a").range("x", 0, 10)).unwrap();
        r.insert_with(|b| b.set("id", "b").range("x", 20, 30)).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains_point(&[Value::str("a"), Value::int(5)]).unwrap());
        assert!(r.contains_point(&[Value::str("b"), Value::int(25)]).unwrap());
        assert!(!r.contains_point(&[Value::str("a"), Value::int(25)]).unwrap());
    }

    #[test]
    fn dedup_and_drop_unsat() {
        let schema = Schema::new(vec![AttrDef::rat_con("x")]).unwrap();
        let mut r = HRelation::new(schema);
        r.insert_with(|b| b.range("x", 0, 1)).unwrap();
        r.insert_with(|b| b.range("x", 0, 1)).unwrap();
        r.insert_with(|b| b.range("x", 5, 2)).unwrap(); // unsatisfiable
        r.dedup();
        assert_eq!(r.len(), 2);
        r.drop_unsatisfiable();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn remap_swaps_variables() {
        // x0 ≤ x1 with swap 0↔1 becomes x1 ≤ x0.
        let conj = Conjunction::from_atoms([Atom::le(
            LinExpr::var(Var(0)),
            LinExpr::var(Var(1)),
        )]);
        let swapped = remap_vars(&conj, &[(Var(0), Var(1)), (Var(1), Var(0))]);
        let back = remap_vars(&swapped, &[(Var(0), Var(1)), (Var(1), Var(0))]);
        assert_eq!(conj, back);
        assert_ne!(conj, swapped);
        // Semantics: swapped holds at (x0=2, x1=1).
        let asg = cqa_constraints::Assignment::from_pairs([
            (Var(0), Rat::from_int(2)),
            (Var(1), Rat::from_int(1)),
        ]);
        assert_eq!(swapped.eval(&asg), Some(true));
        assert_eq!(conj.eval(&asg), Some(false));
    }

    #[test]
    fn display_lists_tuples() {
        let schema = Schema::new(vec![AttrDef::str_rel("id"), AttrDef::rat_con("x")]).unwrap();
        let mut r = HRelation::new(schema);
        r.insert_with(|b| b.set("id", "a").range("x", 0, 1)).unwrap();
        let shown = r.to_string();
        assert!(shown.contains("id = \"a\""), "{}", shown);
    }
}
