//! Microbenchmarks for the exact-arithmetic substrate: the rationals do
//! all the work in constraint evaluation, so their cost model matters.

use criterion::{criterion_group, criterion_main, Criterion};
use cqa::num::{BigInt, Rat};

fn bench_bigint(c: &mut Criterion) {
    let a: BigInt = "123456789012345678901234567890123456789".parse().unwrap();
    let b: BigInt = "987654321098765432109876543210".parse().unwrap();
    c.bench_function("bigint_mul_39x30_digits", |bch| bch.iter(|| &a * &b));
    let p = &a * &b;
    c.bench_function("bigint_divrem", |bch| bch.iter(|| p.divrem(&b)));
    c.bench_function("bigint_gcd", |bch| bch.iter(|| a.gcd(&b)));
}

fn bench_rat(c: &mut Criterion) {
    let a = Rat::from_pair(355, 113);
    let b = Rat::from_pair(22, 7);
    c.bench_function("rat_add", |bch| bch.iter(|| &a + &b));
    c.bench_function("rat_mul", |bch| bch.iter(|| &a * &b));
    c.bench_function("rat_cmp", |bch| bch.iter(|| a.cmp(&b)));
    // Large components from repeated accumulation (the FM growth pattern).
    let mut big = Rat::from_pair(1, 3);
    for i in 1..50 {
        big = &big * &Rat::from_pair(2 * i + 1, 2 * i - 1) + &Rat::from_pair(1, i);
    }
    let big2 = &big + &Rat::one();
    c.bench_function("rat_mul_large", |bch| bch.iter(|| &big * &big2));
}

criterion_group!(benches, bench_bigint, bench_rat);
criterion_main!(benches);
