//! # cqa-lang — the ASCII surface syntax of CQA/CDB
//!
//! §3.3 of the paper shows CQA queries written "using their English
//! equivalents … This allows queries to be representable in ASCII, for
//! portability of the system", broken into named steps:
//!
//! ```text
//! R0 = select landID = "A" from Landownership
//! R1 = project R0 on name, t
//! R2 = join R0 and Land
//! ```
//!
//! This crate implements that language — lexer, parser, lowering to
//! [`cqa_core::Plan`]s, and a step-wise [`run::ScriptRunner`] that stores
//! every intermediate result in the catalog, exactly like the Hurricane
//! case-study scripts. It also implements the `.cdb` file format for
//! declaring heterogeneous schemas, constraint tuples, and spatial
//! (vector-model) relations.
//!
//! Statement forms:
//!
//! ```text
//! NAME = select COND, COND, ... from INPUT
//! NAME = project INPUT on attr, attr, ...
//! NAME = join INPUT and INPUT
//! NAME = union INPUT and INPUT
//! NAME = diff INPUT and INPUT
//! NAME = rename attr to attr in INPUT
//! NAME = bufferjoin INPUT and INPUT distance NUMBER
//! NAME = knearest INPUT and INPUT k INTEGER
//! NAME = distance INPUT and INPUT          (parses; rejected as unsafe)
//! ```
//!
//! Conditions are linear comparisons (`t >= 4`, `x + 2*y < 3.5`,
//! `x = y`) or string equalities (`landID = "A"`, `name <> "bob"`).

pub mod ast;
pub mod db;
pub mod lex;
pub mod lower;
pub mod parse;
pub mod run;
pub mod schema_def;

pub use lex::LangError;
pub use run::ScriptRunner;
