//! Property-based tests for `cqa-num`, using `i128` arithmetic as the
//! oracle for values that fit, and algebraic laws for values that do not.


// Property suite: compiled only with `--features proptest` so the
// offline tier-1 run stays lean; see third_party/README.md.
#![cfg(feature = "proptest")]

use cqa_num::{BigInt, Rat};
use proptest::prelude::*;

fn big(v: i128) -> BigInt {
    BigInt::from(v)
}

proptest! {
    // ---------------- BigInt vs i128 oracle ----------------

    #[test]
    fn add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(big(a as i128) + big(b as i128), big(a as i128 + b as i128));
    }

    #[test]
    fn sub_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(big(a as i128) - big(b as i128), big(a as i128 - b as i128));
    }

    #[test]
    fn mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(big(a as i128) * big(b as i128), big(a as i128 * b as i128));
    }

    #[test]
    fn divrem_matches_i128(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |v| *v != 0)) {
        let (q, r) = big(a as i128).divrem(&big(b as i128));
        prop_assert_eq!(q, big(a as i128 / b as i128));
        prop_assert_eq!(r, big(a as i128 % b as i128));
    }

    #[test]
    fn cmp_matches_i128(a in any::<i128>(), b in any::<i128>()) {
        prop_assert_eq!(big(a).cmp(&big(b)), a.cmp(&b));
    }

    #[test]
    fn display_matches_i128(a in any::<i128>()) {
        prop_assert_eq!(big(a).to_string(), a.to_string());
    }

    #[test]
    fn parse_roundtrip(a in any::<i128>()) {
        let s = big(a).to_string();
        prop_assert_eq!(s.parse::<BigInt>().unwrap(), big(a));
    }

    // ---------------- BigInt algebraic laws (beyond i128 range) ----------------

    #[test]
    fn divrem_reconstructs(a in any::<i128>(), b in any::<i128>(), c in any::<i128>().prop_filter("nonzero", |v| *v != 0)) {
        // Build numbers well beyond 128 bits by multiplication.
        let u = big(a) * big(b) + big(c);
        let v = big(c);
        let (q, r) = u.divrem(&v);
        prop_assert_eq!(&q * &v + &r, u);
        prop_assert!(r.abs() < v.abs());
    }

    #[test]
    fn mul_commutes_large(a in any::<i128>(), b in any::<i128>()) {
        prop_assert_eq!(big(a) * big(b), big(b) * big(a));
    }

    #[test]
    fn mul_distributes_large(a in any::<i128>(), b in any::<i128>(), c in any::<i128>()) {
        let (a, b, c) = (big(a), big(b), big(c));
        prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
    }

    #[test]
    fn gcd_divides_both(a in any::<i64>(), b in any::<i64>()) {
        let g = big(a as i128).gcd(&big(b as i128));
        if !g.is_zero() {
            prop_assert!((big(a as i128) % &g).is_zero());
            prop_assert!((big(b as i128) % &g).is_zero());
        } else {
            prop_assert_eq!(a, 0);
            prop_assert_eq!(b, 0);
        }
    }

    #[test]
    fn shl_is_mul_by_power_of_two(a in any::<i64>(), s in 0u32..100) {
        prop_assert_eq!(big(a as i128).shl(s), big(a as i128) * big(2).pow(s));
    }

    // ---------------- Rat laws ----------------

    #[test]
    fn rat_add_sub_inverse(p1 in any::<i32>(), q1 in 1i32..10_000, p2 in any::<i32>(), q2 in 1i32..10_000) {
        let a = Rat::from_pair(p1 as i64, q1 as i64);
        let b = Rat::from_pair(p2 as i64, q2 as i64);
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn rat_mul_div_inverse(p1 in any::<i32>(), q1 in 1i32..10_000, p2 in any::<i32>().prop_filter("nonzero", |v| *v != 0), q2 in 1i32..10_000) {
        let a = Rat::from_pair(p1 as i64, q1 as i64);
        let b = Rat::from_pair(p2 as i64, q2 as i64);
        prop_assert_eq!(&(&a * &b) / &b, a);
    }

    #[test]
    fn rat_order_total(p1 in any::<i32>(), q1 in 1i32..10_000, p2 in any::<i32>(), q2 in 1i32..10_000) {
        let a = Rat::from_pair(p1 as i64, q1 as i64);
        let b = Rat::from_pair(p2 as i64, q2 as i64);
        // cross-multiplication oracle with i128
        let lhs = p1 as i128 * q2 as i128;
        let rhs = p2 as i128 * q1 as i128;
        prop_assert_eq!(a.cmp(&b), lhs.cmp(&rhs));
    }

    #[test]
    fn rat_canonical_equality(p in any::<i32>(), q in 1i32..1000, k in 1i32..1000) {
        let a = Rat::from_pair(p as i64, q as i64);
        let b = Rat::from_pair(p as i64 * k as i64, q as i64 * k as i64);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rat_parse_display_roundtrip(p in any::<i32>(), q in 1i32..10_000) {
        let a = Rat::from_pair(p as i64, q as i64);
        prop_assert_eq!(a.to_string().parse::<Rat>().unwrap(), a);
    }

    #[test]
    fn rat_floor_ceil_bracket(p in any::<i32>(), q in 1i32..10_000) {
        let a = Rat::from_pair(p as i64, q as i64);
        let fl = Rat::from(a.floor());
        let ce = Rat::from(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!(&ce - &fl <= Rat::one());
    }

    #[test]
    fn rat_to_f64_close(p in -1_000_000i64..1_000_000, q in 1i64..1_000_000) {
        let a = Rat::from_pair(p, q);
        let expect = p as f64 / q as f64;
        prop_assert!((a.to_f64() - expect).abs() <= expect.abs() * 1e-12 + 1e-12);
    }
}

proptest! {
    #[test]
    fn bigint_bytes_roundtrip(a in any::<i128>()) {
        let v = big(a);
        prop_assert_eq!(BigInt::from_bytes(&v.to_bytes()), Some(v.clone()));
        let w = &v * &v * &v; // beyond i128
        prop_assert_eq!(BigInt::from_bytes(&w.to_bytes()), Some(w));
    }
}
