//! Property-based tests for the constraint layer.
//!
//! The key soundness property is the closure principle of §2.5: syntactic
//! operations on constraint representations must agree with the semantic
//! (set-of-points) operations. We check this by sampling random small
//! conjunctions/formulas and random rational points, and comparing the
//! results of syntactic manipulation against pointwise evaluation.


// Property suite: compiled only with `--features proptest` so the
// offline tier-1 run stays lean; see third_party/README.md.
#![cfg(feature = "proptest")]

use cqa_constraints::{Assignment, Atom, Conjunction, Dnf, LinExpr, Var};
use cqa_num::Rat;
use proptest::prelude::*;

const X: Var = Var(0);
const Y: Var = Var(1);
const Z: Var = Var(2);

/// A small rational from compact parts, so random points often hit
/// constraint boundaries.
fn rat(n: i32, d: u8) -> Rat {
    Rat::from_pair(n as i64, d as i64 % 4 + 1)
}

/// Strategy: one random atom over x, y, z with small coefficients.
fn arb_atom() -> impl Strategy<Value = Atom> {
    (
        -3i32..=3,
        -3i32..=3,
        -3i32..=3,
        -6i32..=6,
        0u8..3,
    )
        .prop_filter("nontrivial", |(a, b, c, _, _)| *a != 0 || *b != 0 || *c != 0)
        .prop_map(|(a, b, c, k, rel)| {
            let e = LinExpr::from_terms(
                [
                    (X, Rat::from_int(a as i64)),
                    (Y, Rat::from_int(b as i64)),
                    (Z, Rat::from_int(c as i64)),
                ],
                Rat::from_int(k as i64),
            );
            match rel {
                0 => Atom::new(e, cqa_constraints::Rel::Le),
                1 => Atom::new(e, cqa_constraints::Rel::Lt),
                _ => Atom::new(e, cqa_constraints::Rel::Eq),
            }
        })
}

fn arb_conj(max_atoms: usize) -> impl Strategy<Value = Conjunction> {
    prop::collection::vec(arb_atom(), 0..=max_atoms).prop_map(Conjunction::from_atoms)
}

fn arb_point() -> impl Strategy<Value = Assignment> {
    (-4i32..=4, 0u8..4, -4i32..=4, 0u8..4, -4i32..=4, 0u8..4).prop_map(|(a, ad, b, bd, c, cd)| {
        Assignment::from_pairs([(X, rat(a, ad)), (Y, rat(b, bd)), (Z, rat(c, cd))])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// If a point satisfies the conjunction, the conjunction is satisfiable.
    #[test]
    fn sat_is_sound(c in arb_conj(4), p in arb_point()) {
        if c.eval(&p) == Some(true) {
            prop_assert!(c.is_satisfiable());
        }
    }

    /// Projection is the shadow: a satisfying point of C restricted to the
    /// remaining variables satisfies ∃z.C, and an unsatisfiable projection
    /// means no point satisfies C.
    #[test]
    fn projection_soundness(c in arb_conj(4), p in arb_point()) {
        let projected = c.eliminate([Z]);
        if c.eval(&p) == Some(true) {
            let restricted = p.restrict([X, Y]);
            // The projection mentions only x, y, so eval is decided.
            prop_assert_eq!(projected.eval(&restricted), Some(true));
        }
        if !projected.is_satisfiable() {
            prop_assert!(!c.is_satisfiable());
        }
    }

    /// The cheap bounding-box filter is sound: whenever `quick_disjoint`
    /// claims two conjunctions cannot share a point, the exact conjunction
    /// of the two must be unsatisfiable. (The box is conservative, so the
    /// converse is not required.)
    #[test]
    fn quick_disjoint_implies_unsat(a in arb_conj(4), b in arb_conj(4)) {
        if a.quick_disjoint(&b, 3) {
            prop_assert!(!a.and(&b).is_satisfiable(),
                "quick_disjoint rejected a satisfiable pair: {} vs {}", a, b);
        }
    }

    /// And the box really encloses the conjunction: any satisfying point
    /// lies inside the (widened) per-dimension bounds.
    #[test]
    fn quick_box_encloses_satisfying_points(c in arb_conj(4), p in arb_point()) {
        if c.eval(&p) == Some(true) {
            let bx = c.quick_box(3);
            for (d, v) in [(0usize, X), (1, Y), (2, Z)] {
                let (lo, hi) = bx.dim(d);
                let vf = p.get(v).unwrap().to_f64();
                prop_assert!(lo <= vf && vf <= hi,
                    "dim {} point {} outside box [{}, {}] for {}", d, vf, lo, hi, c);
            }
        }
    }

    /// Projection is exact (not just an over-approximation): every point of
    /// the projection extends to a witness. We verify via sample_point on
    /// the extension problem.
    #[test]
    fn projection_completeness(c in arb_conj(3), p in arb_point()) {
        let projected = c.eliminate([Z]);
        let restricted = p.restrict([X, Y]);
        if projected.eval(&restricted) == Some(true) {
            // Fix x, y at the point; the z-problem must be satisfiable.
            let mut fixed = c.clone();
            fixed = fixed.substitute(X, &LinExpr::constant(p.get(X).unwrap().clone()));
            fixed = fixed.substitute(Y, &LinExpr::constant(p.get(Y).unwrap().clone()));
            prop_assert!(fixed.is_satisfiable(),
                "projection said ({:?}) extends, but it does not; conj = {}", restricted, c);
        }
    }

    /// sample_point returns a genuine witness whenever it returns at all,
    /// and returns None only for unsatisfiable conjunctions.
    #[test]
    fn sample_point_is_witness(c in arb_conj(4)) {
        match c.sample_point(&[X, Y, Z]) {
            Some(p) => prop_assert_eq!(c.eval(&p), Some(true)),
            None => prop_assert!(!c.is_satisfiable()),
        }
    }

    /// Entailment agrees with pointwise implication on sampled points.
    #[test]
    fn entailment_sound(c in arb_conj(3), a in arb_atom(), p in arb_point()) {
        if c.implies_atom(&a) && c.eval(&p) == Some(true) {
            prop_assert_eq!(a.eval(&p), Some(true));
        }
    }

    /// simplify preserves semantics.
    #[test]
    fn simplify_preserves_semantics(c in arb_conj(4), p in arb_point()) {
        let s = c.simplify();
        prop_assert_eq!(s.eval(&p).unwrap_or(false), c.eval(&p).unwrap_or(false));
    }

    /// Bounds are exact projections onto one variable.
    #[test]
    fn bounds_contain_all_points(c in arb_conj(4), p in arb_point()) {
        if c.eval(&p) == Some(true) {
            for v in [X, Y, Z] {
                prop_assert!(c.bounds(v).contains(p.get(v).unwrap()),
                    "bounds({}) of {} missed witness", v, c);
            }
        }
    }

    /// DNF negation complements pointwise.
    #[test]
    fn dnf_negation_complements(cs in prop::collection::vec(arb_conj(2), 0..3), p in arb_point()) {
        let d = Dnf::from_conjunctions(cs);
        let n = d.negate();
        let dv = d.eval(&p).unwrap_or(false);
        let nv = n.eval(&p).unwrap_or(false);
        prop_assert_eq!(dv, !nv, "d = {}, ¬d = {}", d, n);
    }

    /// DNF difference is pointwise set difference.
    #[test]
    fn dnf_difference_pointwise(
        a in prop::collection::vec(arb_conj(2), 0..3),
        b in prop::collection::vec(arb_conj(2), 0..3),
        p in arb_point()
    ) {
        let da = Dnf::from_conjunctions(a);
        let db = Dnf::from_conjunctions(b);
        let diff = da.minus(&db);
        let want = da.eval(&p).unwrap_or(false) && !db.eval(&p).unwrap_or(false);
        prop_assert_eq!(diff.eval(&p).unwrap_or(false), want);
    }

    /// DNF normalize preserves semantics.
    #[test]
    fn dnf_normalize_preserves(cs in prop::collection::vec(arb_conj(3), 0..4), p in arb_point()) {
        let d = Dnf::from_conjunctions(cs);
        let n = d.normalize();
        prop_assert_eq!(d.eval(&p).unwrap_or(false), n.eval(&p).unwrap_or(false));
    }
}

/// Interval algebra properties: intersection is pointwise conjunction, and
/// membership respects strictness at the endpoints.
mod interval_props {
    use cqa_constraints::{Bound, Interval};
    use cqa_num::Rat;
    use proptest::prelude::*;

    fn arb_bound() -> impl Strategy<Value = Option<Bound>> {
        prop::option::of((-20i64..20, any::<bool>()).prop_map(|(v, strict)| Bound {
            value: Rat::from_int(v),
            strict,
        }))
    }

    fn arb_interval() -> impl Strategy<Value = Interval> {
        (arb_bound(), arb_bound()).prop_map(|(lo, hi)| Interval::new(lo, hi))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn intersection_is_pointwise_and(a in arb_interval(), b in arb_interval(), p in -21i64..21, half in any::<bool>()) {
            let v = if half { Rat::from_pair(2 * p + 1, 2) } else { Rat::from_int(p) };
            let i = a.intersect(&b);
            prop_assert_eq!(i.contains(&v), a.contains(&v) && b.contains(&v));
        }

        #[test]
        fn empty_contains_nothing(a in arb_interval(), p in -21i64..21) {
            if a.is_empty() {
                prop_assert!(!a.contains(&Rat::from_int(p)));
                prop_assert!(a.width().is_none());
            }
        }

        #[test]
        fn overlap_symmetric(a in arb_interval(), b in arb_interval()) {
            prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
            prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        }

        #[test]
        fn f64_bounds_enclose(a in arb_interval(), p in -21i64..21) {
            let v = Rat::from_int(p);
            if a.contains(&v) {
                let (lo, hi) = a.to_f64_bounds();
                prop_assert!(lo <= p as f64 && p as f64 <= hi);
            }
        }
    }
}
