//! Minimal blocking telemetry listener: `GET /metrics` over TCP.
//!
//! Std-only by design (the workspace builds offline): one accept-loop
//! thread, one connection handled at a time, `Connection: close` on
//! every response. That is exactly enough for a Prometheus scraper or
//! `curl`, and deliberately nothing more — this is a diagnostics port,
//! not a web server.
//!
//! The `/metrics` body is [`prom::render`] of a fresh snapshot, the same
//! function behind the shell's `\metrics export`, so the two surfaces
//! are byte-identical for the same registry state (verify.sh checks
//! this).
//!
//! Shutdown: dropping the [`TelemetryServer`] sets a stop flag and makes
//! a wake-up connection to its own port so the blocking `accept` returns
//! promptly, then joins the thread.

use crate::prom;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Handle to a running listener; drop to stop it.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock accept() with a throwaway connection to ourselves.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        content_type,
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn handle(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    // Read until the end of the request head (or a small cap — we only
    // need the request line, and a diagnostics port need not accept
    // arbitrarily long requests).
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        respond(&mut stream, "405 Method Not Allowed", "text/plain; charset=utf-8", "GET only\n");
        return;
    }
    match path {
        "/metrics" => {
            let body = prom::render(&crate::metrics::snapshot());
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/" => respond(
            &mut stream,
            "200 OK",
            "text/plain; charset=utf-8",
            "cqa telemetry: scrape /metrics\n",
        ),
        _ => respond(&mut stream, "404 Not Found", "text/plain; charset=utf-8", "not found\n"),
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9464`, or port 0 for an ephemeral port)
/// and serves `GET /metrics` until the returned handle is dropped.
pub fn serve(addr: impl ToSocketAddrs) -> std::io::Result<TelemetryServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_worker = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("cqa-telemetry".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if stop_worker.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(stream) = stream {
                    handle(stream);
                }
            }
        })?;
    Ok(TelemetryServer { addr, stop, handle: Some(handle) })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {} HTTP/1.1\r\nHost: x\r\n\r\n", path).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        let (head, body) = out.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_and_stops_on_drop() {
        crate::metrics::counter("test.http.pings").add(2);
        let server = serve("127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{}", head);
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("cqa_test_http_pings 2\n"));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));
        let (head, body) = get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(body.contains("scrape /metrics"));

        drop(server);
        // The port stops accepting once the server is gone (give the OS
        // a moment to tear the listener down).
        std::thread::sleep(Duration::from_millis(50));
        let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err();
        assert!(refused, "listener should be closed after drop");
    }
}
