//! The selection operator `ς_ξ(R)` (§2.4).
//!
//! The selection condition ξ is a conjunction of constraints over the
//! relation's attributes. Under the heterogeneous model each conjunct is
//! evaluated per tuple:
//!
//! * predicates over **relational** attributes are evaluated against the
//!   stored values — a null never satisfies a predicate (narrow semantics);
//! * predicates over **constraint** attributes are *conjoined* with the
//!   tuple's constraint part, and the tuple survives iff the result is
//!   satisfiable;
//! * mixed predicates substitute the relational values and conjoin the
//!   residual.
//!
//! This is exactly the asymmetry of the paper's Example 3:
//! `select x=17` vs `select y=17` behave differently when `x` is relational
//! and `y` is constraint.

use crate::error::{CoreError, Result};
use crate::par::{try_map_chunks, ExecOptions, ExecStats};
use crate::relation::HRelation;
use crate::schema::{AttrKind, AttrType, Schema};
use crate::tuple::Tuple;
use crate::value::Value;
use cqa_constraints::{Atom, Conjunction, LinExpr, Rel};
use cqa_num::Rat;
use std::fmt;

/// Comparison operators of the surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` — only valid over relational attributes (the linear constraint
    /// class has no `≠` atoms; §2.4).
    Ne,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Le => "<=",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
        })
    }
}

/// One conjunct of a selection condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `Σ coeffᵢ·attrᵢ + constant  op  0` over rational attributes (named;
    /// resolved against the schema at evaluation time).
    Linear {
        /// Named attribute terms.
        terms: Vec<(String, Rat)>,
        /// Constant addend.
        constant: Rat,
        /// The comparison against zero.
        op: CmpOp,
    },
    /// String comparison on a relational attribute.
    Str {
        /// Attribute name.
        attr: String,
        /// `=` or `<>`.
        op: CmpOp,
        /// The literal to compare with.
        value: String,
    },
}

/// A conjunction of predicates — the ξ of `ς_ξ(R)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Selection {
    predicates: Vec<Predicate>,
}

impl Selection {
    /// The always-true selection.
    pub fn all() -> Selection {
        Selection::default()
    }

    /// The conjuncts.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Adds an arbitrary predicate.
    pub fn with(mut self, p: Predicate) -> Selection {
        self.predicates.push(p);
        self
    }

    /// Adds `attr op value` for a rational comparison.
    pub fn cmp(self, attr: impl Into<String>, op: CmpOp, value: Rat) -> Selection {
        self.with(Predicate::Linear {
            terms: vec![(attr.into(), Rat::one())],
            constant: -value,
            op,
        })
    }

    /// Adds `attr op value` for an integer literal.
    pub fn cmp_int(self, attr: impl Into<String>, op: CmpOp, value: i64) -> Selection {
        self.cmp(attr, op, Rat::from_int(value))
    }

    /// Adds `attr₁ op attr₂` comparing two rational attributes.
    pub fn cmp_attrs(
        self,
        left: impl Into<String>,
        op: CmpOp,
        right: impl Into<String>,
    ) -> Selection {
        self.with(Predicate::Linear {
            terms: vec![(left.into(), Rat::one()), (right.into(), -Rat::one())],
            constant: Rat::zero(),
            op,
        })
    }

    /// Adds a string equality `attr = value`.
    pub fn str_eq(self, attr: impl Into<String>, value: impl Into<String>) -> Selection {
        self.with(Predicate::Str { attr: attr.into(), op: CmpOp::Eq, value: value.into() })
    }

    /// Adds a string disequality `attr <> value`.
    pub fn str_ne(self, attr: impl Into<String>, value: impl Into<String>) -> Selection {
        self.with(Predicate::Str { attr: attr.into(), op: CmpOp::Ne, value: value.into() })
    }

    /// All attribute names this selection mentions.
    pub fn attrs(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for p in &self.predicates {
            match p {
                Predicate::Linear { terms, .. } => {
                    out.extend(terms.iter().map(|(n, _)| n.as_str()))
                }
                Predicate::Str { attr, .. } => out.push(attr.as_str()),
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Outcome of specializing one predicate against one tuple.
enum Applied {
    /// Tuple fails the predicate outright.
    Reject,
    /// Predicate reduced to a ground truth of `true`.
    Accept,
    /// Residual constraint to conjoin (involves constraint attributes).
    Residual(Vec<Atom>),
}

/// Validates a selection against a schema (attribute existence, types, and
/// the no-`≠`-over-constraints rule) without touching any tuples.
pub fn validate(schema: &Schema, selection: &Selection) -> Result<()> {
    for pred in selection.predicates() {
        match pred {
            Predicate::Str { attr, op, value: _ } => {
                let def = schema.attr(attr)?;
                if def.ty != AttrType::Str || def.kind != AttrKind::Relational {
                    return Err(CoreError::BadPredicate(format!(
                        "string predicate on non-string attribute {:?}",
                        attr
                    )));
                }
                if !matches!(op, CmpOp::Eq | CmpOp::Ne) {
                    return Err(CoreError::BadPredicate(format!(
                        "operator {} is not defined on strings",
                        op
                    )));
                }
            }
            Predicate::Linear { terms, op, .. } => {
                for (name, _) in terms {
                    let def = schema.attr(name)?;
                    if def.ty != AttrType::Rat {
                        return Err(CoreError::BadPredicate(format!(
                            "numeric predicate on string attribute {:?}",
                            name
                        )));
                    }
                    if *op == CmpOp::Ne && def.kind == AttrKind::Constraint {
                        return Err(CoreError::BadPredicate(
                            "<> over constraint attributes is not a linear constraint"
                                .to_string(),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Applies `ς_ξ` to a relation with default [`ExecOptions`].
pub fn select(rel: &HRelation, selection: &Selection) -> Result<HRelation> {
    select_opts(rel, selection, &ExecOptions::default(), &ExecStats::new())
}

/// Applies `ς_ξ` with explicit execution options.
///
/// Tuples are independent, so the outer loop runs on the deterministic
/// chunked executor; output order matches the serial evaluation exactly.
/// With `bbox_filter` on, a tuple whose residual conjunction has a
/// float-empty [`cqa_constraints::QuickBox`] is rejected without the
/// exact satisfiability check — the box is an outward approximation, so
/// this skips only tuples the exact check would reject too (bit-identical
/// output either way).
pub fn select_opts(
    rel: &HRelation,
    selection: &Selection,
    opts: &ExecOptions,
    stats: &ExecStats,
) -> Result<HRelation> {
    validate(rel.schema(), selection)?;
    let schema = rel.schema();
    let arity = schema.arity();
    let governor = &opts.governor;
    let produced: Vec<Result<Option<Tuple>>> =
        try_map_chunks(rel.tuples(), opts.effective_threads(), Some(governor.token()), |tuple| {
            governor.check()?;
            let mut residual: Conjunction = tuple.constraint().clone();
            for pred in selection.predicates() {
                match apply_predicate(schema, tuple, pred)? {
                    Applied::Reject => return Ok(None),
                    Applied::Accept => {}
                    Applied::Residual(atoms) => {
                        for a in atoms {
                            residual.add(a);
                        }
                    }
                }
            }
            if opts.bbox_filter {
                let rejected = residual.quick_box(arity).is_known_empty();
                stats.record(rejected);
                if rejected {
                    return Ok(None);
                }
            }
            if residual.is_satisfiable_budgeted(governor.fm_budget(stats))? {
                Ok(Some(Tuple::from_parts(tuple.values().to_vec(), residual)))
            } else {
                Ok(None)
            }
        })
        .map_err(|_| governor.interrupt_error())?;
    let mut out = HRelation::new(schema.clone());
    for row in produced {
        if let Some(t) = row? {
            out.insert(t);
        }
    }
    Ok(out)
}

fn apply_predicate(schema: &Schema, tuple: &Tuple, pred: &Predicate) -> Result<Applied> {
    match pred {
        Predicate::Str { attr, op, value } => {
            let def = schema.attr(attr)?;
            if def.ty != AttrType::Str || def.kind != AttrKind::Relational {
                return Err(CoreError::BadPredicate(format!(
                    "string predicate on non-string attribute {:?}",
                    attr
                )));
            }
            let idx = schema.position(attr)?;
            let held = match tuple.value(idx) {
                None => return Ok(Applied::Reject), // null: narrow
                Some(Value::Str(s)) => s == value,
                Some(_) => unreachable!("validated string attribute"),
            };
            let pass = match op {
                CmpOp::Eq => held,
                CmpOp::Ne => !held,
                other => {
                    return Err(CoreError::BadPredicate(format!(
                        "operator {} is not defined on strings",
                        other
                    )))
                }
            };
            Ok(if pass { Applied::Accept } else { Applied::Reject })
        }
        Predicate::Linear { terms, constant, op } => {
            // Build the linear expression, substituting relational values.
            let mut expr = LinExpr::constant(constant.clone());
            for (name, coeff) in terms {
                let def = schema.attr(name)?;
                if def.ty != AttrType::Rat {
                    return Err(CoreError::BadPredicate(format!(
                        "numeric predicate on string attribute {:?}",
                        name
                    )));
                }
                let idx = schema.position(name)?;
                match def.kind {
                    AttrKind::Constraint => expr.add_term(schema.var(idx), coeff.clone()),
                    AttrKind::Relational => match tuple.value(idx) {
                        None => return Ok(Applied::Reject), // null: narrow
                        Some(Value::Rat(v)) => {
                            let shifted = expr.constant_term() + &(coeff * v);
                            expr.set_constant(shifted);
                        }
                        Some(_) => unreachable!("validated rational attribute"),
                    },
                }
            }
            // ≠ requires a ground (fully relational) expression: the linear
            // constraint class has no disequality atoms.
            let atoms: Vec<Atom> = match op {
                CmpOp::Eq => vec![Atom::new(expr, Rel::Eq)],
                CmpOp::Le => vec![Atom::new(expr, Rel::Le)],
                CmpOp::Lt => vec![Atom::new(expr, Rel::Lt)],
                CmpOp::Ge => vec![Atom::new(-&expr, Rel::Le)],
                CmpOp::Gt => vec![Atom::new(-&expr, Rel::Lt)],
                CmpOp::Ne => {
                    if !expr.is_constant() {
                        return Err(CoreError::BadPredicate(
                            "<> over constraint attributes is not a linear constraint"
                                .to_string(),
                        ));
                    }
                    return Ok(if expr.constant_term().is_zero() {
                        Applied::Reject
                    } else {
                        Applied::Accept
                    });
                }
            };
            // Ground atoms decide immediately; others join the residual.
            if let Some(truth) = atoms[0].ground_truth() {
                return Ok(if truth { Applied::Accept } else { Applied::Reject });
            }
            Ok(Applied::Residual(atoms))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrDef;

    /// The paper's Example 3 relation:
    /// R = {(x = 1), (y = 1), (x = 17, y = 17)} with
    /// schema [x: relational, y: constraint].
    fn example3() -> HRelation {
        let schema =
            Schema::new(vec![AttrDef::rat_rel("x"), AttrDef::rat_con("y")]).unwrap();
        let mut r = HRelation::new(schema);
        r.insert_with(|b| b.set("x", 1)).unwrap();
        r.insert_with(|b| b.pin("y", Rat::from_int(1))).unwrap();
        r.insert_with(|b| b.set("x", 17).pin("y", Rat::from_int(17))).unwrap();
        r
    }

    #[test]
    fn example3_select_on_relational_attribute() {
        // ς_{x=17} R returns only {(x = 17, y = 17)}: the tuple (y = 1) has
        // a *null* x, which never matches (narrow).
        let r = example3();
        let out = select(&r, &Selection::all().cmp_int("x", CmpOp::Eq, 17)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0].value(0), Some(&Value::int(17)));
    }

    #[test]
    fn example3_select_on_constraint_attribute() {
        // ς_{y=17} R returns {(x = 1, y = 17), (x = 17, y = 17)}: the first
        // tuple's unmentioned y is broad, so conjoining y=17 keeps it.
        let r = example3();
        let out = select(&r, &Selection::all().cmp_int("y", CmpOp::Eq, 17)).unwrap();
        assert_eq!(out.len(), 2);
        let xs: Vec<Option<&Value>> = out.tuples().iter().map(|t| t.value(0)).collect();
        assert!(xs.contains(&Some(&Value::int(1))));
        assert!(xs.contains(&Some(&Value::int(17))));
        // And the y=1 tuple is gone: 1 = 17 is unsatisfiable.
    }

    #[test]
    fn example2_broad_vs_narrow() {
        // Example 2: R = {(x = 1)} over constraint {x, y}: ς_{y=17} keeps
        // the tuple. The same data with y relational returns nothing.
        let cschema =
            Schema::new(vec![AttrDef::rat_con("x"), AttrDef::rat_con("y")]).unwrap();
        let mut constraint_rel = HRelation::new(cschema);
        constraint_rel.insert_with(|b| b.pin("x", Rat::from_int(1))).unwrap();
        let out =
            select(&constraint_rel, &Selection::all().cmp_int("y", CmpOp::Eq, 17)).unwrap();
        assert_eq!(out.len(), 1, "broad semantics: y = 17 admitted");
        assert!(out
            .contains_point(&[Value::int(1), Value::int(17)])
            .unwrap());

        let rschema =
            Schema::new(vec![AttrDef::rat_con("x"), AttrDef::rat_rel("y")]).unwrap();
        let mut rel_rel = HRelation::new(rschema);
        rel_rel.insert_with(|b| b.pin("x", Rat::from_int(1))).unwrap();
        let out = select(&rel_rel, &Selection::all().cmp_int("y", CmpOp::Eq, 17)).unwrap();
        assert!(out.is_empty(), "narrow semantics: missing y never matches");
    }

    #[test]
    fn range_selection_on_constraint_attribute() {
        let schema = Schema::new(vec![AttrDef::rat_con("t")]).unwrap();
        let mut r = HRelation::new(schema);
        r.insert_with(|b| b.range("t", 0, 10)).unwrap();
        r.insert_with(|b| b.range("t", 20, 30)).unwrap();
        let out = select(
            &r,
            &Selection::all()
                .cmp_int("t", CmpOp::Ge, 4)
                .cmp_int("t", CmpOp::Le, 9),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains_point(&[Value::int(5)]).unwrap());
        assert!(!out.contains_point(&[Value::int(2)]).unwrap(), "residual narrows the tuple");
    }

    #[test]
    fn string_predicates() {
        let schema = Schema::new(vec![AttrDef::str_rel("name")]).unwrap();
        let mut r = HRelation::new(schema);
        r.insert_with(|b| b.set("name", "ann")).unwrap();
        r.insert_with(|b| b.set("name", "bob")).unwrap();
        r.insert_with(|b| b).unwrap(); // null name
        let eq = select(&r, &Selection::all().str_eq("name", "ann")).unwrap();
        assert_eq!(eq.len(), 1);
        let ne = select(&r, &Selection::all().str_ne("name", "ann")).unwrap();
        assert_eq!(ne.len(), 1, "null fails <> too (narrow)");
    }

    #[test]
    fn attr_to_attr_comparison() {
        let schema = Schema::new(vec![AttrDef::rat_con("x"), AttrDef::rat_con("y")]).unwrap();
        let mut r = HRelation::new(schema);
        r.insert_with(|b| b.range("x", 0, 10).range("y", 5, 6)).unwrap();
        let out = select(&r, &Selection::all().cmp_attrs("x", CmpOp::Ge, "y")).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains_point(&[Value::int(6), Value::int(5)]).unwrap());
        assert!(!out.contains_point(&[Value::int(4), Value::int(5)]).unwrap());
    }

    #[test]
    fn bad_predicates_rejected() {
        let schema = Schema::new(vec![AttrDef::str_rel("s"), AttrDef::rat_con("x")]).unwrap();
        let r = HRelation::new(schema);
        assert!(select(&r, &Selection::all().cmp_int("s", CmpOp::Le, 3)).is_err());
        assert!(select(&r, &Selection::all().str_eq("x", "v")).is_err());
        assert!(select(&r, &Selection::all().cmp_int("missing", CmpOp::Eq, 1)).is_err());
        assert!(select(&r, &Selection::all().cmp_int("x", CmpOp::Ne, 1)).is_err());
    }

    #[test]
    fn ne_on_relational_rationals() {
        let schema = Schema::new(vec![AttrDef::rat_rel("age")]).unwrap();
        let mut r = HRelation::new(schema);
        r.insert_with(|b| b.set("age", 40)).unwrap();
        r.insert_with(|b| b.set("age", 41)).unwrap();
        let out = select(&r, &Selection::all().cmp_int("age", CmpOp::Ne, 40)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0].value(0), Some(&Value::int(41)));
    }
}
