//! Fixed-size pages with a slotted record layout.
//!
//! Layout of a slotted page (offsets in bytes):
//!
//! ```text
//! 0..2    number of slots (u16)
//! 2..4    offset of the start of the record area (u16, grows downward)
//! 4..8    page checksum (u32 LE): CRC-32 (IEEE) of the page with these
//!         four bytes treated as zero; the stored value 0 means "unsealed"
//!         (a computed CRC of 0 is stored as 0xFFFF_FFFF to stay distinct)
//! 8..     slot directory: per slot, record offset (u16) and length (u16);
//!         a slot with offset 0 is a tombstone (page offsets < 8 are
//!         impossible for live records)
//! ...     free space
//! ...     records, packed against the end of the page
//! ```
//!
//! The checksum is maintained by checksummed [`BufferPool`](crate::BufferPool)s
//! on writeback; an all-zeros or freshly `init`ed page verifies trivially.

use crate::{Result, StorageError};

/// Size of every page in bytes. Chosen to match a common filesystem block.
pub const PAGE_SIZE: usize = 4096;

const HDR: usize = 8;
const SLOT: usize = 4;
const CRC_START: usize = 4;
const CRC_END: usize = 8;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` with the checksum field (bytes 4..8) treated as zero.
fn page_crc(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut step = |byte: u8| {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    };
    for (i, &b) in data.iter().enumerate() {
        if (CRC_START..CRC_END).contains(&i) {
            step(0);
        } else {
            step(b);
        }
    }
    !crc
}

/// The stored encoding of a computed CRC: `0` is reserved for "unsealed",
/// so a computed CRC of 0 is stored as `0xFFFF_FFFF`.
fn encode_crc(crc: u32) -> u32 {
    if crc == 0 {
        0xFFFF_FFFF
    } else {
        crc
    }
}

/// Identifier of a page within a disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

/// A view over a page's bytes interpreting the slotted layout.
pub struct SlottedPage<'a> {
    data: &'a mut [u8],
}

impl<'a> SlottedPage<'a> {
    /// Wraps page bytes. The caller must have initialized the page with
    /// [`SlottedPage::init`] at some point (all-zeros is a valid empty page
    /// except for the record-area pointer, which `init` sets).
    pub fn new(data: &'a mut [u8]) -> SlottedPage<'a> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        SlottedPage { data }
    }

    /// Formats the page as empty (and unsealed).
    pub fn init(data: &mut [u8]) {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        data[0..2].copy_from_slice(&0u16.to_le_bytes());
        data[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        data[CRC_START..CRC_END].copy_from_slice(&0u32.to_le_bytes());
    }

    /// Stamps the page's checksum field so [`Self::verify_checksum`] can
    /// detect torn writes and bit flips. Called by checksummed buffer
    /// pools on writeback; only meaningful for slotted pages (raw-byte
    /// page users own bytes 4..8 themselves).
    pub fn seal(data: &mut [u8]) {
        let crc = encode_crc(page_crc(data));
        data[CRC_START..CRC_END].copy_from_slice(&crc.to_le_bytes());
    }

    /// Whether the page's stored checksum matches its contents. An
    /// unsealed page (stored checksum 0, e.g. all-zeros or freshly
    /// `init`ed) verifies trivially.
    pub fn verify_checksum(data: &[u8]) -> bool {
        let stored = u32::from_le_bytes([
            data[CRC_START],
            data[CRC_START + 1],
            data[CRC_START + 2],
            data[CRC_START + 3],
        ]);
        stored == 0 || stored == encode_crc(page_crc(data))
    }

    fn read_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.data[at], self.data[at + 1]])
    }

    fn write_u16(&mut self, at: usize, v: u16) {
        self.data[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of slots (live and tombstoned).
    pub fn slot_count(&self) -> usize {
        self.read_u16(0) as usize
    }

    fn record_start(&self) -> usize {
        let v = self.read_u16(2) as usize;
        if v == 0 {
            PAGE_SIZE // uninitialized all-zeros page behaves as empty
        } else {
            v
        }
    }

    /// Free bytes available for one more record (including its slot entry).
    pub fn free_space(&self) -> usize {
        let dir_end = HDR + self.slot_count() * SLOT;
        self.record_start().saturating_sub(dir_end)
    }

    /// Whether a record of `len` bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT
    }

    /// The largest record insertable into an empty page.
    pub const fn max_record() -> usize {
        PAGE_SIZE - HDR - SLOT
    }

    /// Inserts a record, returning its slot number.
    pub fn insert(&mut self, record: &[u8]) -> Result<u16> {
        if record.len() > Self::max_record() {
            return Err(StorageError::RecordTooLarge(record.len()));
        }
        if !self.fits(record.len()) {
            return Err(StorageError::corrupt("insert into full page"));
        }
        let slot = self.slot_count();
        let new_start = self.record_start() - record.len();
        self.data[new_start..new_start + record.len()].copy_from_slice(record);
        self.write_u16(2, new_start as u16);
        let dir = HDR + slot * SLOT;
        self.write_u16(dir, new_start as u16);
        self.write_u16(dir + 2, record.len() as u16);
        self.write_u16(0, (slot + 1) as u16);
        Ok(slot as u16)
    }

    /// Reads the record in `slot`, or `None` if the slot is a tombstone or
    /// out of range.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot as usize >= self.slot_count() {
            return None;
        }
        let dir = HDR + slot as usize * SLOT;
        let off = self.read_u16(dir) as usize;
        if off == 0 {
            return None;
        }
        let len = self.read_u16(dir + 2) as usize;
        // A corrupt directory entry must not panic: treat out-of-range
        // records (overrunning the page or reaching into the header) as
        // absent; checksummed pools catch the corruption before this.
        if off < HDR {
            return None;
        }
        self.data.get(off..off + len)
    }

    /// Tombstones the record in `slot`. The space is not reclaimed (classic
    /// lazy deletion; compaction would go here in a full system).
    pub fn delete(&mut self, slot: u16) -> bool {
        if slot as usize >= self.slot_count() {
            return false;
        }
        let dir = HDR + slot as usize * SLOT;
        if self.read_u16(dir) == 0 {
            return false;
        }
        self.write_u16(dir, 0);
        self.write_u16(dir + 2, 0);
        true
    }

    /// Iterates over `(slot, record)` pairs of live records.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        (0..self.slot_count() as u16).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_page() -> Vec<u8> {
        let mut data = vec![0u8; PAGE_SIZE];
        SlottedPage::init(&mut data);
        data
    }

    #[test]
    fn insert_and_get() {
        let mut data = empty_page();
        let mut p = SlottedPage::new(&mut data);
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0), Some(&b"hello"[..]));
        assert_eq!(p.get(s1), Some(&b"world!"[..]));
        assert_eq!(p.get(99), None);
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn delete_tombstones() {
        let mut data = empty_page();
        let mut p = SlottedPage::new(&mut data);
        let s = p.insert(b"gone").unwrap();
        assert!(p.delete(s));
        assert_eq!(p.get(s), None);
        assert!(!p.delete(s)); // double delete is a no-op
        assert_eq!(p.iter().count(), 0);
    }

    #[test]
    fn fills_up_exactly() {
        let mut data = empty_page();
        let mut p = SlottedPage::new(&mut data);
        let rec = vec![7u8; 100];
        let mut n = 0;
        while p.fits(rec.len()) {
            p.insert(&rec).unwrap();
            n += 1;
        }
        // 4096 - 8 header = 4088; each record costs 104 → 39 records.
        assert_eq!(n, (PAGE_SIZE - HDR) / (rec.len() + SLOT));
        assert!(p.insert(&rec).is_err());
        // All still readable.
        assert_eq!(p.iter().count(), n);
        assert!(p.iter().all(|(_, r)| r == &rec[..]));
    }

    #[test]
    fn oversized_record_rejected() {
        let mut data = empty_page();
        let mut p = SlottedPage::new(&mut data);
        let too_big = vec![0u8; SlottedPage::max_record() + 1];
        assert!(matches!(p.insert(&too_big), Err(StorageError::RecordTooLarge(_))));
        let just_fits = vec![1u8; SlottedPage::max_record()];
        let s = p.insert(&just_fits).unwrap();
        assert_eq!(p.get(s).unwrap().len(), SlottedPage::max_record());
    }

    #[test]
    fn zeroed_page_is_valid_empty() {
        let mut data = vec![0u8; PAGE_SIZE];
        let p = SlottedPage::new(&mut data);
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.iter().count(), 0);
        assert!(p.fits(100));
    }

    #[test]
    fn empty_record_ok() {
        let mut data = empty_page();
        let mut p = SlottedPage::new(&mut data);
        let s = p.insert(b"").unwrap();
        assert_eq!(p.get(s), Some(&b""[..]));
    }

    #[test]
    fn checksum_seal_verify_and_tamper() {
        let mut data = empty_page();
        SlottedPage::new(&mut data).insert(b"payload").unwrap();
        // Unsealed pages verify trivially.
        assert!(SlottedPage::verify_checksum(&data));
        SlottedPage::seal(&mut data);
        assert!(SlottedPage::verify_checksum(&data));
        // Any single-bit flip outside the checksum field is detected.
        data[PAGE_SIZE - 1] ^= 0x40;
        assert!(!SlottedPage::verify_checksum(&data));
        data[PAGE_SIZE - 1] ^= 0x40;
        assert!(SlottedPage::verify_checksum(&data));
        // A flipped checksum byte is detected too.
        data[5] ^= 0x01;
        assert!(!SlottedPage::verify_checksum(&data));
    }

    #[test]
    fn checksum_detects_torn_tail() {
        let mut before = empty_page();
        SlottedPage::new(&mut before).insert(&[1u8; 2000]).unwrap();
        SlottedPage::seal(&mut before);
        let mut after = before.clone();
        SlottedPage::new(&mut after).insert(&[2u8; 1500]).unwrap();
        SlottedPage::seal(&mut after);
        // Torn write: new header/prefix, stale tail.
        let mut torn = after.clone();
        torn[1024..].copy_from_slice(&before[1024..]);
        assert!(!SlottedPage::verify_checksum(&torn));
    }

    #[test]
    fn all_zero_page_verifies() {
        let data = vec![0u8; PAGE_SIZE];
        assert!(SlottedPage::verify_checksum(&data));
    }

    #[test]
    fn corrupt_directory_reads_as_absent() {
        let mut data = empty_page();
        let mut p = SlottedPage::new(&mut data);
        let s = p.insert(b"victim").unwrap();
        // Point the slot past the end of the page.
        let dir = HDR + s as usize * SLOT;
        data[dir..dir + 2].copy_from_slice(&((PAGE_SIZE - 2) as u16).to_le_bytes());
        data[dir + 2..dir + 4].copy_from_slice(&100u16.to_le_bytes());
        let p = SlottedPage::new(&mut data);
        assert_eq!(p.get(s), None, "overrunning record must not panic");
        // Point it into the header.
        let mut data = empty_page();
        let mut p = SlottedPage::new(&mut data);
        let s = p.insert(b"victim").unwrap();
        let dir = HDR + s as usize * SLOT;
        data[dir..dir + 2].copy_from_slice(&2u16.to_le_bytes());
        let p = SlottedPage::new(&mut data);
        assert_eq!(p.get(s), None, "header-pointing record must not panic");
    }
}
