//! Linear expressions with exact rational coefficients.

use crate::assignment::Assignment;
use crate::var::Var;
use cqa_num::Rat;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A linear expression `c₁·x₁ + … + cₖ·xₖ + c₀` over rational coefficients.
///
/// Terms with zero coefficient are never stored, so two expressions denote
/// the same linear function iff they are structurally equal.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LinExpr {
    terms: BTreeMap<Var, Rat>,
    constant: Rat,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: Rat) -> LinExpr {
        LinExpr { terms: BTreeMap::new(), constant: c }
    }

    /// An integer constant expression.
    pub fn constant_int(c: i64) -> LinExpr {
        LinExpr::constant(Rat::from_int(c))
    }

    /// The expression consisting of the single variable `v`.
    pub fn var(v: Var) -> LinExpr {
        LinExpr::term(v, Rat::one())
    }

    /// The expression `coeff · v`.
    pub fn term(v: Var, coeff: Rat) -> LinExpr {
        let mut terms = BTreeMap::new();
        if !coeff.is_zero() {
            terms.insert(v, coeff);
        }
        LinExpr { terms, constant: Rat::zero() }
    }

    /// Builds an expression from `(variable, coefficient)` pairs and a
    /// constant; duplicate variables are summed.
    pub fn from_terms(pairs: impl IntoIterator<Item = (Var, Rat)>, constant: Rat) -> LinExpr {
        let mut e = LinExpr::constant(constant);
        for (v, c) in pairs {
            e.add_term(v, c);
        }
        e
    }

    /// Adds `coeff · v` in place.
    pub fn add_term(&mut self, v: Var, coeff: Rat) {
        if coeff.is_zero() {
            return;
        }
        let entry = self.terms.entry(v).or_insert_with(Rat::zero);
        *entry = &*entry + &coeff;
        if entry.is_zero() {
            self.terms.remove(&v);
        }
    }

    /// The coefficient of `v` (zero when absent).
    pub fn coeff(&self, v: Var) -> Rat {
        self.terms.get(&v).cloned().unwrap_or_else(Rat::zero)
    }

    /// The constant term.
    pub fn constant_term(&self) -> &Rat {
        &self.constant
    }

    /// Mutable access to the constant term.
    pub fn set_constant(&mut self, c: Rat) {
        self.constant = c;
    }

    /// Whether the expression mentions no variables.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty() && self.constant.is_zero()
    }

    /// Whether `v` occurs with a nonzero coefficient.
    pub fn mentions(&self, v: Var) -> bool {
        self.terms.contains_key(&v)
    }

    /// Iterates over `(variable, coefficient)` pairs in variable order.
    pub fn terms(&self) -> impl Iterator<Item = (Var, &Rat)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, c))
    }

    /// The set of variables mentioned, in order.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.keys().copied()
    }

    /// Number of variables mentioned.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Multiplies the whole expression by a rational scalar.
    pub fn scale(&self, k: &Rat) -> LinExpr {
        if k.is_zero() {
            return LinExpr::zero();
        }
        LinExpr {
            terms: self.terms.iter().map(|(v, c)| (*v, c * k)).collect(),
            constant: &self.constant * k,
        }
    }

    /// Replaces `v` by the expression `repl` (which must not mention `v`).
    pub fn substitute(&self, v: Var, repl: &LinExpr) -> LinExpr {
        debug_assert!(!repl.mentions(v), "substitution must eliminate the variable");
        match self.terms.get(&v) {
            None => self.clone(),
            Some(c) => {
                let mut out = self.clone();
                out.terms.remove(&v);
                &out + &repl.scale(c)
            }
        }
    }

    /// Evaluates under a (total, for the mentioned variables) assignment.
    ///
    /// Returns `None` if some mentioned variable is unassigned.
    pub fn eval(&self, a: &Assignment) -> Option<Rat> {
        let mut acc = self.constant.clone();
        for (v, c) in &self.terms {
            acc += &(c * a.get(*v)?);
        }
        Some(acc)
    }

    /// Solves `self = 0` for `v`: returns `e` such that `v = e` is
    /// equivalent, with `v` not occurring in `e`. `None` if `v` is absent.
    pub fn solve_for(&self, v: Var) -> Option<LinExpr> {
        let c = self.terms.get(&v)?.clone();
        let mut rest = self.clone();
        rest.terms.remove(&v);
        // c·v + rest = 0  ⇒  v = -rest / c
        Some(rest.scale(&(-Rat::one() / c)))
    }

    /// The leading (smallest-variable) coefficient, if any.
    pub fn leading_coeff(&self) -> Option<&Rat> {
        self.terms.values().next()
    }

    /// Renders the expression using `name` to print variables.
    pub fn display_with<'a>(&'a self, name: &'a dyn Fn(Var) -> String) -> impl fmt::Display + 'a {
        struct D<'a>(&'a LinExpr, &'a dyn Fn(Var) -> String);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let mut first = true;
                for (v, c) in &self.0.terms {
                    let vn = (self.1)(*v);
                    if first {
                        if c == &Rat::one() {
                            write!(f, "{}", vn)?;
                        } else if c == &(-Rat::one()) {
                            write!(f, "-{}", vn)?;
                        } else {
                            write!(f, "{}*{}", c, vn)?;
                        }
                        first = false;
                    } else if c.is_negative() {
                        let a = c.abs();
                        if a == Rat::one() {
                            write!(f, " - {}", vn)?;
                        } else {
                            write!(f, " - {}*{}", a, vn)?;
                        }
                    } else if c == &Rat::one() {
                        write!(f, " + {}", vn)?;
                    } else {
                        write!(f, " + {}*{}", c, vn)?;
                    }
                }
                let c0 = &self.0.constant;
                if first {
                    write!(f, "{}", c0)?;
                } else if c0.is_positive() {
                    write!(f, " + {}", c0)?;
                } else if c0.is_negative() {
                    write!(f, " - {}", c0.abs())?;
                }
                Ok(())
            }
        }
        D(self, name)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |v: Var| v.to_string();
        let d = self.display_with(&name);
        write!(f, "{}", d)
    }
}

impl fmt::Debug for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LinExpr({})", self)
    }
}

impl Add for &LinExpr {
    type Output = LinExpr;
    fn add(self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        for (v, c) in &other.terms {
            out.add_term(*v, c.clone());
        }
        out.constant = &out.constant + &other.constant;
        out
    }
}

impl Sub for &LinExpr {
    type Output = LinExpr;
    fn sub(self, other: &LinExpr) -> LinExpr {
        self + &(-other)
    }
}

impl Neg for &LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scale(&(-Rat::one()))
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        -&self
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(self, other: LinExpr) -> LinExpr {
        &self + &other
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, other: LinExpr) -> LinExpr {
        &self - &other
    }
}

impl Mul<&Rat> for &LinExpr {
    type Output = LinExpr;
    fn mul(self, k: &Rat) -> LinExpr {
        self.scale(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(p: i64, q: i64) -> Rat {
        Rat::from_pair(p, q)
    }

    fn x() -> Var {
        Var(0)
    }
    fn y() -> Var {
        Var(1)
    }

    #[test]
    fn construction_drops_zero_terms() {
        let e = LinExpr::from_terms([(x(), r(1, 1)), (x(), r(-1, 1)), (y(), r(2, 1))], r(3, 1));
        assert!(!e.mentions(x()));
        assert_eq!(e.coeff(y()), r(2, 1));
        assert_eq!(e.constant_term(), &r(3, 1));
        assert_eq!(e.arity(), 1);
    }

    #[test]
    fn add_sub_scale() {
        let e1 = LinExpr::from_terms([(x(), r(1, 2))], r(1, 1));
        let e2 = LinExpr::from_terms([(x(), r(1, 2)), (y(), r(1, 1))], r(-1, 1));
        let s = &e1 + &e2;
        assert_eq!(s.coeff(x()), r(1, 1));
        assert_eq!(s.coeff(y()), r(1, 1));
        assert!(s.constant_term().is_zero());
        let d = &e1 - &e1;
        assert!(d.is_zero());
        let sc = e2.scale(&r(2, 1));
        assert_eq!(sc.coeff(x()), r(1, 1));
        assert_eq!(sc.coeff(y()), r(2, 1));
    }

    #[test]
    fn substitute_eliminates() {
        // e = 2x + y + 1, substitute x := 3 - y  → 2(3-y) + y + 1 = -y + 7
        let e = LinExpr::from_terms([(x(), r(2, 1)), (y(), r(1, 1))], r(1, 1));
        let repl = LinExpr::from_terms([(y(), r(-1, 1))], r(3, 1));
        let out = e.substitute(x(), &repl);
        assert!(!out.mentions(x()));
        assert_eq!(out.coeff(y()), r(-1, 1));
        assert_eq!(out.constant_term(), &r(7, 1));
    }

    #[test]
    fn solve_for_variable() {
        // 2x + 4y - 6 = 0  ⇒  x = -2y + 3
        let e = LinExpr::from_terms([(x(), r(2, 1)), (y(), r(4, 1))], r(-6, 1));
        let sol = e.solve_for(x()).unwrap();
        assert_eq!(sol.coeff(y()), r(-2, 1));
        assert_eq!(sol.constant_term(), &r(3, 1));
        assert!(e.solve_for(Var(9)).is_none());
    }

    #[test]
    fn eval() {
        let e = LinExpr::from_terms([(x(), r(2, 1)), (y(), r(-1, 1))], r(1, 2));
        let mut a = Assignment::new();
        a.set(x(), r(1, 1));
        assert_eq!(e.eval(&a), None); // y unassigned
        a.set(y(), r(3, 1));
        assert_eq!(e.eval(&a), Some(r(-1, 2)));
    }

    #[test]
    fn display_pretty() {
        let e = LinExpr::from_terms([(x(), r(1, 1)), (y(), r(-2, 1))], r(5, 1));
        assert_eq!(e.to_string(), "v0 - 2*v1 + 5");
        assert_eq!(LinExpr::zero().to_string(), "0");
        assert_eq!((-&LinExpr::var(x())).to_string(), "-v0");
    }
}
