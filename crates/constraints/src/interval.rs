//! Rational intervals, possibly open or unbounded on either side.
//!
//! Intervals are what a one-variable conjunction of linear constraints
//! denotes; they are also the bridge between the constraint layer and the
//! multidimensional indexing layer of §5 — the bounding box of a constraint
//! tuple is one [`Interval`] per indexed attribute.

use cqa_num::Rat;
use std::fmt;

/// One endpoint of an interval.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bound {
    /// The endpoint value.
    pub value: Rat,
    /// Whether the endpoint itself is excluded.
    pub strict: bool,
}

impl Bound {
    /// A closed (inclusive) bound.
    pub fn closed(value: Rat) -> Bound {
        Bound { value, strict: false }
    }

    /// An open (exclusive) bound.
    pub fn open(value: Rat) -> Bound {
        Bound { value, strict: true }
    }
}

/// An interval over the rationals; `lo`/`hi` of `None` mean unbounded.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Interval {
    lo: Option<Bound>,
    hi: Option<Bound>,
    empty: bool,
}

impl Interval {
    /// The full line `(-∞, +∞)`.
    pub fn full() -> Interval {
        Interval { lo: None, hi: None, empty: false }
    }

    /// The empty interval.
    pub fn empty() -> Interval {
        Interval { lo: None, hi: None, empty: true }
    }

    /// The single point `[v, v]`.
    pub fn point(v: Rat) -> Interval {
        Interval::new(Some(Bound::closed(v.clone())), Some(Bound::closed(v)))
    }

    /// The closed interval `[lo, hi]`.
    pub fn closed(lo: Rat, hi: Rat) -> Interval {
        Interval::new(Some(Bound::closed(lo)), Some(Bound::closed(hi)))
    }

    /// Builds an interval from optional endpoints, normalizing emptiness.
    pub fn new(lo: Option<Bound>, hi: Option<Bound>) -> Interval {
        let empty = match (&lo, &hi) {
            (Some(l), Some(h)) => {
                l.value > h.value || (l.value == h.value && (l.strict || h.strict))
            }
            _ => false,
        };
        if empty {
            Interval::empty()
        } else {
            Interval { lo, hi, empty: false }
        }
    }

    /// The lower endpoint (`None` = unbounded below). Meaningless if empty.
    pub fn lo(&self) -> Option<&Bound> {
        self.lo.as_ref()
    }

    /// The upper endpoint (`None` = unbounded above). Meaningless if empty.
    pub fn hi(&self) -> Option<&Bound> {
        self.hi.as_ref()
    }

    /// Whether the interval contains no points.
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// Whether the interval is the full line.
    pub fn is_full(&self) -> bool {
        !self.empty && self.lo.is_none() && self.hi.is_none()
    }

    /// Whether the interval is a single point.
    pub fn is_point(&self) -> bool {
        match (&self.lo, &self.hi) {
            (Some(l), Some(h)) => !self.empty && l.value == h.value,
            _ => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, v: &Rat) -> bool {
        if self.empty {
            return false;
        }
        if let Some(l) = &self.lo {
            if v < &l.value || (v == &l.value && l.strict) {
                return false;
            }
        }
        if let Some(h) = &self.hi {
            if v > &h.value || (v == &h.value && h.strict) {
                return false;
            }
        }
        true
    }

    /// Intersection of two intervals.
    pub fn intersect(&self, other: &Interval) -> Interval {
        if self.empty || other.empty {
            return Interval::empty();
        }
        let lo = match (&self.lo, &other.lo) {
            (None, b) => b.clone(),
            (a, None) => a.clone(),
            (Some(a), Some(b)) => Some(if (a.value > b.value) || (a.value == b.value && a.strict) {
                a.clone()
            } else {
                b.clone()
            }),
        };
        let hi = match (&self.hi, &other.hi) {
            (None, b) => b.clone(),
            (a, None) => a.clone(),
            (Some(a), Some(b)) => Some(if (a.value < b.value) || (a.value == b.value && a.strict) {
                a.clone()
            } else {
                b.clone()
            }),
        };
        Interval::new(lo, hi)
    }

    /// Whether two intervals overlap.
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.intersect(other).is_empty()
    }

    /// The endpoints as `f64`s (`-∞`/`+∞` when unbounded), for building
    /// index bounding boxes. Strictness is dropped: the result is a
    /// conservative (superset) approximation, which is exactly what a
    /// filter-step index needs.
    pub fn to_f64_bounds(&self) -> (f64, f64) {
        if self.empty {
            return (f64::INFINITY, f64::NEG_INFINITY);
        }
        let lo = self.lo.as_ref().map_or(f64::NEG_INFINITY, |b| b.value.to_f64());
        let hi = self.hi.as_ref().map_or(f64::INFINITY, |b| b.value.to_f64());
        (lo, hi)
    }

    /// Width `hi - lo`; `None` when unbounded or empty.
    pub fn width(&self) -> Option<Rat> {
        if self.empty {
            return None;
        }
        match (&self.lo, &self.hi) {
            (Some(l), Some(h)) => Some(&h.value - &l.value),
            _ => None,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.empty {
            return f.write_str("∅");
        }
        match &self.lo {
            None => write!(f, "(-inf, ")?,
            Some(b) => write!(f, "{}{}, ", if b.strict { "(" } else { "[" }, b.value)?,
        }
        match &self.hi {
            None => write!(f, "+inf)"),
            Some(b) => write!(f, "{}{}", b.value, if b.strict { ")" } else { "]" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Rat {
        Rat::from_int(v)
    }

    #[test]
    fn emptiness_normalization() {
        assert!(Interval::closed(r(3), r(2)).is_empty());
        assert!(!Interval::closed(r(2), r(2)).is_empty());
        assert!(Interval::new(Some(Bound::open(r(2))), Some(Bound::closed(r(2)))).is_empty());
        assert!(Interval::new(Some(Bound::closed(r(2))), Some(Bound::open(r(2)))).is_empty());
        assert!(Interval::full().is_full());
        assert!(Interval::point(r(1)).is_point());
    }

    #[test]
    fn membership() {
        let i = Interval::new(Some(Bound::open(r(0))), Some(Bound::closed(r(5))));
        assert!(!i.contains(&r(0)));
        assert!(i.contains(&Rat::from_pair(1, 2)));
        assert!(i.contains(&r(5)));
        assert!(!i.contains(&r(6)));
        assert!(Interval::full().contains(&r(-100)));
        assert!(!Interval::empty().contains(&r(0)));
    }

    #[test]
    fn intersection() {
        let a = Interval::closed(r(0), r(10));
        let b = Interval::new(Some(Bound::open(r(5))), None);
        let i = a.intersect(&b);
        assert_eq!(i, Interval::new(Some(Bound::open(r(5))), Some(Bound::closed(r(10)))));
        assert!(a.overlaps(&b));
        let c = Interval::closed(r(11), r(12));
        assert!(!a.overlaps(&c));
        // Strict endpoints kill single-point overlap.
        let d = Interval::new(Some(Bound::open(r(10))), None);
        assert!(!a.overlaps(&d));
    }

    #[test]
    fn f64_bounds() {
        let i = Interval::closed(Rat::from_pair(1, 2), r(4));
        assert_eq!(i.to_f64_bounds(), (0.5, 4.0));
        assert_eq!(Interval::full().to_f64_bounds(), (f64::NEG_INFINITY, f64::INFINITY));
        let (lo, hi) = Interval::empty().to_f64_bounds();
        assert!(lo > hi);
    }

    #[test]
    fn width_and_display() {
        assert_eq!(Interval::closed(r(1), r(4)).width(), Some(r(3)));
        assert_eq!(Interval::full().width(), None);
        assert_eq!(Interval::closed(r(1), r(4)).to_string(), "[1, 4]");
        assert_eq!(
            Interval::new(Some(Bound::open(r(0))), None).to_string(),
            "(0, +inf)"
        );
    }
}
