//! The case runner: configuration, the deterministic RNG, and failure
//! reporting.

use std::fmt;

/// Per-`proptest!` block configuration. Only the field this workspace
/// uses is carried.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Upstream-compatible alias (`proptest::test_runner::Config`).
pub type Config = ProptestConfig;

/// A failed test case (produced by `prop_assert*!`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }

    /// Attaches the sampled-input description to the failure.
    pub fn with_context(mut self, inputs: &str) -> Self {
        self.message = format!("{}\n  inputs: {}", self.message, inputs);
        self
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic source of randomness strategies draw from
/// (SplitMix64 under the hood).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the given seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let threshold = n.wrapping_neg() % n;
        loop {
            let wide = (self.next_u64() as u128) * (n as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a, used to derive a stable per-test seed from its name.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property: runs `case` for each of the configured cases
/// with a deterministic RNG, panicking on the first failure.
///
/// `PROPTEST_CASES` (environment) overrides the configured case count;
/// `PROPTEST_SEED` perturbs the per-test seed for exploration.
pub fn run_cases<F>(config: ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    let perturb = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0u64);
    let mut rng = TestRng::from_seed(fnv1a(test_name) ^ perturb);
    for i in 0..cases {
        if let Err(e) = case(&mut rng) {
            panic!("property {} failed at case {}/{}:\n  {}", test_name, i + 1, cases, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(5);
        let mut b = TestRng::from_seed(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_in_bounds() {
        let mut r = TestRng::from_seed(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        run_cases(ProptestConfig::with_cases(3), "t", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
