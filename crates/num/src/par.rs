//! A small deterministic data-parallel executor.
//!
//! CQA operators are embarrassingly parallel over their *outer* tuple
//! vector: each input tuple contributes an independent slice of output
//! tuples, and the serial evaluator simply concatenates those slices in
//! input order. This module parallelizes exactly that shape while
//! keeping the output **bit-identical** to the serial path:
//!
//! 1. the input slice is split into contiguous chunks;
//! 2. a fixed pool of scoped threads (`std::thread::scope`, no external
//!    dependencies) pulls chunk indices from an atomic work queue;
//! 3. each chunk's results are buffered in a per-chunk slot;
//! 4. the slots are concatenated **in chunk order**.
//!
//! Because chunks are contiguous and concatenation follows chunk order,
//! the output sequence is the same for every thread count, including
//! the `threads = 1` serial fast path (which spawns nothing at all).
//!
//! The executor lives in `cqa-num` — the root of the crate graph — so
//! both `cqa-core` (algebra operators) and `cqa-spatial` (whole-feature
//! operators) can share one implementation without a dependency cycle.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A shared cancellation flag, cloneable across threads.
///
/// Workers poll the token **between chunks** (never mid-item), so a
/// cancelled run stops at a chunk boundary; the executor then discards
/// every partial slot and reports [`Cancelled`], which keeps cancelled
/// runs deterministic — the caller sees either the complete result or
/// nothing, regardless of thread count or where the flag was raised.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raises the flag; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Lowers the flag again (used when re-arming a governor between
    /// sequential runs that share one token).
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Release);
    }
}

/// The run observed a raised [`CancelToken`]; all partial output was
/// discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("execution cancelled")
    }
}

impl std::error::Error for Cancelled {}

/// Work-queue chunks handed out per thread; > 1 so a slow chunk does not
/// leave the other workers idle (cheap dynamic load balancing).
const CHUNKS_PER_THREAD: usize = 4;

/// Below this many items the executor always runs serially: thread spawn
/// costs more than the work. (The output is identical either way.)
const MIN_PAR_ITEMS: usize = 16;

/// Resolves a requested thread count: `0` means "use all hardware
/// threads" (`std::thread::available_parallelism`), anything else is
/// taken literally.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    }
}

/// Applies `f` to every item and concatenates the produced vectors in
/// input order, using up to `threads` worker threads.
///
/// Deterministic: the result is identical for every `threads` value.
pub fn flat_map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Vec<R> + Sync,
{
    // Without a token `run_chunks` cannot report `Cancelled`.
    try_flat_map_chunks(items, threads, None, f).unwrap_or_default()
}

/// Applies `f` to every item, preserving input order (one output per
/// input), using up to `threads` worker threads.
pub fn map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_map_chunks(items, threads, None, f).unwrap_or_default()
}

/// [`flat_map_chunks`] with an optional cancellation token.
///
/// Workers poll `token` between chunks and stop pulling work once it is
/// raised; if the token is raised at any point before the run completes
/// its final chunk, every partial slot is discarded and `Err(Cancelled)`
/// is returned. Equal inputs produce equal results for every thread
/// count — cancelled runs produce nothing at all.
pub fn try_flat_map_chunks<T, R, F>(
    items: &[T],
    threads: usize,
    token: Option<&CancelToken>,
    f: F,
) -> Result<Vec<R>, Cancelled>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Vec<R> + Sync,
{
    run_chunks(items, threads, token, |chunk, out| {
        for item in chunk {
            out.extend(f(item));
        }
    })
}

/// [`map_chunks`] with an optional cancellation token (see
/// [`try_flat_map_chunks`] for the cancellation contract).
pub fn try_map_chunks<T, R, F>(
    items: &[T],
    threads: usize,
    token: Option<&CancelToken>,
    f: F,
) -> Result<Vec<R>, Cancelled>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_chunks(items, threads, token, |chunk, out| {
        for item in chunk {
            out.push(f(item));
        }
    })
}

/// Shared driver: contiguous chunks, an atomic queue, ordered collection.
fn run_chunks<T, R, F>(
    items: &[T],
    threads: usize,
    token: Option<&CancelToken>,
    body: F,
) -> Result<Vec<R>, Cancelled>
where
    T: Sync,
    R: Send,
    F: Fn(&[T], &mut Vec<R>) + Sync,
{
    let tripped = || token.is_some_and(|t| t.is_cancelled());
    let n = items.len();
    if n == 0 {
        return if tripped() { Err(Cancelled) } else { Ok(Vec::new()) };
    }
    let threads = threads.max(1).min(n);
    let chunk_size = n.div_ceil((threads * CHUNKS_PER_THREAD).min(n));
    if threads == 1 || n < MIN_PAR_ITEMS {
        let mut out = Vec::new();
        if token.is_some() {
            // Same polling granularity as the parallel path: between chunks.
            for chunk in items.chunks(chunk_size) {
                if tripped() {
                    return Err(Cancelled);
                }
                body(chunk, &mut out);
            }
        } else {
            body(items, &mut out);
        }
        return if tripped() { Err(Cancelled) } else { Ok(out) };
    }

    let chunks = n.div_ceil(chunk_size);
    let queue = AtomicUsize::new(0);
    let slots: Vec<Mutex<Vec<R>>> = (0..chunks).map(|_| Mutex::new(Vec::new())).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if tripped() {
                    break;
                }
                let c = queue.fetch_add(1, Ordering::Relaxed);
                if c >= chunks {
                    break;
                }
                let lo = c * chunk_size;
                let hi = (lo + chunk_size).min(n);
                let mut out = Vec::new();
                body(&items[lo..hi], &mut out);
                // Sole writer for slot `c`; the lock is uncontended.
                *slots[c].lock().expect("no worker panicked holding a slot") = out;
            });
        }
    });

    // A token raised mid-run means some chunks were skipped: discard all
    // partial output so the caller never observes a truncated result.
    if tripped() {
        return Err(Cancelled);
    }
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        out.extend(slot.into_inner().expect("slot lock poisoned"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_for_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> =
            items.iter().flat_map(|&x| vec![x * 3, x * 3 + 1]).collect();
        for threads in [1, 2, 3, 4, 7, 16] {
            let par = flat_map_chunks(&items, threads, |&x| vec![x * 3, x * 3 + 1]);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<u32> = (0..500).collect();
        for threads in [1, 2, 5, 8] {
            let out = map_chunks(&items, threads, |&x| x + 1);
            assert_eq!(out, (1..=500).collect::<Vec<_>>(), "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(flat_map_chunks(&empty, 8, |&x| vec![x]).is_empty());
        assert_eq!(map_chunks(&[9u8], 8, |&x| x), vec![9]);
    }

    #[test]
    fn uneven_output_sizes_keep_order() {
        // Items emit variable-length runs; order must still be exact.
        let items: Vec<usize> = (0..300).collect();
        let expect: Vec<usize> =
            items.iter().flat_map(|&x| std::iter::repeat(x).take(x % 5)).collect();
        let got = flat_map_chunks(&items, 6, |&x| vec![x; x % 5]);
        assert_eq!(got, expect);
    }

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn pre_cancelled_token_yields_err_for_every_thread_count() {
        let items: Vec<u32> = (0..200).collect();
        for threads in [1, 2, 4, 8] {
            let token = CancelToken::new();
            token.cancel();
            let got = try_map_chunks(&items, threads, Some(&token), |&x| x);
            assert_eq!(got, Err(Cancelled), "threads = {threads}");
        }
    }

    #[test]
    fn mid_run_cancellation_discards_partial_output() {
        use std::sync::atomic::AtomicU64;
        let items: Vec<u32> = (0..512).collect();
        for threads in [1, 3, 8] {
            let token = CancelToken::new();
            let seen = AtomicU64::new(0);
            // Trip the token from inside the workload after ~32 items.
            let got = try_map_chunks(&items, threads, Some(&token), |&x| {
                if seen.fetch_add(1, Ordering::Relaxed) == 32 {
                    token.cancel();
                }
                x
            });
            assert_eq!(got, Err(Cancelled), "threads = {threads}");
        }
    }

    #[test]
    fn untripped_token_matches_tokenless_run() {
        let items: Vec<u32> = (0..300).collect();
        let token = CancelToken::new();
        let plain = map_chunks(&items, 4, |&x| x * 2);
        let tokened = try_map_chunks(&items, 4, Some(&token), |&x| x * 2).unwrap();
        assert_eq!(plain, tokened);
        assert!(!token.is_cancelled());
        token.cancel();
        token.reset();
        assert!(!token.is_cancelled());
    }
}
