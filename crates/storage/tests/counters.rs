//! Buffer-pool access counters under seeded fault injection.
//!
//! Pins down the observability contract of the storage layer: hits and
//! misses (logical vs. physical), retried transient I/O errors, and
//! checksum-triggered rereads are all counted — both in the pool's own
//! [`AccessStats`] and mirrored into the global `cqa-obs` registry.

use cqa_storage::MemDisk;
use cqa_storage::fault::FaultKind;
use cqa_storage::{FaultConfig, FaultyDisk};
use cqa_storage::{BufferPool, PAGE_SIZE};

#[test]
fn hits_and_misses_are_counted_globally() {
    let snap_before = cqa_obs::snapshot();
    let mut pool = BufferPool::new(MemDisk::new(), 2);
    let a = pool.allocate().unwrap();
    let b = pool.allocate().unwrap();
    let c = pool.allocate().unwrap();
    pool.with_page(a, |_| ()).unwrap(); // miss
    pool.with_page(b, |_| ()).unwrap(); // miss
    pool.with_page(a, |_| ()).unwrap(); // hit (a now hottest)
    pool.with_page(c, |_| ()).unwrap(); // miss, evicts b
    pool.with_page(a, |_| ()).unwrap(); // hit
    let s = pool.stats();
    assert_eq!(s.logical, 5);
    assert_eq!(s.physical, 3);
    let snap = cqa_obs::snapshot();
    assert!(
        snap.counter("storage.pool.logical") >= snap_before.counter("storage.pool.logical") + 5
    );
    assert!(
        snap.counter("storage.pool.physical")
            >= snap_before.counter("storage.pool.physical") + 3
    );
}

#[test]
fn transient_io_errors_retry_and_count() {
    // A seeded fault rate low enough that 3 attempts with backoff always
    // get through on this workload, high enough to actually fire.
    let disk = FaultyDisk::new(MemDisk::new(), FaultConfig::only(7, FaultKind::IoError, 0.2));
    let snap_before = cqa_obs::snapshot();
    let mut pool = BufferPool::new(disk, 1);
    let mut pages = Vec::new();
    for _ in 0..8 {
        pages.push(pool.allocate().unwrap());
    }
    for (i, &p) in pages.iter().enumerate() {
        pool.with_page_mut(p, |bytes| bytes[0] = i as u8).unwrap();
    }
    pool.flush().unwrap();
    pool.clear().unwrap();
    for (i, &p) in pages.iter().enumerate() {
        let v = pool.with_page(p, |bytes| bytes[0]).unwrap();
        assert_eq!(v, i as u8, "data intact despite injected faults");
    }
    let s = pool.stats();
    assert!(s.io_retries > 0, "the 20% fault rate must have fired: {:?}", s);
    assert_eq!(pool.disk().counts().io_errors, s.io_retries, "every injected error was retried");
    let snap = cqa_obs::snapshot();
    assert!(
        snap.counter("storage.pool.io_retries")
            >= snap_before.counter("storage.pool.io_retries") + s.io_retries
    );
}

#[test]
fn corrupt_rereads_heal_bit_flips_and_count() {
    // Bit flips are read-side: a checksum mismatch evicts the bytes and
    // rereads once, which heals a transient flip.
    let disk = FaultyDisk::new(MemDisk::new(), FaultConfig::only(11, FaultKind::BitFlip, 0.3));
    let snap_before = cqa_obs::snapshot();
    let mut pool = BufferPool::new(disk, 1).with_checksums();
    let mut pages = Vec::new();
    for _ in 0..12 {
        pages.push(pool.allocate().unwrap());
    }
    for &p in &pages {
        pool.with_page_mut(p, |bytes| {
            // Leave a recognizable payload after the slotted-page header.
            bytes[PAGE_SIZE - 1] = 0xAB;
        })
        .unwrap();
    }
    pool.flush().unwrap();
    pool.clear().unwrap();
    let mut healed = 0u64;
    for &p in &pages {
        match pool.with_page(p, |bytes| bytes[PAGE_SIZE - 1]) {
            Ok(v) => assert_eq!(v, 0xAB),
            // Back-to-back flips on the same page exhaust the one reread;
            // that is a typed error, not silent corruption.
            Err(e) => assert!(e.to_string().contains("checksum"), "{}", e),
        }
        healed = pool.stats().corrupt_rereads;
    }
    assert!(healed > 0, "the 30% flip rate must have triggered rereads");
    let snap = cqa_obs::snapshot();
    assert!(
        snap.counter("storage.pool.corrupt_rereads")
            >= snap_before.counter("storage.pool.corrupt_rereads") + healed
    );
}
