//! The Hurricane case study (§3.3) as an executable specification: loads
//! the Figure 2 instance shipped in `examples/data/hurricane.cdb` and
//! checks the five queries' answers, including the exact constraint
//! semantics of the outputs.

use cqa::core::{Catalog, HRelation, Value};
use cqa::lang::schema_def::parse_cdb;
use cqa::lang::ScriptRunner;
use cqa::num::Rat;

const DATA: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/data/hurricane.cdb");

fn runner() -> ScriptRunner {
    let source = std::fs::read_to_string(DATA).expect("hurricane.cdb present");
    let mut catalog = Catalog::new();
    parse_cdb(&source).expect("valid .cdb file").load_into(&mut catalog);
    ScriptRunner::new(catalog)
}

fn names(rel: &HRelation, col: usize) -> Vec<String> {
    let mut out: Vec<String> = rel
        .tuples()
        .iter()
        .filter_map(|t| t.value(col).and_then(|v| v.as_str().map(str::to_string)))
        .collect();
    out.sort();
    out.dedup();
    out
}

#[test]
fn the_instance_loads_with_expected_shape() {
    let r = runner();
    let land = r.catalog().get("Land").unwrap();
    assert_eq!(land.len(), 3);
    let owners = r.catalog().get("Landownership").unwrap();
    assert_eq!(owners.len(), 5);
    let hurricane = r.catalog().get("Hurricane").unwrap();
    assert_eq!(hurricane.len(), 3, "one constraint tuple per path segment");
    // The storm is at (2, 2) at t = 2 …
    assert!(hurricane
        .contains_point(&[Value::int(2), Value::int(2), Value::int(2)])
        .unwrap());
    // … and nowhere else at that time.
    assert!(!hurricane
        .contains_point(&[Value::int(2), Value::int(3), Value::int(2)])
        .unwrap());
}

#[test]
fn query1_owners_of_land_a() {
    let mut r = runner();
    let out = r
        .run(
            "R0 = select landId = \"A\" from Landownership\n\
             R1 = project R0 on name, t\n",
        )
        .unwrap();
    assert_eq!(names(&out, 0), vec!["Ann", "Bob"]);
    // Ann's ownership interval is [0, 5]; Bob's is [5, 12].
    assert!(out.contains_point(&[Value::str("Ann"), Value::int(3)]).unwrap());
    assert!(!out.contains_point(&[Value::str("Ann"), Value::int(6)]).unwrap());
    assert!(out.contains_point(&[Value::str("Bob"), Value::int(6)]).unwrap());
    assert!(out.contains_point(&[Value::str("Bob"), Value::int(5)]).unwrap());
    assert!(!out.contains_point(&[Value::str("Bob"), Value::int(13)]).unwrap());
}

#[test]
fn query2_parcels_the_hurricane_passed() {
    let mut r = runner();
    let out = r
        .run(
            "R0 = join Hurricane and Land\n\
             R1 = project R0 on landId\n",
        )
        .unwrap();
    assert_eq!(names(&out, 0), vec!["A", "B", "C"], "the path crosses all three parcels");
}

#[test]
fn query3_owners_hit_between_4_and_9() {
    let mut r = runner();
    let out = r
        .run(
            "R0 = join Landownership and Land\n\
             R1 = select t >= 4, t <= 9 from Hurricane\n\
             R2 = join R0 and R1\n\
             R3 = project R2 on name\n",
        )
        .unwrap();
    // In [4, 9] the storm is in A for t ∈ [4] (x = t ≤ 4) — owned by Ann
    // until t = 5 — and in B for t ∈ [6, 9] — owned by Carl. Bob takes A
    // at t = 5 but the storm has already left A (x = t > 4). Precisely at
    // t = 4 the storm sits on A's boundary while Ann owns it.
    assert_eq!(names(&out, 0), vec!["Ann", "Carl"]);
}

#[test]
fn query4_hit_parcels_ann_never_owned() {
    let mut r = runner();
    let out = r
        .run(
            "R0 = join Hurricane and Land\n\
             R1 = project R0 on landId\n\
             R2 = select name = \"Ann\" from Landownership\n\
             R3 = project R2 on landId\n\
             R4 = diff R1 and R3\n",
        )
        .unwrap();
    assert_eq!(names(&out, 0), vec!["B", "C"]);
}

#[test]
fn query5_when_parcel_b_was_hit() {
    let mut r = runner();
    let out = r
        .run(
            "R0 = select landId = \"B\" from Land\n\
             R1 = join Hurricane and R0\n\
             R2 = project R1 on t\n",
        )
        .unwrap();
    // B spans x ∈ [6, 10] and the storm has x = t: hit during t ∈ [6, 10].
    assert!(out.contains_point(&[Value::int(6)]).unwrap());
    assert!(out.contains_point(&[Value::int(10)]).unwrap());
    assert!(out.contains_point(&[Value::rat(Rat::from_pair(17, 2))]).unwrap());
    assert!(!out.contains_point(&[Value::int(5)]).unwrap());
    assert!(!out.contains_point(&[Value::int(11)]).unwrap());
}

#[test]
fn queries_are_independent_of_optimizer() {
    for script in [
        "R0 = join Landownership and Land\nR1 = select t >= 4, t <= 9 from Hurricane\nR2 = join R0 and R1\nR3 = project R2 on name\n",
        "R0 = join Hurricane and Land\nR1 = project R0 on landId\n",
    ] {
        let mut with = runner();
        let mut without = runner().without_optimizer();
        assert_eq!(
            with.run(script).unwrap(),
            without.run(script).unwrap(),
            "script {:?}",
            script
        );
    }
}
