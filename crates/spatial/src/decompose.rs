//! Vector → constraint conversion (§6.2).
//!
//! The constraint data model must represent a (possibly concave) region as
//! a union of convex polyhedra, one constraint tuple each. This module
//! performs that decomposition exactly:
//!
//! 1. **Ear clipping** triangulates a simple polygon using only exact
//!    orientation tests;
//! 2. a **Hertel–Mehlhorn**-style greedy pass merges triangles across
//!    diagonals while the union stays convex, reducing the tuple count;
//! 3. each convex piece becomes a [`Conjunction`] of half-plane atoms, each
//!    polyline segment becomes the paper's three-constraint tuple (the
//!    collinear line plus the two endpoint bounds).

use crate::feature::Geometry;
use crate::geom::{orient, Orientation, Point};
use cqa_constraints::{Atom, Conjunction, Dnf, LinExpr, Var};
#[cfg(test)]
use cqa_num::Rat;

/// Triangulates a simple CCW polygon ring by ear clipping.
///
/// Returns triangles as vertex triples. Exact arithmetic guarantees
/// termination on simple polygons.
pub fn triangulate(ring: &[Point]) -> Vec<[Point; 3]> {
    let mut verts: Vec<Point> = ring.to_vec();
    let mut out = Vec::with_capacity(verts.len().saturating_sub(2));
    'outer: while verts.len() > 3 {
        let n = verts.len();
        for i in 0..n {
            let prev = &verts[(i + n - 1) % n];
            let cur = &verts[i];
            let next = &verts[(i + 1) % n];
            if orient(prev, cur, next) != Orientation::Ccw {
                continue; // reflex or collinear corner: not an ear
            }
            // No other vertex may lie inside (or on) the candidate ear.
            let blocked = verts.iter().enumerate().any(|(j, p)| {
                let neighbor = j == i || j == (i + 1) % n || j == (i + n - 1) % n;
                !neighbor && triangle_contains(prev, cur, next, p)
            });
            if !blocked {
                out.push([prev.clone(), cur.clone(), next.clone()]);
                verts.remove(i);
                continue 'outer;
            }
        }
        // A simple polygon always has an ear (two, in fact); reaching here
        // means the input was not simple.
        panic!("ear clipping stuck: polygon ring is not simple");
    }
    out.push([verts[0].clone(), verts[1].clone(), verts[2].clone()]);
    out
}

/// Closed point-in-triangle test (vertices CCW).
fn triangle_contains(a: &Point, b: &Point, c: &Point, p: &Point) -> bool {
    orient(a, b, p) != Orientation::Cw
        && orient(b, c, p) != Orientation::Cw
        && orient(c, a, p) != Orientation::Cw
}

/// Whether a ring (CCW) is convex (collinear corners allowed).
pub fn is_convex(ring: &[Point]) -> bool {
    let n = ring.len();
    if n < 3 {
        return false;
    }
    (0..n).all(|i| {
        orient(&ring[i], &ring[(i + 1) % n], &ring[(i + 2) % n]) != Orientation::Cw
    })
}

/// Decomposes a simple CCW polygon into convex pieces: triangulation
/// followed by greedy Hertel–Mehlhorn merging across shared diagonals.
pub fn convex_decomposition(ring: &[Point]) -> Vec<Vec<Point>> {
    let mut pieces: Vec<Vec<Point>> =
        triangulate(ring).into_iter().map(|t| t.to_vec()).collect();
    // Greedily merge any two pieces sharing an edge if the union is convex.
    let mut merged_any = true;
    while merged_any {
        merged_any = false;
        'pairs: for i in 0..pieces.len() {
            for j in i + 1..pieces.len() {
                if let Some(m) = try_merge(&pieces[i], &pieces[j]) {
                    pieces[i] = m;
                    pieces.remove(j);
                    merged_any = true;
                    break 'pairs;
                }
            }
        }
    }
    pieces
}

/// Merges two convex CCW rings sharing a directed edge, if the result is
/// convex.
fn try_merge(p: &[Point], q: &[Point]) -> Option<Vec<Point>> {
    let (np, nq) = (p.len(), q.len());
    for i in 0..np {
        let (u, v) = (&p[i], &p[(i + 1) % np]);
        for j in 0..nq {
            // The shared edge appears reversed in the other CCW ring.
            if &q[j] == v && &q[(j + 1) % nq] == u {
                // Walk p from v around to u, then q from u around to v,
                // skipping the duplicated endpoints.
                let mut ring = Vec::with_capacity(np + nq - 2);
                for step in 0..np - 1 {
                    ring.push(p[(i + 1 + step) % np].clone());
                }
                for step in 0..nq - 1 {
                    ring.push(q[(j + 1 + step) % nq].clone());
                }
                // Drop collinear middle vertices introduced by the merge.
                let ring = drop_collinear(ring);
                if ring.len() >= 3 && is_convex(&ring) {
                    return Some(ring);
                }
                return None;
            }
        }
    }
    None
}

fn drop_collinear(ring: Vec<Point>) -> Vec<Point> {
    let n = ring.len();
    let keep: Vec<Point> = (0..n)
        .filter(|&i| {
            orient(&ring[(i + n - 1) % n], &ring[i], &ring[(i + 1) % n]) != Orientation::Collinear
        })
        .map(|i| ring[i].clone())
        .collect();
    if keep.len() >= 3 {
        keep
    } else {
        ring
    }
}

/// The half-plane conjunction of a convex CCW ring over variables
/// `(vx, vy)`: one `≥` atom per edge.
pub fn convex_ring_to_conjunction(ring: &[Point], vx: Var, vy: Var) -> Conjunction {
    let n = ring.len();
    let mut conj = Conjunction::tru();
    for i in 0..n {
        let p = &ring[i];
        let q = &ring[(i + 1) % n];
        conj.add(halfplane_left_of(p, q, vx, vy));
    }
    conj
}

/// The atom stating `(x, y)` lies on or left of the directed line `p → q`.
fn halfplane_left_of(p: &Point, q: &Point, vx: Var, vy: Var) -> Atom {
    // (q.x - p.x)(y - p.y) - (q.y - p.y)(x - p.x) ≥ 0
    let dx = &q.x - &p.x;
    let dy = &q.y - &p.y;
    let constant = &(&dy * &p.x) - &(&dx * &p.y);
    let expr = LinExpr::from_terms([(vx, -&dy), (vy, dx.clone())], constant);
    Atom::ge(expr, LinExpr::zero())
}

/// The paper's three-constraint representation of one segment: the
/// collinear line as an equation, plus bounds marking the two endpoints.
pub fn segment_to_conjunction(p: &Point, q: &Point, vx: Var, vy: Var) -> Conjunction {
    let dx = &q.x - &p.x;
    let dy = &q.y - &p.y;
    let constant = &(&dy * &p.x) - &(&dx * &p.y);
    let line = Atom::eq(
        LinExpr::from_terms([(vx, -&dy), (vy, dx.clone())], constant),
        LinExpr::zero(),
    );
    let mut conj = Conjunction::from_atoms([line]);
    // Endpoint bounds: constrain whichever coordinates actually vary.
    let (xlo, xhi) = if p.x <= q.x { (&p.x, &q.x) } else { (&q.x, &p.x) };
    let (ylo, yhi) = if p.y <= q.y { (&p.y, &q.y) } else { (&q.y, &p.y) };
    conj.add(Atom::ge(LinExpr::var(vx), LinExpr::constant(xlo.clone())));
    conj.add(Atom::le(LinExpr::var(vx), LinExpr::constant(xhi.clone())));
    conj.add(Atom::ge(LinExpr::var(vy), LinExpr::constant(ylo.clone())));
    conj.add(Atom::le(LinExpr::var(vy), LinExpr::constant(yhi.clone())));
    conj
}

/// Converts a whole geometry to its constraint (DNF) representation over
/// `(vx, vy)` — the §6.2 encoding, one constraint tuple per segment or
/// convex piece.
pub fn geometry_to_dnf(geom: &Geometry, vx: Var, vy: Var) -> Dnf {
    match geom {
        Geometry::Point(p) => Dnf::from_conjunction(Conjunction::from_atoms([
            Atom::var_eq_const(vx, p.x.clone()),
            Atom::var_eq_const(vy, p.y.clone()),
        ])),
        Geometry::Polyline(pts) => Dnf::from_conjunctions(
            pts.windows(2).map(|w| segment_to_conjunction(&w[0], &w[1], vx, vy)),
        ),
        Geometry::Polygon(ring) => Dnf::from_conjunctions(
            convex_decomposition(ring)
                .iter()
                .map(|piece| convex_ring_to_conjunction(piece, vx, vy)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::Assignment;

    fn p(x: i64, y: i64) -> Point {
        Point::from_ints(x, y)
    }
    const VX: Var = Var(0);
    const VY: Var = Var(1);

    fn dnf_holds(d: &Dnf, x: i64, y: i64) -> bool {
        dnf_holds_rat(d, Rat::from_int(x), Rat::from_int(y))
    }
    fn dnf_holds_rat(d: &Dnf, x: Rat, y: Rat) -> bool {
        d.eval(&Assignment::from_pairs([(VX, x), (VY, y)])).unwrap()
    }

    #[test]
    fn triangulate_square() {
        let tris = triangulate(&[p(0, 0), p(2, 0), p(2, 2), p(0, 2)]);
        assert_eq!(tris.len(), 2);
    }

    #[test]
    fn triangulate_concave() {
        // L-shape: 6 vertices → 4 triangles.
        let ring = vec![p(0, 0), p(4, 0), p(4, 2), p(2, 2), p(2, 4), p(0, 4)];
        let tris = triangulate(&ring);
        assert_eq!(tris.len(), 4);
        // Total doubled area = polygon doubled area (12·2 = 24).
        let total: Rat = tris
            .iter()
            .map(|t| crate::geom::signed_area2(t))
            .fold(Rat::zero(), |a, b| a + b);
        assert_eq!(total, Rat::from_int(24));
    }

    #[test]
    fn convex_decomposition_merges() {
        let ring = vec![p(0, 0), p(4, 0), p(4, 2), p(2, 2), p(2, 4), p(0, 4)];
        let pieces = convex_decomposition(&ring);
        assert!(pieces.len() >= 2, "an L is not convex");
        assert!(pieces.len() <= 3, "merging should beat raw triangles (4)");
        for piece in &pieces {
            assert!(is_convex(piece), "piece {:?}", piece);
        }
    }

    #[test]
    fn convex_polygon_single_piece() {
        let ring = vec![p(0, 0), p(4, 0), p(5, 3), p(2, 5), p(-1, 2)];
        let pieces = convex_decomposition(&ring);
        assert_eq!(pieces.len(), 1);
    }

    #[test]
    fn polygon_dnf_matches_point_in_polygon() {
        let ring = vec![p(0, 0), p(4, 0), p(4, 2), p(2, 2), p(2, 4), p(0, 4)];
        let geom = Geometry::polygon(ring.clone()).unwrap();
        let d = geometry_to_dnf(&geom, VX, VY);
        for x in -1..6 {
            for y in -1..6 {
                let via_dnf = dnf_holds(&d, x, y);
                let via_geom = geom.contains_point(&p(x, y));
                assert_eq!(via_dnf, via_geom, "at ({}, {})", x, y);
            }
        }
        // A rational interior point.
        assert!(dnf_holds_rat(&d, Rat::from_pair(1, 2), Rat::from_pair(1, 2)));
    }

    #[test]
    fn segment_dnf_is_the_segment() {
        let geom = Geometry::polyline(vec![p(0, 0), p(4, 4)]).unwrap();
        let d = geometry_to_dnf(&geom, VX, VY);
        assert!(dnf_holds(&d, 2, 2));
        assert!(dnf_holds_rat(&d, Rat::from_pair(1, 2), Rat::from_pair(1, 2)));
        assert!(!dnf_holds(&d, 2, 3));
        assert!(!dnf_holds(&d, 5, 5)); // beyond the endpoint
        // Vertical segment: x is pinned by the bounds.
        let v = Geometry::polyline(vec![p(1, 0), p(1, 5)]).unwrap();
        let dv = geometry_to_dnf(&v, VX, VY);
        assert!(dnf_holds(&dv, 1, 3));
        assert!(!dnf_holds(&dv, 2, 3));
        assert!(!dnf_holds(&dv, 1, 6));
    }

    #[test]
    fn point_dnf() {
        let geom = Geometry::Point(Point::new(Rat::from_pair(5, 2), Rat::from_int(1)));
        let d = geometry_to_dnf(&geom, VX, VY);
        assert!(dnf_holds_rat(&d, Rat::from_pair(5, 2), Rat::from_int(1)));
        assert!(!dnf_holds(&d, 2, 1));
    }

    #[test]
    fn decomposition_covers_exactly() {
        // Union of pieces == polygon, no seams or spill (sampled densely).
        let ring = vec![p(0, 0), p(6, 0), p(6, 2), p(4, 2), p(4, 4), p(6, 4), p(6, 6), p(0, 6)];
        let geom = Geometry::polygon(ring).unwrap();
        let d = geometry_to_dnf(&geom, VX, VY);
        for xi in 0..=12 {
            for yi in 0..=12 {
                let (x, y) = (Rat::from_pair(xi, 2), Rat::from_pair(yi, 2));
                let want = geom.contains_point(&Point::new(x.clone(), y.clone()));
                assert_eq!(dnf_holds_rat(&d, x.clone(), y.clone()), want, "at ({}, {})", x, y);
            }
        }
    }
}
