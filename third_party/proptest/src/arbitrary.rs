//! `any::<T>()`: the canonical strategy per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<A>(PhantomData<A>);

/// The canonical strategy for `A`'s whole domain.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for f64 {
    /// Mixes ordinary finite values with the special cases (`NaN`,
    /// infinities, signed zero), like upstream's default `f64` domain —
    /// tests that need finiteness filter explicitly.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(16) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -0.0,
            4 => 0.0,
            // Reinterpreted random bits: spans all magnitudes; may land
            // on NaN/inf again, which is within contract.
            5 | 6 => f64::from_bits(rng.next_u64()),
            // Modest-magnitude values, the common case.
            _ => (rng.unit_f64() - 0.5) * 2e6,
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        loop {
            if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                return c;
            }
        }
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_signed_and_unsigned() {
        let mut r = TestRng::from_seed(3);
        let mut saw_negative = false;
        for _ in 0..100 {
            if i64::arbitrary(&mut r) < 0 {
                saw_negative = true;
            }
        }
        assert!(saw_negative);
    }

    #[test]
    fn f64_hits_specials_and_finites() {
        let mut r = TestRng::from_seed(4);
        let vals: Vec<f64> = (0..400).map(|_| f64::arbitrary(&mut r)).collect();
        assert!(vals.iter().any(|v| v.is_nan()));
        assert!(vals.iter().any(|v| v.is_finite()));
    }
}
