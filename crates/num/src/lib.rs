//! # cqa-num — exact arithmetic for CQA/CDB
//!
//! The constraint data model of CQA/CDB is *rational linear* constraints:
//! every coefficient, constant, and query answer is a rational number with
//! arbitrary-precision integer numerator and denominator. Quantifier
//! elimination (Fourier–Motzkin) multiplies constraints together, so
//! coefficients can grow beyond any fixed-width integer; this crate provides
//! the exact arithmetic substrate the rest of the system is built on.
//!
//! Two types are exported:
//!
//! * [`BigInt`] — a sign–magnitude arbitrary-precision integer.
//! * [`Rat`] — a normalized rational number (`BigInt` numerator over a
//!   strictly positive `BigInt` denominator).
//!
//! Both are fully owned, hashable, totally ordered values, suitable as keys
//! in maps and as tuple components in constraint relations.
//!
//! ```
//! use cqa_num::{BigInt, Rat};
//!
//! let a = Rat::from_decimal_str("2.5").unwrap();
//! let b = Rat::new(BigInt::from(1), BigInt::from(2)); // 1/2
//! assert_eq!((a * b).to_string(), "5/4");
//! ```

mod bigint;
pub mod par;
pub mod prng;
mod rat;

pub use bigint::{BigInt, ParseBigIntError, Sign};
pub use rat::{ParseRatError, Rat};
