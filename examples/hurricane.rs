//! The Hurricane Database case study (§3.3 of the paper).
//!
//! Loads the Figure 2 instance from `examples/data/hurricane.cdb` and runs
//! the five queries. Queries 1–3 follow the paper's scripts verbatim
//! (modulo attribute spelling); the paper's text truncates after Query 3's
//! first steps, so Queries 4 and 5 are reconstructions in the same style
//! (marked below).
//!
//! Run with: `cargo run -p cqa --example hurricane`

use cqa::core::Catalog;
use cqa::lang::schema_def::parse_cdb;
use cqa::lang::ScriptRunner;

const DATA: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../examples/data/hurricane.cdb"
);

fn main() {
    let source = std::fs::read_to_string(DATA).expect("hurricane.cdb present");
    let mut catalog = Catalog::new();
    parse_cdb(&source).expect("valid .cdb file").load_into(&mut catalog);

    println!("Loaded the Hurricane Database:");
    for name in ["Land", "Landownership", "Hurricane"] {
        let rel = catalog.get(name).unwrap();
        println!("--- {} {} ({} tuples)", name, rel.schema(), rel.len());
        print!("{}", rel);
    }

    let mut runner = ScriptRunner::new(catalog);

    // Query 1: who owned Land A and when (verbatim from the paper).
    println!("\n=== Query 1: who owned Land A and when ===");
    let q1 = runner
        .run(
            "R0 = select landId = \"A\" from Landownership\n\
             R1 = project R0 on name, t\n",
        )
        .unwrap();
    print!("{}", q1);

    // Query 2: all landIds that the hurricane passed (verbatim).
    println!("\n=== Query 2: all landIds the hurricane passed ===");
    let q2 = runner
        .run(
            "R0 = join Hurricane and Land\n\
             R1 = project R0 on landId\n",
        )
        .unwrap();
    print!("{}", q2);

    // Query 3: names of those whose land was hit by the hurricane between
    // time 4 and 9. The paper shows the first steps (join Landownership
    // and Land; select on t from Hurricane); the remainder completes the
    // plan in the obvious way.
    println!("\n=== Query 3: whose land was hit between t = 4 and t = 9 ===");
    let q3 = runner
        .run(
            "R0 = join Landownership and Land\n\
             R1 = select t >= 4, t <= 9 from Hurricane\n\
             R2 = join R0 and R1\n\
             R3 = project R2 on name\n",
        )
        .unwrap();
    print!("{}", q3);

    // Query 4 (reconstructed): parcels the hurricane passed that Ann never
    // owned — exercises the difference operator.
    println!("\n=== Query 4 (reconstructed): hit parcels Ann never owned ===");
    let q4 = runner
        .run(
            "R0 = join Hurricane and Land\n\
             R1 = project R0 on landId\n\
             R2 = select name = \"Ann\" from Landownership\n\
             R3 = project R2 on landId\n\
             R4 = diff R1 and R3\n",
        )
        .unwrap();
    print!("{}", q4);

    // Query 5 (reconstructed): when was parcel B being hit — the output is
    // itself a constraint relation (an interval of times).
    println!("\n=== Query 5 (reconstructed): when was parcel B hit ===");
    let q5 = runner
        .run(
            "R0 = select landId = \"B\" from Land\n\
             R1 = join Hurricane and R0\n\
             R2 = project R1 on t\n",
        )
        .unwrap();
    print!("{}", q5);
    println!("\n(The answer is the time interval during which the storm was inside B.)");
}
