//! Property test: any well-formed heterogeneous relation survives a save /
//! load round trip through the storage engine bit-for-bit — the "no loss of
//! accuracy" promise of §3.3 extended to disk.


// Property suite: compiled only with `--features proptest` so the
// offline tier-1 run stays lean; see third_party/README.md.
#![cfg(feature = "proptest")]

use cqa_core::persist::{load_relation, save_relation};
use cqa_core::{AttrDef, HRelation, Schema, Tuple, Value};
use cqa_num::Rat;
use cqa_storage::{BufferPool, MemDisk};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct TupleDesc {
    name: Option<String>,
    count: Option<(i64, i64)>, // rational value p/q
    x: Option<(i32, i32, u8)>, // lo num, hi num, shared denom
    link_xy: bool,
}

fn arb_tuple() -> impl Strategy<Value = TupleDesc> {
    (
        prop::option::of("[a-zA-Z0-9 ]{0,12}"),
        prop::option::of((any::<i32>(), 1i32..10_000)),
        prop::option::of((-1000i32..1000, 0i32..1000, 1u8..9)),
        any::<bool>(),
    )
        .prop_map(|(name, count, x, link_xy)| TupleDesc {
            name,
            count: count.map(|(p, q)| (p as i64, q as i64)),
            x: x.map(|(lo, w, d)| (lo, lo + w, d)),
            link_xy,
        })
}

fn schema() -> Schema {
    Schema::new(vec![
        AttrDef::str_rel("name"),
        AttrDef::rat_rel("count"),
        AttrDef::rat_con("x"),
        AttrDef::rat_con("y"),
    ])
    .unwrap()
}

fn materialize(descs: Vec<TupleDesc>) -> HRelation {
    let mut rel = HRelation::new(schema());
    for d in descs {
        let mut b = Tuple::builder(rel.schema());
        if let Some(n) = &d.name {
            b = b.set("name", Value::str(n.as_str()));
        }
        if let Some((p, q)) = d.count {
            b = b.set("count", Value::rat(Rat::from_pair(p, q)));
        }
        if let Some((lo, hi, den)) = d.x {
            b = b.range_rat(
                "x",
                Rat::from_pair(lo as i64, den as i64),
                Rat::from_pair(hi as i64, den as i64),
            );
        }
        if d.link_xy {
            use cqa::constraints::{Atom, LinExpr, Var};
            b = b.atom(Atom::le(
                LinExpr::from_terms(
                    [(Var(2), Rat::from_int(3)), (Var(3), Rat::from_pair(-1, 7))],
                    Rat::from_pair(5, 11),
                ),
                LinExpr::zero(),
            ));
        }
        rel.insert(b.build().unwrap());
    }
    rel
}

// The facade is available through the dev-dependency graph of the cqa crate;
// core's own tests import constraints directly.
use cqa_constraints as _;
mod cqa {
    pub use cqa_constraints as constraints;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn save_load_is_identity(descs in prop::collection::vec(arb_tuple(), 0..12), pool_size in 1usize..6) {
        let rel = materialize(descs);
        let mut pool = BufferPool::new(MemDisk::new(), pool_size);
        let heap = save_relation(&rel, &mut pool).unwrap();
        pool.clear().unwrap();
        let back = load_relation(&heap, &mut pool).unwrap();
        prop_assert_eq!(rel, back);
    }
}
