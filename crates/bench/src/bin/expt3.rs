//! Experiment 3 (reconstructed; the provided paper text specifies only
//! "generate 500 queries" for it — see DESIGN.md): a mixed workload of 500
//! queries (50% two-attribute, 25% x-only, 25% y-only) comparing total disk
//! accesses under the joint strategy, the separate strategy, and the
//! configuration recommended by the index advisor's cost model.

use cqa_bench::experiments::{experiment_mixed, summarize, DataKind};
use cqa_bench::workload;
use cqa::index::advisor::{Advisor, QueryProfile};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2003);
    println!("# Experiment 3 (reconstructed): 500 mixed queries (seed {})", seed);
    for kind in [DataKind::Constraint, DataKind::Relational] {
        let ms = experiment_mixed(kind, seed);
        let s = summarize(&ms, 10);
        let total_joint: u64 = ms.iter().map(|m| m.joint).sum();
        let total_sep: u64 = ms.iter().map(|m| m.separate).sum();
        println!();
        println!("## {} attributes", kind.label());
        println!("total accesses over 500 queries: joint = {}, separate = {}", total_joint, total_sep);
        println!("per-query means: joint = {:.1}, separate = {:.1}", s.means.0, s.means.1);
    }

    // What would the advisor choose for this workload?
    let qs = workload::queries(seed ^ 0x3333, workload::NUM_QUERIES_EXPT3);
    let domain = workload::COORD_MAX + workload::EXTENT_MAX;
    let profiles: Vec<QueryProfile> = qs
        .iter()
        .enumerate()
        .map(|(i, q)| match i % 4 {
            0 | 1 => QueryProfile::new(
                2,
                [(0, q.x_len() / domain), (1, q.y_len() / domain)],
            ),
            2 => QueryProfile::new(2, [(0, q.x_len() / domain)]),
            _ => QueryProfile::new(2, [(1, q.y_len() / domain)]),
        })
        .collect();
    let advisor = Advisor::new(2, workload::NUM_DATA);
    let recommendation = advisor.recommend(&profiles);
    println!();
    println!("# Index advisor recommendation for this workload: {:?}", recommendation);
    println!(
        "# modeled cost: recommended = {:.0}, joint = {:.0}, separate = {:.0}",
        advisor.estimate_cost(&recommendation, &profiles),
        advisor.estimate_cost(&[[0usize, 1].into_iter().collect()], &profiles),
        advisor.estimate_cost(
            &[[0usize].into_iter().collect(), [1usize].into_iter().collect()],
            &profiles
        ),
    );
}
