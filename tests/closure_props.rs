//! The closure principle (§2.5) as a property-based test over the whole
//! algebra: every CQA operator, applied *syntactically* to random
//! heterogeneous relations, must agree pointwise with the corresponding
//! set operation on the denoted (possibly infinite) point sets.
//!
//! Points are sampled from a small rational grid so boundaries (where
//! strictness bugs live) are hit often.


// Property suite: compiled only with `--features proptest` so the
// offline tier-1 run stays lean; see third_party/README.md.
#![cfg(feature = "proptest")]

use cqa::core::plan::{CmpOp, Selection};
use cqa::core::{ops, AttrDef, HRelation, Schema, Tuple, Value};
use cqa::num::Rat;
use proptest::prelude::*;

/// Schema under test: one relational string, two constraint rationals.
fn schema() -> Schema {
    Schema::new(vec![
        AttrDef::str_rel("id"),
        AttrDef::rat_con("x"),
        AttrDef::rat_con("y"),
    ])
    .unwrap()
}

/// A tuple description the strategy can generate: id, an interval per
/// constraint attribute (possibly missing = broad), and optionally a
/// linking atom x ≤ y.
#[derive(Debug, Clone)]
struct TupleDesc {
    id: Option<u8>,
    x: Option<(i8, i8)>,
    y: Option<(i8, i8)>,
    link: bool,
}

fn arb_tuple() -> impl Strategy<Value = TupleDesc> {
    (
        prop::option::weighted(0.9, 0u8..3),
        prop::option::weighted(0.8, (-3i8..4, 0i8..4)),
        prop::option::weighted(0.8, (-3i8..4, 0i8..4)),
        any::<bool>(),
    )
        .prop_map(|(id, x, y, link)| TupleDesc {
            id,
            x: x.map(|(lo, w)| (lo, lo.saturating_add(w))),
            y: y.map(|(lo, w)| (lo, lo.saturating_add(w))),
            link,
        })
}

fn arb_relation(max: usize) -> impl Strategy<Value = Vec<TupleDesc>> {
    prop::collection::vec(arb_tuple(), 0..=max)
}

fn materialize(descs: &[TupleDesc]) -> HRelation {
    let mut rel = HRelation::new(schema());
    for d in descs {
        let mut b = Tuple::builder(rel.schema());
        if let Some(id) = d.id {
            b = b.set("id", Value::str(format!("i{}", id)));
        }
        if let Some((lo, hi)) = d.x {
            b = b.range("x", lo as i64, hi as i64);
        }
        if let Some((lo, hi)) = d.y {
            b = b.range("y", lo as i64, hi as i64);
        }
        if d.link {
            use cqa::constraints::{Atom, LinExpr, Var};
            b = b.atom(Atom::le(LinExpr::var(Var(1)), LinExpr::var(Var(2))));
        }
        rel.insert(b.build().unwrap());
    }
    rel
}

/// The sample grid: ids i0..i2 plus an id no tuple carries, and rational
/// coordinates at integer and half-integer positions.
fn sample_points() -> Vec<[Value; 3]> {
    let mut out = Vec::new();
    for id in 0..4u8 {
        for xi in [-2i64, 0, 1, 3, 7] {
            for yi in [-2i64, 0, 1, 3] {
                out.push([
                    Value::str(format!("i{}", id)),
                    Value::rat(Rat::from_pair(2 * xi + 1, 2)),
                    Value::int(yi),
                ]);
                out.push([Value::str(format!("i{}", id)), Value::int(xi), Value::int(yi)]);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn select_is_pointwise_filter(descs in arb_relation(4), lo in -3i8..4) {
        let rel = materialize(&descs);
        let sel = Selection::all().cmp_int("x", CmpOp::Ge, lo as i64);
        let out = ops::select(&rel, &sel).unwrap();
        for p in sample_points() {
            let in_rel = rel.contains_point(&p).unwrap();
            let passes = p[1].as_rat().unwrap() >= &Rat::from_int(lo as i64);
            prop_assert_eq!(
                out.contains_point(&p).unwrap(),
                in_rel && passes,
                "point {:?}", p
            );
        }
    }

    #[test]
    fn project_is_pointwise_shadow(descs in arb_relation(4)) {
        let rel = materialize(&descs);
        let out = ops::project(&rel, &["id".into(), "x".into()]).unwrap();
        for p in sample_points() {
            let shadow = [p[0].clone(), p[1].clone()];
            // Shadow membership: ∃y at this (id, x). Our y-extents all lie
            // within [-3, 7]; sample a few candidate ys plus the broad case.
            let mut exists = false;
            for yi in -4i64..=8 {
                for half in [0, 1] {
                    let y = Value::rat(Rat::from_pair(2 * yi + half, 2));
                    if rel.contains_point(&[p[0].clone(), p[1].clone(), y]).unwrap() {
                        exists = true;
                        break;
                    }
                }
            }
            prop_assert_eq!(out.contains_point(&shadow).unwrap(), exists, "shadow {:?}", shadow);
        }
    }

    #[test]
    fn union_is_pointwise_or(a in arb_relation(3), b in arb_relation(3)) {
        let (ra, rb) = (materialize(&a), materialize(&b));
        let out = ops::union(&ra, &rb).unwrap();
        for p in sample_points() {
            prop_assert_eq!(
                out.contains_point(&p).unwrap(),
                ra.contains_point(&p).unwrap() || rb.contains_point(&p).unwrap()
            );
        }
    }

    #[test]
    fn difference_is_pointwise_andnot(a in arb_relation(3), b in arb_relation(3)) {
        let (ra, rb) = (materialize(&a), materialize(&b));
        let out = ops::difference(&ra, &rb).unwrap();
        for p in sample_points() {
            prop_assert_eq!(
                out.contains_point(&p).unwrap(),
                ra.contains_point(&p).unwrap() && !rb.contains_point(&p).unwrap(),
                "point {:?}", p
            );
        }
    }

    #[test]
    fn join_on_full_schema_is_intersection(a in arb_relation(3), b in arb_relation(3)) {
        // Same schema on both sides: natural join = intersection (the
        // paper's remark under the Natural-Join definition).
        let (ra, rb) = (materialize(&a), materialize(&b));
        let out = ops::join(&ra, &rb).unwrap();
        for p in sample_points() {
            prop_assert_eq!(
                out.contains_point(&p).unwrap(),
                ra.contains_point(&p).unwrap() && rb.contains_point(&p).unwrap()
            );
        }
    }

    #[test]
    fn rename_preserves_points(descs in arb_relation(4)) {
        let rel = materialize(&descs);
        let out = ops::rename(&rel, "x", "z").unwrap();
        for p in sample_points() {
            prop_assert_eq!(out.contains_point(&p).unwrap(), rel.contains_point(&p).unwrap());
        }
    }

    /// Algebraic laws that follow from closure: R − (R − S) ⊆ S and
    /// idempotence of union.
    #[test]
    fn double_difference_law(a in arb_relation(2), b in arb_relation(2)) {
        let (ra, rb) = (materialize(&a), materialize(&b));
        let diff = ops::difference(&ra, &rb).unwrap();
        let dd = ops::difference(&ra, &diff).unwrap();
        for p in sample_points() {
            if dd.contains_point(&p).unwrap() {
                prop_assert!(ra.contains_point(&p).unwrap());
                prop_assert!(rb.contains_point(&p).unwrap());
            }
        }
        let uu = ops::union(&ra, &ra).unwrap();
        for p in sample_points().into_iter().take(30) {
            prop_assert_eq!(uu.contains_point(&p).unwrap(), ra.contains_point(&p).unwrap());
        }
    }
}
