//! The missing attribute inconsistency (§3.1, Proposition 1) and its fix.
//!
//! Reproduces Examples 2 and 3 of the paper: the same data queried under
//! broad (constraint) vs narrow (relational) semantics, and the asymmetric
//! behaviour the C/R flag produces.
//!
//! Run with: `cargo run -p cqa --example missing_attributes`

use cqa::core::plan::{CmpOp, Selection};
use cqa::core::{ops, AttrDef, HRelation, Schema, Value};
use cqa::num::Rat;

fn main() {
    // ----- Example 2: R = {(x = 1)} over attributes {x, y}. -------------
    println!("Example 2: R = {{(x = 1)}} over {{x, y}}, query: select y = 17");

    // Broad reading: both attributes are constraint attributes. The tuple
    // does not mention y, so y ranges over the whole domain.
    let broad_schema =
        Schema::new(vec![AttrDef::rat_con("x"), AttrDef::rat_con("y")]).unwrap();
    let mut broad = HRelation::new(broad_schema);
    broad.insert_with(|b| b.pin("x", Rat::from_int(1))).unwrap();
    let out = ops::select(&broad, &Selection::all().cmp_int("y", CmpOp::Eq, 17)).unwrap();
    println!("  y constraint (broad):   {} tuple(s) -> {}", out.len(),
        if out.is_empty() { "empty".to_string() } else { out.tuples()[0].display(out.schema()).to_string() });
    assert_eq!(out.len(), 1);
    assert!(out.contains_point(&[Value::int(1), Value::int(17)]).unwrap());

    // Narrow reading: y is a relational attribute. Its missing value is a
    // null distinct from every domain value, so the query returns nothing —
    // "if an employee's age is missing and we ask 'whose age is 40?', it
    // would be wrong to return that employee."
    let narrow_schema =
        Schema::new(vec![AttrDef::rat_con("x"), AttrDef::rat_rel("y")]).unwrap();
    let mut narrow = HRelation::new(narrow_schema);
    narrow.insert_with(|b| b.pin("x", Rat::from_int(1))).unwrap();
    let out = ops::select(&narrow, &Selection::all().cmp_int("y", CmpOp::Eq, 17)).unwrap();
    println!("  y relational (narrow): {} tuple(s)", out.len());
    assert!(out.is_empty());

    println!("  -> the same tuple, two defensible answers: that is Proposition 1.");
    println!("  -> the C/R schema flag makes the choice explicit per attribute.\n");

    // ----- Example 3: the dual behaviour under one schema. ---------------
    println!("Example 3: R = {{(x=1), (y=1), (x=17, y=17)}} with [x: relational, y: constraint]");
    let schema = Schema::new(vec![AttrDef::rat_rel("x"), AttrDef::rat_con("y")]).unwrap();
    let mut r = HRelation::new(schema);
    r.insert_with(|b| b.set("x", 1)).unwrap();
    r.insert_with(|b| b.pin("y", Rat::from_int(1))).unwrap();
    r.insert_with(|b| b.set("x", 17).pin("y", Rat::from_int(17))).unwrap();

    let by_x = ops::select(&r, &Selection::all().cmp_int("x", CmpOp::Eq, 17)).unwrap();
    println!("  select x = 17 -> {} tuple(s)   (paper: {{(x = 17, y = 17)}})", by_x.len());
    assert_eq!(by_x.len(), 1);

    let by_y = ops::select(&r, &Selection::all().cmp_int("y", CmpOp::Eq, 17)).unwrap();
    println!("  select y = 17 -> {} tuple(s)   (paper: {{(x = 1, y = 17), (x = 17, y = 17)}})", by_y.len());
    assert_eq!(by_y.len(), 2);

    for t in by_y.tuples() {
        println!("      {}", t.display(by_y.schema()));
    }
    println!("  -> asymmetric but *consistent*: the heterogeneous model is upward");
    println!("     compatible with the relational model (see tests/upward_compat.rs).");
}
