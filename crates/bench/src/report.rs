//! Shared shape for `BENCH_*.json` artifacts.
//!
//! Every harness that persists machine-readable results writes the same
//! schema-versioned envelope so downstream tooling can ingest any bench
//! file without per-binary parsers:
//!
//! ```json
//! {"name": "obs_bench", "schema": 1, "metrics": {...}}
//! ```
//!
//! The `metrics` object is harness-specific; the envelope is not. Bump
//! [`SCHEMA_VERSION`] only on breaking envelope changes.

use cqa::obs::json::Json;

/// Version of the envelope (`name`/`schema`/`metrics`), not of any
/// harness's metric set.
pub const SCHEMA_VERSION: u64 = 1;

/// Wraps harness metrics in the shared envelope.
pub fn doc(name: &str, metrics: Vec<(String, Json)>) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::str(name)),
        ("schema".to_string(), Json::from_u64(SCHEMA_VERSION)),
        ("metrics".to_string(), Json::Obj(metrics)),
    ])
}

/// Renders the envelope and writes it to `path` with a trailing newline.
pub fn write(path: &str, name: &str, metrics: Vec<(String, Json)>) -> std::io::Result<()> {
    std::fs::write(path, doc(name, metrics).render() + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrips_through_the_obs_parser() {
        let d = doc(
            "unit",
            vec![("answer".to_string(), Json::from_u64(42))],
        );
        let parsed = cqa::obs::json::parse(&d.render()).expect("envelope parses");
        assert_eq!(parsed.get("name").and_then(Json::as_str), Some("unit"));
        assert_eq!(parsed.get("schema").and_then(Json::as_num), Some(1.0));
        assert_eq!(
            parsed.get("metrics").and_then(|m| m.get("answer")).and_then(Json::as_num),
            Some(42.0)
        );
    }
}
