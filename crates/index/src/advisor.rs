//! A heuristic for the paper's open problem (§5.4):
//!
//! > *Given a constraint relation over attributes `X = {x₁, …, xₖ}`,
//! > determine a set of subsets of `X` that should correspond to indices
//! > over `X`, with one index per subset.*
//!
//! §5.3 identifies the two forces: attribute *selectivity* and which
//! combinations of attributes "typical" queries constrain. The advisor
//! turns those into an analytic cost model and greedily merges attribute
//! subsets while the modeled workload cost decreases.
//!
//! The cost model (per query, per index over subset `S`):
//!
//! ```text
//! cost(S, Q) = height(S) + leaves(S) · ∏_{a ∈ S} sel(a, Q)
//! ```
//!
//! where `sel(a, Q)` is the query's selectivity on attribute `a` (1.0 when
//! the query does not constrain `a`), `leaves(S) = N / fanout(|S|)`, and
//! `fanout` shrinks as `|S|` grows because wider keys fit fewer entries per
//! page — the real storage trade-off behind the paper's Figures 4 and 5. A
//! query is charged for every index that overlaps its constrained set
//! (results from multiple indexes must be intersected, as in the separate
//! strategy of §5.4.1).

use crate::rstar::RStarParams;
use std::collections::BTreeSet;

/// One query's shape: which attributes it constrains and how selectively.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryProfile {
    /// `selectivity[a]` is the fraction of the attribute's domain the query
    /// admits; `None` means the attribute is unconstrained.
    pub selectivity: Vec<Option<f64>>,
}

impl QueryProfile {
    /// Builds a profile from `(attribute, selectivity)` pairs over `k`
    /// attributes.
    pub fn new(k: usize, constrained: impl IntoIterator<Item = (usize, f64)>) -> QueryProfile {
        let mut selectivity = vec![None; k];
        for (a, s) in constrained {
            selectivity[a] = Some(s.clamp(0.0, 1.0));
        }
        QueryProfile { selectivity }
    }

    /// The set of constrained attributes.
    pub fn constrained(&self) -> BTreeSet<usize> {
        self.selectivity
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|_| i))
            .collect()
    }
}

/// The index advisor.
#[derive(Debug, Clone)]
pub struct Advisor {
    /// Number of attributes in the relation.
    pub attributes: usize,
    /// Number of tuples in the relation.
    pub tuples: usize,
}

impl Advisor {
    /// Creates an advisor for a relation of `tuples` rows over `attributes`
    /// indexable attributes.
    pub fn new(attributes: usize, tuples: usize) -> Advisor {
        Advisor { attributes, tuples }
    }

    fn fanout(dims: usize) -> f64 {
        RStarParams::fitting_page(dims).max_entries as f64
    }

    /// Modeled disk accesses for one query against one index subset.
    fn index_cost(&self, subset: &BTreeSet<usize>, q: &QueryProfile) -> f64 {
        let f = Self::fanout(subset.len());
        let n = self.tuples as f64;
        let height = (n.ln() / f.ln()).ceil().max(1.0);
        let leaves = (n / f).ceil();
        let sel: f64 = subset
            .iter()
            .map(|&a| q.selectivity[a].unwrap_or(1.0))
            .product();
        height + leaves * sel
    }

    /// Modeled cost of a whole workload under a partition of the
    /// attributes into index subsets.
    pub fn estimate_cost(&self, partition: &[BTreeSet<usize>], workload: &[QueryProfile]) -> f64 {
        workload
            .iter()
            .map(|q| {
                let constrained = q.constrained();
                if constrained.is_empty() {
                    // Unconstrained query: scan the leaves of one index.
                    let s = &partition[0];
                    return (self.tuples as f64 / Self::fanout(s.len())).ceil();
                }
                partition
                    .iter()
                    .filter(|s| s.intersection(&constrained).next().is_some())
                    .map(|s| self.index_cost(s, q))
                    .sum::<f64>()
            })
            .sum()
    }

    /// Greedy subset selection: start from singletons, merge the pair whose
    /// merge reduces modeled workload cost most, stop when no merge helps.
    pub fn recommend(&self, workload: &[QueryProfile]) -> Vec<BTreeSet<usize>> {
        let mut partition: Vec<BTreeSet<usize>> =
            (0..self.attributes).map(|a| BTreeSet::from([a])).collect();
        loop {
            let current = self.estimate_cost(&partition, workload);
            let mut best: Option<(f64, usize, usize)> = None;
            for i in 0..partition.len() {
                for j in i + 1..partition.len() {
                    let mut candidate = partition.clone();
                    let merged: BTreeSet<usize> =
                        candidate[i].union(&candidate[j]).copied().collect();
                    candidate[i] = merged;
                    candidate.remove(j);
                    let cost = self.estimate_cost(&candidate, workload);
                    if cost < current && best.is_none_or(|(c, _, _)| cost < c) {
                        best = Some((cost, i, j));
                    }
                }
            }
            match best {
                Some((_, i, j)) => {
                    let merged: BTreeSet<usize> =
                        partition[i].union(&partition[j]).copied().collect();
                    partition[i] = merged;
                    partition.remove(j);
                }
                None => return partition,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets(v: &[&[usize]]) -> Vec<BTreeSet<usize>> {
        v.iter().map(|s| s.iter().copied().collect()).collect()
    }

    #[test]
    fn two_attribute_workload_prefers_joint() {
        let advisor = Advisor::new(2, 10_000);
        // Every query constrains both attributes moderately selectively.
        let workload: Vec<QueryProfile> =
            (0..10).map(|_| QueryProfile::new(2, [(0, 0.05), (1, 0.05)])).collect();
        let rec = advisor.recommend(&workload);
        assert_eq!(rec, sets(&[&[0, 1]]), "joint index for conjunctive workloads");
    }

    #[test]
    fn single_attribute_workload_prefers_separate() {
        let advisor = Advisor::new(2, 10_000);
        let mut workload = Vec::new();
        for _ in 0..5 {
            workload.push(QueryProfile::new(2, [(0, 0.05)]));
            workload.push(QueryProfile::new(2, [(1, 0.05)]));
        }
        let rec = advisor.recommend(&workload);
        assert_eq!(rec.len(), 2, "separate indices for single-attribute workloads");
    }

    #[test]
    fn correlated_pair_grouped_apart_from_loner() {
        let advisor = Advisor::new(3, 100_000);
        // Attributes 0 and 1 always queried together and selectively;
        // attribute 2 queried alone.
        let mut workload = Vec::new();
        for _ in 0..10 {
            workload.push(QueryProfile::new(3, [(0, 0.02), (1, 0.02)]));
            workload.push(QueryProfile::new(3, [(2, 0.02)]));
        }
        let rec = advisor.recommend(&workload);
        assert!(rec.contains(&BTreeSet::from([0, 1])), "pair grouped: {:?}", rec);
        assert!(rec.contains(&BTreeSet::from([2])), "loner separate: {:?}", rec);
    }

    #[test]
    fn cost_model_orders_strategies_like_figure_4() {
        // For both-attribute queries the joint partition must model cheaper
        // than the separate one (the paper's Figure 4 conclusion).
        let advisor = Advisor::new(2, 10_000);
        let workload: Vec<QueryProfile> =
            (0..100).map(|_| QueryProfile::new(2, [(0, 0.03), (1, 0.03)])).collect();
        let joint = advisor.estimate_cost(&sets(&[&[0, 1]]), &workload);
        let separate = advisor.estimate_cost(&sets(&[&[0], &[1]]), &workload);
        assert!(joint < separate, "joint {} vs separate {}", joint, separate);
    }

    #[test]
    fn cost_model_orders_strategies_like_figure_5() {
        // For one-attribute queries the separate partition models cheaper
        // (Figure 5), because the joint index pays selectivity 1.0 on the
        // unconstrained dimension.
        let advisor = Advisor::new(2, 10_000);
        let workload: Vec<QueryProfile> =
            (0..100).map(|_| QueryProfile::new(2, [(0, 0.03)])).collect();
        let joint = advisor.estimate_cost(&sets(&[&[0, 1]]), &workload);
        let separate = advisor.estimate_cost(&sets(&[&[0], &[1]]), &workload);
        assert!(separate < joint, "separate {} vs joint {}", separate, joint);
    }

    #[test]
    fn unconstrained_queries_do_not_crash() {
        let advisor = Advisor::new(2, 1000);
        let workload = vec![QueryProfile::new(2, [])];
        let cost = advisor.estimate_cost(&sets(&[&[0], &[1]]), &workload);
        assert!(cost > 0.0);
        let _ = advisor.recommend(&workload);
    }
}
