//! # cqa-bench — experiment harnesses for every figure of the paper
//!
//! The binaries in `src/bin/` regenerate the evaluation artifacts:
//!
//! | Binary        | Paper artifact | What it prints |
//! |---------------|----------------|----------------|
//! | `figure4`     | Figure 4       | disk accesses vs. query area, joint vs. separate, for constraint (expt 1-A) and relational (expt 1-B) data |
//! | `figure5`     | Figure 5       | disk accesses vs. query length, joint vs. separate, for constraint (expt 2-A) and relational (expt 2-B) data |
//! | `expt3`       | experiment 3 (reconstructed) | 500 mixed queries: total accesses under joint, separate, and advisor-chosen indexing |
//! | `selectivity` | §5.3 prose claim | the low-selectivity-conjunction scenario: joint ≈ logarithmic vs. separate ≈ linear |
//! | `hurricane_perf` | §3.3 case study | wall-clock timings of the five Hurricane queries |
//!
//! The workload generator reproduces the §5.4 protocol exactly (10,000
//! data rectangles with extents in `\[1,100\]` and corners in `\[0,3000\]`²; 100
//! query rectangles from the same distribution; 500 for experiment 3),
//! seeded for reproducibility.

pub mod experiments;
pub mod report;
pub mod workload;
