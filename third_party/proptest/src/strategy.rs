//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::fmt::Debug;

/// A recipe for generating values of one type.
///
/// Unlike upstream, a strategy here is just a sampler: it produces a
/// value per case and performs no shrinking.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value: Debug;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards values failing `pred`, resampling (bounded retries).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        (**self).sample_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.reason)
    }
}

/// A weighted choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T: Debug> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T: Debug> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total_weight }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

// ---- ranges as strategies -------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = if span <= u64::MAX as u128 {
                    rng.below(span as u64) as u128
                } else {
                    // Spans beyond 2^64 only arise for 128-bit-capable
                    // types; modulo bias is irrelevant at this width.
                    (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span
                };
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = if span <= u64::MAX as u128 {
                    rng.below(span as u64) as u128
                } else {
                    (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span
                };
                (lo as i128 + off as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample_value(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

// ---- tuples of strategies -------------------------------------------------

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(11)
    }

    #[test]
    fn ranges_sample_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (-3i8..4).sample_value(&mut r);
            assert!((-3..4).contains(&v));
            let w = (0u32..=7).sample_value(&mut r);
            assert!(w <= 7);
            let f = (1.0f64..2.0).sample_value(&mut r);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn map_filter_union_compose() {
        let mut r = rng();
        let s = crate::prop_oneof![
            3 => (0i32..10).prop_map(|v| v * 2),
            1 => Just(99i32),
        ]
        .prop_filter("nonzero", |v| *v != 0);
        for _ in 0..200 {
            let v = s.sample_value(&mut r);
            assert!(v != 0 && (v % 2 == 0 || v == 99));
        }
    }

    #[test]
    fn tuples_sample_componentwise() {
        let mut r = rng();
        let (a, b, c) = ((0u8..3), (10i16..12), Just(5u64)).sample_value(&mut r);
        assert!(a < 3);
        assert!((10..12).contains(&b));
        assert_eq!(c, 5);
    }
}
