//! Offline stand-in for the `proptest` property-testing harness.
//!
//! Implements the subset of the proptest 1.x source-level API this
//! workspace's test suites use — the `proptest!` macro, `prop_assert*!`,
//! `prop_oneof!`, the [`strategy::Strategy`] combinators, `any::<T>()`,
//! regex-subset string strategies, and the `prop::{collection, option,
//! sample}` modules — over a small deterministic RNG.
//!
//! Two deliberate simplifications versus upstream (documented in
//! `third_party/README.md`): failing inputs are *reported, not shrunk*,
//! and the RNG seed is a hash of the test's module path, so every run
//! and every machine sees the same cases.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors `proptest::prelude::prop`: module shorthands.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample_value(&($strat), __rng);)+
                    let __case_desc = {
                        let mut parts: ::std::vec::Vec<::std::string::String> = ::std::vec::Vec::new();
                        $(parts.push(format!(concat!(stringify!($arg), " = {:?}"), &$arg));)+
                        parts.join(", ")
                    };
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                                $body
                                #[allow(unreachable_code)]
                                ::core::result::Result::Ok(())
                            },
                        ),
                    );
                    match __outcome {
                        Ok(result) => result.map_err(|e| e.with_context(&__case_desc)),
                        Err(panic_payload) => {
                            eprintln!("proptest case panicked with inputs: {}", __case_desc);
                            ::std::panic::resume_unwind(panic_payload)
                        }
                    }
                },
            );
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args…)`: fails the
/// current case (early-returns an `Err`) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert_eq!(a, b)` with the comparison semantics of `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    left,
                    right
                );
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    left,
                    right,
                    format!($($fmt)*)
                );
            }
        }
    };
}

/// `prop_assert_ne!(a, b)`, for completeness with the upstream prelude.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `(left != right)`\n  both: `{:?}`",
                    left
                );
            }
        }
    };
}

/// Picks among strategies, optionally weighted: `prop_oneof![s1, s2]` or
/// `prop_oneof![3 => s1, 1 => s2]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
