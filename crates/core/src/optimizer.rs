//! Rule-based algebraic optimization.
//!
//! §1.1 places optimization in the CQA layer: "CQA queries can be optimized
//! for efficient evaluation, through the use of indexing and through
//! operator reordering". This module implements the operator-reordering
//! half with the classical rewrites, valid verbatim in the constraint
//! setting because every operator is semantically identical to its
//! relational counterpart (closure principle, §2.5):
//!
//! * merge cascaded selections;
//! * push selections through union, through the left side of difference,
//!   through rename (rewriting attribute names), and into whichever side
//!   of a join covers the predicate's attributes;
//! * collapse cascaded projections and drop identity projections.
//!
//! Selection pushdown is what makes the §5 indexing strategies applicable:
//! a pushed-down selection over indexed attributes becomes an index probe.

use crate::catalog::Catalog;
use crate::error::Result;
use crate::exec::id_pair_schema;
use crate::plan::{Plan, Predicate, Selection};
use crate::schema::Schema;

/// Infers the output schema of a plan without evaluating it.
pub fn output_schema(plan: &Plan, catalog: &Catalog) -> Result<Schema> {
    match plan {
        Plan::Scan(name) => Ok(catalog.get(name)?.schema().clone()),
        Plan::SpatialScan(name) => {
            catalog.get_spatial(name)?; // existence check
            Ok(crate::spatial_bridge::spatial_schema())
        }
        Plan::Select { input, .. } => output_schema(input, catalog),
        Plan::Project { input, attrs } => output_schema(input, catalog)?.project(attrs),
        Plan::Join { left, right } => {
            output_schema(left, catalog)?.join(&output_schema(right, catalog)?)
        }
        Plan::Union { left, .. } | Plan::Difference { left, .. } => output_schema(left, catalog),
        Plan::Rename { input, from, to } => output_schema(input, catalog)?.rename(from, to),
        Plan::BufferJoin { .. } | Plan::KNearest { .. } | Plan::Distance { .. } => {
            Ok(id_pair_schema())
        }
    }
}

/// Optimizes a plan. The result is semantically equivalent (same output on
/// every catalog where the original is well-formed).
pub fn optimize(plan: &Plan, catalog: &Catalog) -> Result<Plan> {
    let mut current = plan.clone();
    // Local rewrites can enable one another; iterate to a (small) fixpoint.
    for _ in 0..16 {
        let next = rewrite(&current, catalog)?;
        if next == current {
            break;
        }
        current = next;
    }
    Ok(current)
}

fn rewrite(plan: &Plan, catalog: &Catalog) -> Result<Plan> {
    // Bottom-up: rewrite children first.
    let plan = match plan {
        Plan::Select { input, selection } => Plan::Select {
            input: Box::new(rewrite(input, catalog)?),
            selection: selection.clone(),
        },
        Plan::Project { input, attrs } => Plan::Project {
            input: Box::new(rewrite(input, catalog)?),
            attrs: attrs.clone(),
        },
        Plan::Join { left, right } => Plan::Join {
            left: Box::new(rewrite(left, catalog)?),
            right: Box::new(rewrite(right, catalog)?),
        },
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(rewrite(left, catalog)?),
            right: Box::new(rewrite(right, catalog)?),
        },
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(rewrite(left, catalog)?),
            right: Box::new(rewrite(right, catalog)?),
        },
        Plan::Rename { input, from, to } => Plan::Rename {
            input: Box::new(rewrite(input, catalog)?),
            from: from.clone(),
            to: to.clone(),
        },
        leaf => leaf.clone(),
    };

    // Local rules at this node.
    Ok(match plan {
        // ς_a(ς_b(P)) → ς_{a∧b}(P)
        Plan::Select { input, selection } => match *input {
            Plan::Select { input: inner, selection: inner_sel } => {
                let mut merged = inner_sel;
                for p in selection.predicates() {
                    merged = merged.with(p.clone());
                }
                Plan::Select { input: inner, selection: merged }
            }
            // ς(P ∪ Q) → ς(P) ∪ ς(Q)
            Plan::Union { left, right } => Plan::Union {
                left: Box::new(Plan::Select { input: left, selection: selection.clone() }),
                right: Box::new(Plan::Select { input: right, selection }),
            },
            // ς(P − Q) → ς(P) − Q
            Plan::Difference { left, right } => Plan::Difference {
                left: Box::new(Plan::Select { input: left, selection }),
                right,
            },
            // ς(ρ(P)) → ρ(ς'(P)) with attribute names rewritten
            Plan::Rename { input: inner, from, to } => {
                let rewritten = rename_selection(&selection, &to, &from);
                Plan::Rename {
                    input: Box::new(Plan::Select { input: inner, selection: rewritten }),
                    from,
                    to,
                }
            }
            // ς(P ⋈ Q): push predicates covered entirely by one side
            Plan::Join { left, right } => {
                let ls = output_schema(&left, catalog)?;
                let rs = output_schema(&right, catalog)?;
                let mut to_left = Selection::all();
                let mut to_right = Selection::all();
                let mut stay = Selection::all();
                for p in selection.predicates() {
                    let attrs = predicate_attrs(p);
                    let all_left = attrs.iter().all(|a| ls.contains(a));
                    let all_right = attrs.iter().all(|a| rs.contains(a));
                    if all_left {
                        to_left = to_left.with(p.clone());
                    } else if all_right {
                        to_right = to_right.with(p.clone());
                    } else {
                        stay = stay.with(p.clone());
                    }
                }
                let left = maybe_select(*left, to_left);
                let right = maybe_select(*right, to_right);
                maybe_select(Plan::Join { left: Box::new(left), right: Box::new(right) }, stay)
            }
            other => Plan::Select { input: Box::new(other), selection },
        },
        // π_a(π_b(P)) → π_a(P); identity projection removal; projection
        // pushdown through join.
        Plan::Project { input, attrs } => match *input {
            Plan::Project { input: inner, .. } => Plan::Project { input: inner, attrs },
            // π_X(A ⋈ B) → π_X(π_{Xₐ∪J}(A) ⋈ π_{X_b∪J}(B)): dropping
            // attributes *before* the join lets quantifier elimination
            // discard their constraints early. J (the shared attributes)
            // must be kept below so the join condition is preserved.
            Plan::Join { left, right } => {
                let ls = output_schema(&left, catalog)?;
                let rs = output_schema(&right, catalog)?;
                let shared: Vec<&str> = ls
                    .attrs()
                    .iter()
                    .map(|a| a.name.as_str())
                    .filter(|n| rs.contains(n))
                    .collect();
                let keep = |schema: &Schema| -> Vec<String> {
                    schema
                        .attrs()
                        .iter()
                        .map(|a| a.name.clone())
                        .filter(|n| attrs.contains(n) || shared.contains(&n.as_str()))
                        .collect()
                };
                let (need_l, need_r) = (keep(&ls), keep(&rs));
                let narrows =
                    need_l.len() < ls.arity() || need_r.len() < rs.arity();
                let project_if = |plan: Plan, need: Vec<String>, full: usize| {
                    if need.len() < full {
                        Plan::Project { input: Box::new(plan), attrs: need }
                    } else {
                        plan
                    }
                };
                if narrows {
                    Plan::Project {
                        input: Box::new(Plan::Join {
                            left: Box::new(project_if(*left, need_l, ls.arity())),
                            right: Box::new(project_if(*right, need_r, rs.arity())),
                        }),
                        attrs,
                    }
                } else {
                    Plan::Project {
                        input: Box::new(Plan::Join { left, right }),
                        attrs,
                    }
                }
            }
            other => {
                let schema = output_schema(&other, catalog)?;
                let identity = schema.arity() == attrs.len()
                    && schema.attrs().iter().zip(&attrs).all(|(a, n)| &a.name == n);
                if identity {
                    other
                } else {
                    Plan::Project { input: Box::new(other), attrs }
                }
            }
        },
        other => other,
    })
}

fn maybe_select(plan: Plan, selection: Selection) -> Plan {
    if selection.predicates().is_empty() {
        plan
    } else {
        Plan::Select { input: Box::new(plan), selection }
    }
}

fn predicate_attrs(p: &Predicate) -> Vec<&str> {
    match p {
        Predicate::Linear { terms, .. } => terms.iter().map(|(n, _)| n.as_str()).collect(),
        Predicate::Str { attr, .. } => vec![attr.as_str()],
    }
}

/// Rewrites attribute `from` to `to` inside every predicate.
fn rename_selection(sel: &Selection, from: &str, to: &str) -> Selection {
    let mut out = Selection::all();
    for p in sel.predicates() {
        let renamed = match p {
            Predicate::Linear { terms, constant, op } => Predicate::Linear {
                terms: terms
                    .iter()
                    .map(|(n, c)| {
                        (if n == from { to.to_string() } else { n.clone() }, c.clone())
                    })
                    .collect(),
                constant: constant.clone(),
                op: *op,
            },
            Predicate::Str { attr, op, value } => Predicate::Str {
                attr: if attr == from { to.to_string() } else { attr.clone() },
                op: *op,
                value: value.clone(),
            },
        };
        out = out.with(renamed);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::plan::CmpOp;
    use crate::relation::HRelation;
    use crate::schema::AttrDef;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let a = Schema::new(vec![AttrDef::str_rel("id"), AttrDef::rat_con("x")]).unwrap();
        let mut ra = HRelation::new(a);
        ra.insert_with(|b| b.set("id", "p").range("x", 0, 10)).unwrap();
        ra.insert_with(|b| b.set("id", "q").range("x", 20, 30)).unwrap();
        cat.register("A", ra);
        let b = Schema::new(vec![AttrDef::str_rel("id"), AttrDef::rat_con("y")]).unwrap();
        let mut rb = HRelation::new(b);
        rb.insert_with(|u| u.set("id", "p").range("y", 5, 15)).unwrap();
        cat.register("B", rb);
        cat
    }

    #[test]
    fn select_merge_and_join_pushdown() {
        let cat = catalog();
        let plan = Plan::scan("A")
            .join(Plan::scan("B"))
            .select(Selection::all().cmp_int("x", CmpOp::Ge, 1))
            .select(Selection::all().cmp_int("y", CmpOp::Le, 14));
        let opt = optimize(&plan, &cat).unwrap();
        // Both predicates end up below the join.
        let shown = opt.to_string();
        let join_line = shown.lines().position(|l| l.contains("Join")).unwrap();
        let select_lines: Vec<usize> = shown
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains("Select"))
            .map(|(i, _)| i)
            .collect();
        assert!(select_lines.iter().all(|&i| i > join_line), "pushed below join:\n{}", shown);
        // Semantics preserved.
        let a = execute(&plan, &cat).unwrap();
        let b = execute(&opt, &cat).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn select_through_rename() {
        let cat = catalog();
        let plan = Plan::scan("A")
            .rename("x", "z")
            .select(Selection::all().cmp_int("z", CmpOp::Ge, 15));
        let opt = optimize(&plan, &cat).unwrap();
        match &opt {
            Plan::Rename { input, .. } => {
                assert!(matches!(**input, Plan::Select { .. }), "select pushed under rename")
            }
            other => panic!("expected rename at root, got {}", other),
        }
        assert_eq!(execute(&plan, &cat).unwrap(), execute(&opt, &cat).unwrap());
    }

    #[test]
    fn select_through_union_and_difference() {
        let cat = {
            let mut c = catalog();
            let a = c.get("A").unwrap().clone();
            c.register("A2", a);
            c
        };
        let sel = Selection::all().cmp_int("x", CmpOp::Le, 5);
        let plan = Plan::scan("A").union(Plan::scan("A2")).select(sel.clone());
        let opt = optimize(&plan, &cat).unwrap();
        assert!(matches!(opt, Plan::Union { .. }), "select distributed: {}", opt);
        assert_eq!(execute(&plan, &cat).unwrap(), execute(&opt, &cat).unwrap());

        let dplan = Plan::scan("A").minus(Plan::scan("A2")).select(sel);
        let dopt = optimize(&dplan, &cat).unwrap();
        assert!(matches!(dopt, Plan::Difference { .. }));
        assert_eq!(execute(&dplan, &cat).unwrap(), execute(&dopt, &cat).unwrap());
    }

    #[test]
    fn projection_rules() {
        let cat = catalog();
        // Cascaded projections collapse.
        let plan = Plan::scan("A").project(&["id", "x"]).project(&["id"]);
        let opt = optimize(&plan, &cat).unwrap();
        match &opt {
            Plan::Project { input, attrs } => {
                assert_eq!(attrs, &vec!["id".to_string()]);
                assert!(matches!(**input, Plan::Scan(_)));
            }
            other => panic!("expected single project, got {}", other),
        }
        // Identity projection disappears.
        let plan = Plan::scan("A").project(&["id", "x"]);
        let opt = optimize(&plan, &cat).unwrap();
        assert!(matches!(opt, Plan::Scan(_)));
        assert_eq!(
            execute(&Plan::scan("A"), &cat).unwrap(),
            execute(&opt, &cat).unwrap()
        );
    }

    #[test]
    fn optimized_plan_equivalent_on_mixed_query() {
        let cat = catalog();
        let plan = Plan::scan("A")
            .join(Plan::scan("B"))
            .select(
                Selection::all()
                    .cmp_int("x", CmpOp::Ge, 0)
                    .cmp_int("y", CmpOp::Ge, 6)
                    .str_eq("id", "p"),
            )
            .project(&["id"]);
        let opt = optimize(&plan, &cat).unwrap();
        let a = execute(&plan, &cat).unwrap();
        let b = execute(&opt, &cat).unwrap();
        assert_eq!(a, b);
        assert!(a.contains_point(&[Value::str("p")]).unwrap());
    }

    #[test]
    fn projection_pushes_through_join() {
        let cat = catalog();
        // π_{id}(A ⋈ B): both x and y can be dropped below the join (id is
        // the shared attribute and the only requested one).
        let plan = Plan::scan("A").join(Plan::scan("B")).project(&["id"]);
        let opt = optimize(&plan, &cat).unwrap();
        let shown = opt.to_string();
        let join_line = shown.lines().position(|l| l.contains("Join")).unwrap();
        let inner_projects = shown
            .lines()
            .enumerate()
            .filter(|(i, l)| l.contains("Project") && *i > join_line)
            .count();
        assert_eq!(inner_projects, 2, "both sides narrowed below the join:\n{}", shown);
        // Semantics preserved (point sets; syntactic tuples may differ).
        let a = execute(&plan, &cat).unwrap();
        let b = execute(&opt, &cat).unwrap();
        assert_eq!(a.schema(), b.schema());
        for id in ["p", "q", "zz"] {
            assert_eq!(
                a.contains_point(&[Value::str(id)]).unwrap(),
                b.contains_point(&[Value::str(id)]).unwrap(),
                "id {}",
                id
            );
        }
        // Idempotent: re-optimizing changes nothing (no rewrite loop).
        assert_eq!(optimize(&opt, &cat).unwrap(), opt);
    }

    #[test]
    fn cross_side_predicate_stays_above_join() {
        let cat = catalog();
        // x and y live on different sides: x + y ≤ 20 cannot be pushed.
        let sel = Selection::all().with(Predicate::Linear {
            terms: vec![
                ("x".to_string(), cqa_num::Rat::one()),
                ("y".to_string(), cqa_num::Rat::one()),
            ],
            constant: cqa_num::Rat::from_int(-20),
            op: CmpOp::Le,
        });
        let plan = Plan::scan("A").join(Plan::scan("B")).select(sel);
        let opt = optimize(&plan, &cat).unwrap();
        assert!(
            matches!(opt, Plan::Select { ref input, .. } if matches!(**input, Plan::Join { .. })),
            "stays above: {}",
            opt
        );
        assert_eq!(execute(&plan, &cat).unwrap(), execute(&opt, &cat).unwrap());
    }
}
