//! The resource governor: bounded, cancellable, deadline-aware execution.
//!
//! Constraint-algebra evaluation has two failure modes a long-running
//! system must survive: *unbounded growth* (DNF negation is worst-case
//! exponential, Fourier–Motzkin elimination can square its atom count per
//! variable) and *unbounded time* (a hostile or merely unlucky query).
//! The [`Governor`] turns both into typed errors instead of OOM kills or
//! hung shells:
//!
//! * a shared [`CancelToken`] that operator workers poll between chunks —
//!   a raised token aborts the run at the next chunk boundary and all
//!   partial output is discarded, so a cancelled run is indistinguishable
//!   from one that never started;
//! * a wall-clock deadline, armed per run from [`Governor::timeout`]; the
//!   governor raises its own token when the deadline passes, so timeout
//!   enforcement rides the same discard-everything cancellation path;
//! * [`Budgets`] on the intermediate quantities that actually blow up:
//!   Fourier–Motzkin atoms, DNF conjunctions, and per-node output tuples.
//!
//! The governor is cheap enough to consult per tuple: a check is two
//! relaxed atomic operations plus one `Instant::now()` — noise next to a
//! single exact satisfiability test.

use crate::error::{CoreError, Result};
use cqa_num::par::CancelToken;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Ceilings on the quantities that grow during evaluation. `None` means
/// unlimited (the default); a tripped budget surfaces as
/// [`CoreError::BudgetExceeded`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budgets {
    /// Cap on intermediate atom count inside one Fourier–Motzkin
    /// elimination (projection, satisfiability of large residuals).
    pub max_fm_atoms: Option<u64>,
    /// Cap on conjunction count while building a DNF (difference's
    /// negation expansion).
    pub max_dnf_conjunctions: Option<u64>,
    /// Cap on the (syntactic) tuple count any single plan node may emit.
    pub max_output_tuples: Option<u64>,
}

impl Budgets {
    /// Whether every budget is unlimited.
    pub fn is_unlimited(&self) -> bool {
        self.max_fm_atoms.is_none()
            && self.max_dnf_conjunctions.is_none()
            && self.max_output_tuples.is_none()
    }
}

const REASON_NONE: u8 = 0;
const REASON_CANCELLED: u8 = 1;
const REASON_DEADLINE: u8 = 2;

/// State shared by every clone of a [`Governor`] (the shell's options and
/// the worker threads inside one run all see the same trip).
#[derive(Debug, Default)]
struct Shared {
    token: CancelToken,
    /// Deadline in µs since the process [`epoch`]; 0 = unarmed.
    deadline_us: AtomicU64,
    /// Why the token was raised ([`REASON_CANCELLED`] / [`REASON_DEADLINE`]).
    reason: AtomicU8,
    /// Governor checks performed since the last [`Governor::arm`].
    checks: AtomicU64,
    /// Test hook: raise the token at the n-th check; 0 = disabled.
    trip_at: AtomicU64,
}

/// A fixed reference instant so deadlines fit in an atomic integer.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Cancellation token, deadline, and resource budgets for one evaluation
/// context. Cloning shares the cancellation state (so a shell can keep a
/// handle to cancel a running query) while budgets and timeout are plain
/// per-clone configuration.
#[derive(Debug, Clone, Default)]
pub struct Governor {
    /// Resource ceilings checked during evaluation.
    pub budgets: Budgets,
    /// Wall-clock limit, armed at the start of each run ([`Governor::arm`]).
    pub timeout: Option<Duration>,
    shared: Arc<Shared>,
}

impl Governor {
    /// An unlimited governor (no timeout, no budgets, token lowered).
    pub fn new() -> Governor {
        Governor::default()
    }

    /// Builder: sets the wall-clock limit per run.
    pub fn with_timeout(mut self, timeout: Duration) -> Governor {
        self.timeout = Some(timeout);
        self
    }

    /// Builder: sets the resource budgets.
    pub fn with_budgets(mut self, budgets: Budgets) -> Governor {
        self.budgets = budgets;
        self
    }

    /// The token operator workers poll between chunks.
    pub fn token(&self) -> &CancelToken {
        &self.shared.token
    }

    /// Requests cancellation; the run aborts at the next chunk boundary
    /// (or governor check) and returns [`CoreError::Cancelled`].
    pub fn cancel(&self) {
        let _ = self.shared.reason.compare_exchange(
            REASON_NONE,
            REASON_CANCELLED,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        self.shared.token.cancel();
    }

    /// Prepares for a fresh run: lowers the token, clears the trip reason
    /// and check counter, and arms the deadline from [`Governor::timeout`].
    /// The `trip_after` hook survives arming (it is set *before* the run
    /// it targets).
    pub fn arm(&self) {
        self.shared.reason.store(REASON_NONE, Ordering::Release);
        self.shared.checks.store(0, Ordering::Relaxed);
        self.shared.token.reset();
        let deadline = match self.timeout {
            // Clamp to ≥ 1 so an armed deadline is never confused with 0
            // (= unarmed).
            Some(t) => (now_us() + t.as_micros() as u64).max(1),
            None => 0,
        };
        self.shared.deadline_us.store(deadline, Ordering::Relaxed);
    }

    /// Test hook: raise the token at the `n`-th [`Governor::check`] of the
    /// next run (1-based; 0 disables). Lets tests abort deterministically
    /// at an arbitrary point without racing a second thread.
    pub fn trip_after(&self, n: u64) {
        self.shared.trip_at.store(n, Ordering::Relaxed);
    }

    /// Governor checks performed since the run was armed.
    pub fn checks(&self) -> u64 {
        self.shared.checks.load(Ordering::Relaxed)
    }

    /// Per-item check: counts, enforces the deadline and the `trip_after`
    /// hook, and reports a raised token as the matching typed error.
    pub fn check(&self) -> Result<()> {
        let s = &*self.shared;
        let made = s.checks.fetch_add(1, Ordering::Relaxed) + 1;
        let trip_at = s.trip_at.load(Ordering::Relaxed);
        if trip_at != 0 && made >= trip_at {
            self.cancel();
        }
        if !s.token.is_cancelled() {
            let deadline = s.deadline_us.load(Ordering::Relaxed);
            if deadline != 0 && now_us() >= deadline {
                let _ = s.reason.compare_exchange(
                    REASON_NONE,
                    REASON_DEADLINE,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                s.token.cancel();
            }
        }
        if s.token.is_cancelled() {
            Err(self.interrupt_error())
        } else {
            Ok(())
        }
    }

    /// The typed error for a raised token: [`CoreError::DeadlineExceeded`]
    /// when the deadline tripped it, [`CoreError::Cancelled`] otherwise
    /// (including a token raised outside the governor's own machinery).
    pub fn interrupt_error(&self) -> CoreError {
        match self.shared.reason.load(Ordering::Acquire) {
            REASON_DEADLINE => CoreError::DeadlineExceeded,
            _ => CoreError::Cancelled,
        }
    }

    /// Enforces the per-node output-tuple budget on a node that produced
    /// `rows` tuples.
    pub fn guard_output(&self, rows: usize) -> Result<()> {
        if let Some(limit) = self.budgets.max_output_tuples {
            if rows as u64 > limit {
                return Err(CoreError::BudgetExceeded {
                    what: "output tuples",
                    used: rows as u64,
                    limit,
                });
            }
        }
        Ok(())
    }

    /// The Fourier–Motzkin budget view of this governor, recording the
    /// peak intermediate atom count and the elimination-call count into
    /// `stats`.
    pub fn fm_budget<'a>(
        &self,
        stats: &'a crate::par::ExecStats,
    ) -> cqa_constraints::FmBudget<'a> {
        cqa_constraints::FmBudget {
            max_atoms: self.budgets.max_fm_atoms,
            peak: Some(stats.fm_peak_cell()),
            calls: Some(stats.fm_calls_cell()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_governor_never_trips() {
        let g = Governor::new();
        g.arm();
        for _ in 0..1000 {
            g.check().unwrap();
        }
        assert_eq!(g.checks(), 1000);
        g.guard_output(usize::MAX).unwrap();
        assert!(g.budgets.is_unlimited());
    }

    #[test]
    fn cancel_is_sticky_until_rearmed() {
        let g = Governor::new();
        g.arm();
        g.check().unwrap();
        g.cancel();
        assert_eq!(g.check(), Err(CoreError::Cancelled));
        assert_eq!(g.interrupt_error(), CoreError::Cancelled);
        // Arming again clears the trip for the next run.
        g.arm();
        g.check().unwrap();
    }

    #[test]
    fn zero_timeout_trips_as_deadline() {
        let g = Governor::new().with_timeout(Duration::ZERO);
        g.arm();
        assert_eq!(g.check(), Err(CoreError::DeadlineExceeded));
        assert_eq!(g.interrupt_error(), CoreError::DeadlineExceeded);
        // The token is raised too, so chunked workers stop pulling work.
        assert!(g.token().is_cancelled());
    }

    #[test]
    fn generous_timeout_does_not_trip() {
        let g = Governor::new().with_timeout(Duration::from_secs(3600));
        g.arm();
        for _ in 0..100 {
            g.check().unwrap();
        }
    }

    #[test]
    fn trip_after_fires_at_the_exact_check() {
        let g = Governor::new();
        g.trip_after(3);
        g.arm();
        g.check().unwrap();
        g.check().unwrap();
        assert_eq!(g.check(), Err(CoreError::Cancelled));
    }

    #[test]
    fn output_budget_is_exact() {
        let g = Governor::new()
            .with_budgets(Budgets { max_output_tuples: Some(10), ..Budgets::default() });
        g.guard_output(10).unwrap();
        assert_eq!(
            g.guard_output(11),
            Err(CoreError::BudgetExceeded { what: "output tuples", used: 11, limit: 10 })
        );
    }

    #[test]
    fn clones_share_cancellation_state() {
        let g = Governor::new();
        g.arm();
        let handle = g.clone();
        handle.cancel();
        assert!(matches!(g.check(), Err(CoreError::Cancelled)));
    }
}
