//! Constraint → vector conversion, and vector-model evaluation (§6).
//!
//! §6.2 argues that display and GIS interchange need the boundary points of
//! a feature, "computed from the constraints": that computation is
//! [`conjunction_to_geometry`] (vertex enumeration of a convex constraint
//! cell). Example 8 — evaluating projection directly on the vector
//! representation by taking coordinate extrema — is [`project_extent`].

use crate::feature::Geometry;
use crate::geom::{orient, Orientation, Point};
use cqa_constraints::{Assignment, Conjunction, Dnf, Rel, Var};
use cqa_num::Rat;

/// Converts a *bounded* two-variable conjunction to its geometry: the
/// convex cell's vertices, ordered counter-clockwise.
///
/// Returns `None` when the conjunction is unsatisfiable or unbounded in
/// some direction (such cells have no finite vector representation).
pub fn conjunction_to_geometry(conj: &Conjunction, vx: Var, vy: Var) -> Option<Geometry> {
    if !conj.is_satisfiable() {
        return None;
    }
    if conj.bounds(vx).width().is_none() || conj.bounds(vy).width().is_none() {
        return None; // unbounded
    }

    // Boundary lines a·x + b·y + c = 0 from every atom.
    let lines: Vec<(Rat, Rat, Rat)> = conj
        .atoms()
        .map(|atom| {
            let e = atom.expr();
            (e.coeff(vx), e.coeff(vy), e.constant_term().clone())
        })
        .filter(|(a, b, _)| !a.is_zero() || !b.is_zero())
        .collect();

    // Candidate vertices: pairwise line intersections satisfying the
    // (closed) constraints.
    let mut vertices: Vec<Point> = Vec::new();
    for i in 0..lines.len() {
        for j in i + 1..lines.len() {
            if let Some(p) = line_intersection(&lines[i], &lines[j]) {
                if satisfies_closed(conj, vx, vy, &p) && !vertices.contains(&p) {
                    vertices.push(p);
                }
            }
        }
    }

    match vertices.len() {
        0 => None,
        1 => Some(Geometry::Point(vertices.pop().unwrap())),
        2 => Geometry::polyline(vertices).ok(),
        _ => {
            let hull = ccw_order(vertices);
            Geometry::polygon(hull).ok()
        }
    }
}

/// Solves the 2×2 system of two boundary lines; `None` when parallel.
fn line_intersection(l1: &(Rat, Rat, Rat), l2: &(Rat, Rat, Rat)) -> Option<Point> {
    let (a1, b1, c1) = l1;
    let (a2, b2, c2) = l2;
    let det = &(a1 * b2) - &(a2 * b1);
    if det.is_zero() {
        return None;
    }
    // a·x + b·y + c = 0  ⇒  x = (b1·c2 − b2·c1)/det, y = (a2·c1 − a1·c2)/det
    let x = (&(b1 * c2) - &(b2 * c1)) / &det;
    let y = (&(a2 * c1) - &(a1 * c2)) / &det;
    Some(Point::new(x, y))
}

/// Whether `p` satisfies the conjunction with strict atoms relaxed to
/// non-strict (the topological closure — vertices of an open cell lie on
/// its boundary).
fn satisfies_closed(conj: &Conjunction, vx: Var, vy: Var, p: &Point) -> bool {
    let asg = Assignment::from_pairs([(vx, p.x.clone()), (vy, p.y.clone())]);
    conj.atoms().all(|atom| {
        let val = atom.expr().eval(&asg).expect("two-variable atom");
        match atom.rel() {
            Rel::Eq => val.is_zero(),
            Rel::Le | Rel::Lt => !val.is_positive(),
        }
    })
}

/// Orders points of a convex set counter-clockwise around their centroid,
/// using only exact comparisons.
fn ccw_order(mut pts: Vec<Point>) -> Vec<Point> {
    let n = Rat::from_int(pts.len() as i64);
    let cx = pts.iter().fold(Rat::zero(), |a, p| a + &p.x) / &n;
    let cy = pts.iter().fold(Rat::zero(), |a, p| a + &p.y) / &n;
    let center = Point::new(cx, cy);
    // Half-plane split (below/above center), then cross-product comparison.
    let half = |p: &Point| -> u8 {
        if p.y < center.y || (p.y == center.y && p.x > center.x) {
            0 // lower half, starting from positive x axis going cw->...
        } else {
            1
        }
    };
    pts.sort_by(|a, b| {
        half(a).cmp(&half(b)).then_with(|| match orient(&center, a, b) {
            Orientation::Ccw => std::cmp::Ordering::Less,
            Orientation::Cw => std::cmp::Ordering::Greater,
            Orientation::Collinear => {
                center.dist2(a).cmp(&center.dist2(b))
            }
        })
    });
    pts
}

/// Example 8: the projection of a vector geometry onto an axis is just the
/// extrema of the corresponding vertex coordinates.
///
/// `axis` 0 projects onto x, 1 onto y.
pub fn project_extent(geom: &Geometry, axis: usize) -> (Rat, Rat) {
    let coord = |p: &Point| if axis == 0 { p.x.clone() } else { p.y.clone() };
    let mut pts = geom.points().iter();
    let first = coord(pts.next().expect("geometries are nonempty"));
    let mut lo = first.clone();
    let mut hi = first;
    for p in pts {
        let c = coord(p);
        if c < lo {
            lo = c.clone();
        }
        if c > hi {
            hi = c;
        }
    }
    (lo, hi)
}

/// Converts every disjunct of a relation body to a geometry piece,
/// skipping unbounded or empty cells.
pub fn dnf_to_geometries(dnf: &Dnf, vx: Var, vy: Var) -> Vec<Geometry> {
    dnf.conjunctions()
        .iter()
        .filter_map(|c| conjunction_to_geometry(c, vx, vy))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{convex_ring_to_conjunction, geometry_to_dnf, segment_to_conjunction};
    use cqa_constraints::{Atom, LinExpr};

    fn p(x: i64, y: i64) -> Point {
        Point::from_ints(x, y)
    }
    const VX: Var = Var(0);
    const VY: Var = Var(1);

    #[test]
    fn roundtrip_convex_polygon() {
        let ring = vec![p(0, 0), p(4, 0), p(4, 3), p(0, 3)];
        let conj = convex_ring_to_conjunction(&ring, VX, VY);
        let geom = conjunction_to_geometry(&conj, VX, VY).unwrap();
        match geom {
            Geometry::Polygon(out) => {
                assert_eq!(out.len(), 4);
                for v in &ring {
                    assert!(out.contains(v), "missing vertex {}", v);
                }
            }
            other => panic!("expected polygon, got {:?}", other),
        }
    }

    #[test]
    fn roundtrip_triangle_with_rational_vertices() {
        // x ≥ 0, y ≥ 0, x + 2y ≤ 3 has a vertex at (0, 3/2).
        let conj = Conjunction::from_atoms([
            Atom::ge(LinExpr::var(VX), LinExpr::zero()),
            Atom::ge(LinExpr::var(VY), LinExpr::zero()),
            Atom::le(
                LinExpr::from_terms(
                    [(VX, Rat::one()), (VY, Rat::from_int(2))],
                    Rat::zero(),
                ),
                LinExpr::constant_int(3),
            ),
        ]);
        let geom = conjunction_to_geometry(&conj, VX, VY).unwrap();
        match geom {
            Geometry::Polygon(ring) => {
                assert_eq!(ring.len(), 3);
                assert!(ring.contains(&Point::new(Rat::zero(), Rat::from_pair(3, 2))));
            }
            other => panic!("expected triangle, got {:?}", other),
        }
    }

    #[test]
    fn segment_cell_roundtrips_to_polyline() {
        let conj = segment_to_conjunction(&p(0, 0), &p(4, 4), VX, VY);
        let geom = conjunction_to_geometry(&conj, VX, VY).unwrap();
        match geom {
            Geometry::Polyline(pts) => {
                assert_eq!(pts.len(), 2);
                assert!(pts.contains(&p(0, 0)) && pts.contains(&p(4, 4)));
            }
            other => panic!("expected polyline, got {:?}", other),
        }
    }

    #[test]
    fn point_cell_roundtrips() {
        let conj = Conjunction::from_atoms([
            Atom::var_eq_const(VX, Rat::from_int(2)),
            Atom::var_eq_const(VY, Rat::from_int(5)),
        ]);
        assert_eq!(
            conjunction_to_geometry(&conj, VX, VY),
            Some(Geometry::Point(p(2, 5)))
        );
    }

    #[test]
    fn unbounded_and_empty_cells_rejected() {
        let unbounded = Conjunction::from_atoms([Atom::ge(LinExpr::var(VX), LinExpr::zero())]);
        assert_eq!(conjunction_to_geometry(&unbounded, VX, VY), None);
        let empty = Conjunction::from_atoms([
            Atom::ge(LinExpr::var(VX), LinExpr::constant_int(1)),
            Atom::le(LinExpr::var(VX), LinExpr::constant_int(0)),
        ]);
        assert_eq!(conjunction_to_geometry(&empty, VX, VY), None);
    }

    #[test]
    fn example8_projection_extrema() {
        let ring = vec![p(1, 0), p(5, 2), p(3, 6), p(0, 4)];
        let geom = Geometry::polygon(ring).unwrap();
        assert_eq!(project_extent(&geom, 0), (Rat::zero(), Rat::from_int(5)));
        assert_eq!(project_extent(&geom, 1), (Rat::zero(), Rat::from_int(6)));
    }

    #[test]
    fn vector_projection_agrees_with_fm_projection() {
        // Example 8 evaluated both ways: vertex extrema vs quantifier
        // elimination on the constraint representation.
        let ring = vec![p(0, 0), p(6, 0), p(6, 2), p(4, 2), p(4, 4), p(6, 4), p(6, 6), p(0, 6)];
        let geom = Geometry::polygon(ring).unwrap();
        let (lo_v, hi_v) = project_extent(&geom, 0);
        let dnf = geometry_to_dnf(&geom, VX, VY);
        let projected = dnf.eliminate([VY]);
        // The union of per-piece x-intervals must have the same extrema.
        let mut lo_c: Option<Rat> = None;
        let mut hi_c: Option<Rat> = None;
        for conj in projected.conjunctions() {
            let b = conj.bounds(VX);
            let lo = b.lo().expect("bounded").value.clone();
            let hi = b.hi().expect("bounded").value.clone();
            lo_c = Some(lo_c.map_or(lo.clone(), |v: Rat| v.min(lo)));
            hi_c = Some(hi_c.map_or(hi.clone(), |v: Rat| v.max(hi)));
        }
        assert_eq!(lo_c.unwrap(), lo_v);
        assert_eq!(hi_c.unwrap(), hi_v);
    }

    #[test]
    fn dnf_to_geometries_roundtrip() {
        let ring = vec![p(0, 0), p(4, 0), p(4, 2), p(2, 2), p(2, 4), p(0, 4)];
        let geom = Geometry::polygon(ring).unwrap();
        let dnf = geometry_to_dnf(&geom, VX, VY);
        let pieces = dnf_to_geometries(&dnf, VX, VY);
        assert_eq!(pieces.len(), dnf.len());
        // Every piece's vertices are inside the original polygon.
        for piece in &pieces {
            for v in piece.points() {
                assert!(geom.contains_point(v), "vertex {} escaped", v);
            }
        }
    }
}
