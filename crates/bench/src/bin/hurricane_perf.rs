//! Timings for the five Hurricane case-study queries (§3.3): end-to-end
//! parse + optimize + evaluate wall-clock per query, on the Figure 2
//! instance scaled up by replicating the hurricane path into many
//! segments (the paper: "in a real database, the hurricane path … would
//! contain many more segments").

use cqa::core::Catalog;
use cqa::lang::schema_def::parse_cdb;
use cqa::lang::ScriptRunner;
use std::fmt::Write as _;
use std::time::Instant;

const DATA: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/data/hurricane.cdb");

const QUERIES: &[(&str, &str)] = &[
    ("Q1 owners of A", "R0 = select landId = \"A\" from Landownership\nR1 = project R0 on name, t\n"),
    ("Q2 parcels hit", "R0 = join Hurricane and Land\nR1 = project R0 on landId\n"),
    (
        "Q3 hit in [4,9]",
        "R0 = join Landownership and Land\nR1 = select t >= 4, t <= 9 from Hurricane\nR2 = join R0 and R1\nR3 = project R2 on name\n",
    ),
    (
        "Q4 hit, not Ann's",
        "R0 = join Hurricane and Land\nR1 = project R0 on landId\nR2 = select name = \"Ann\" from Landownership\nR3 = project R2 on landId\nR4 = diff R1 and R3\n",
    ),
    ("Q5 when B was hit", "R0 = select landId = \"B\" from Land\nR1 = join Hurricane and R0\nR2 = project R1 on t\n"),
];

fn scaled_catalog(segments: usize) -> Catalog {
    let mut source = std::fs::read_to_string(DATA).expect("hurricane.cdb present");
    // Densify the hurricane path: split [0, 16] into `segments` pieces.
    let mut extra = String::new();
    for i in 0..segments {
        let t0 = 16.0 * i as f64 / segments as f64;
        let t1 = 16.0 * (i + 1) as f64 / segments as f64;
        writeln!(extra, "tuple Hurricane {{ t >= {:.4}; t <= {:.4}; x = t; y = 2 }}", t0, t1).unwrap();
    }
    source.push_str(&extra);
    let mut catalog = Catalog::new();
    parse_cdb(&source).expect("valid file").load_into(&mut catalog);
    catalog
}

fn main() {
    for &segments in &[8usize, 32, 128] {
        println!("# hurricane path with {} extra segments", segments);
        for (name, script) in QUERIES {
            let catalog = scaled_catalog(segments);
            let mut runner = ScriptRunner::new(catalog);
            let start = Instant::now();
            let out = runner.run(script).expect("query runs");
            let elapsed = start.elapsed();
            println!("  {:<18} {:>8.2?}  ({} output tuple(s))", name, elapsed, out.len());
        }
    }
}
