//! Optimizer soundness, property-style: for random plans over random
//! heterogeneous relations, the optimized plan denotes the same point set
//! as the original. (Syntactic tuples may differ — e.g. projection
//! pushdown changes intermediate shapes — so equivalence is checked
//! semantically, on a grid of sample points.)


// Property suite: compiled only with `--features proptest` so the
// offline tier-1 run stays lean; see third_party/README.md.
#![cfg(feature = "proptest")]

use cqa::core::plan::{CmpOp, Plan, Selection};
use cqa::core::{exec, optimizer, AttrDef, Catalog, HRelation, Schema, Tuple, Value};
use cqa::num::Rat;
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![
        AttrDef::str_rel("id"),
        AttrDef::rat_con("x"),
        AttrDef::rat_con("y"),
    ])
    .unwrap()
}

fn base_relation(seed: &[(u8, i8, i8, i8, i8)]) -> HRelation {
    let mut rel = HRelation::new(schema());
    for &(id, xlo, xw, ylo, yw) in seed {
        let t = Tuple::builder(rel.schema())
            .set("id", Value::str(format!("i{}", id % 3)))
            .range("x", xlo as i64, xlo as i64 + xw.unsigned_abs() as i64)
            .range("y", ylo as i64, ylo as i64 + yw.unsigned_abs() as i64)
            .build()
            .unwrap();
        rel.insert(t);
    }
    rel
}

/// A recipe for a random plan over base relations `A` and `B`.
#[derive(Debug, Clone)]
enum Step {
    SelectX(i8, u8),
    SelectY(i8, u8),
    SelectId(u8),
    ProjectIdX,
    RenameYtoZ,
    JoinB,
    UnionSelf,
    DiffB,
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (-4i8..5, 0u8..6).prop_map(|(v, op)| Step::SelectX(v, op)),
            (-4i8..5, 0u8..6).prop_map(|(v, op)| Step::SelectY(v, op)),
            (0u8..4).prop_map(Step::SelectId),
            Just(Step::ProjectIdX),
            Just(Step::RenameYtoZ),
            Just(Step::JoinB),
            Just(Step::UnionSelf),
            Just(Step::DiffB),
        ],
        0..5,
    )
}

fn cmp_of(op: u8) -> CmpOp {
    [CmpOp::Eq, CmpOp::Le, CmpOp::Lt, CmpOp::Ge, CmpOp::Gt, CmpOp::Eq][op as usize % 6]
}

/// Builds a plan from steps, tracking which attributes survive so every
/// step stays well-formed.
fn build_plan(steps: &[Step]) -> Plan {
    let mut plan = Plan::scan("A");
    let mut has_y = true;
    let mut has_x = true;
    let mut same_schema_as_base = true; // for union/diff compatibility
    for step in steps {
        match step {
            Step::SelectX(v, op) if has_x => {
                plan = plan.select(Selection::all().cmp_int("x", cmp_of(*op), *v as i64));
            }
            Step::SelectY(v, op) if has_y => {
                plan = plan.select(Selection::all().cmp_int("y", cmp_of(*op), *v as i64));
            }
            Step::SelectId(n) => {
                plan = plan.select(Selection::all().str_eq("id", format!("i{}", n % 3)));
            }
            Step::ProjectIdX if has_x => {
                plan = plan.project(&["id", "x"]);
                has_y = false;
                same_schema_as_base = false;
            }
            Step::RenameYtoZ if has_y => {
                plan = plan.rename("y", "z");
                has_y = false;
                same_schema_as_base = false;
            }
            Step::JoinB => {
                plan = plan.join(Plan::scan("B"));
                // B contributes x and y again (natural join extends the
                // schema with any missing attributes).
                has_x = true;
                has_y = true;
                same_schema_as_base = false; // order may differ; be safe
            }
            Step::UnionSelf => {
                plan = plan.clone().union(plan);
            }
            Step::DiffB if same_schema_as_base => {
                plan = plan.minus(Plan::scan("B"));
            }
            _ => {}
        }
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn optimized_plans_are_semantically_equivalent(
        a in prop::collection::vec((any::<u8>(), -3i8..3, 0i8..4, -3i8..3, 0i8..4), 0..4),
        b in prop::collection::vec((any::<u8>(), -3i8..3, 0i8..4, -3i8..3, 0i8..4), 0..4),
        steps in arb_steps(),
    ) {
        let mut catalog = Catalog::new();
        catalog.register("A", base_relation(&a));
        catalog.register("B", base_relation(&b));
        let plan = build_plan(&steps);
        let original = match exec::execute(&plan, &catalog) {
            Ok(rel) => rel,
            Err(_) => return Ok(()), // ill-typed composition; nothing to compare
        };
        let optimized_plan = optimizer::optimize(&plan, &catalog).unwrap();
        let optimized = exec::execute(&optimized_plan, &catalog).unwrap();
        prop_assert_eq!(original.schema(), optimized.schema(), "plan:\n{}", plan);

        // Semantic comparison on a sample grid over the output schema.
        let arity = original.schema().arity();
        let mut point = vec![Value::int(0); arity];
        for id in 0..3u8 {
            for v1 in [-3i64, -1, 0, 1, 2, 4] {
                for v2 in [-3i64, 0, 2, 5] {
                    for (i, attr) in original.schema().attrs().iter().enumerate() {
                        point[i] = match attr.ty {
                            cqa::core::AttrType::Str => Value::str(format!("i{}", id)),
                            cqa::core::AttrType::Rat => {
                                if i % 2 == 0 {
                                    Value::rat(Rat::from_pair(2 * v1 + 1, 2))
                                } else {
                                    Value::int(v2)
                                }
                            }
                        };
                    }
                    prop_assert_eq!(
                        original.contains_point(&point).unwrap(),
                        optimized.contains_point(&point).unwrap(),
                        "point {:?}\nplan:\n{}\noptimized:\n{}",
                        point, plan, optimized_plan
                    );
                }
            }
        }
    }
}
