//! Constraint tuples: conjunctions of atomic constraints.
//!
//! A [`Conjunction`] is the syntactic object of Definition 1 of the paper —
//! "a constraint k-tuple is a set of constraints on k variables" — whose
//! semantics is the set of assignments satisfying all of its atoms. All the
//! reasoning the Constraint Query Algebra needs (satisfiability, projection,
//! entailment, bounds) happens here, on the syntactic layer, in accordance
//! with the closure principle of §2.5.

use crate::assignment::Assignment;
use crate::atom::{Atom, Rel};
use crate::fourier_motzkin::{self, Eliminated, FmBudget, FmBudgetExceeded};
use crate::interval::{Bound, Interval};
use crate::linexpr::LinExpr;
use crate::var::Var;
use cqa_num::Rat;
use std::collections::BTreeSet;
use std::fmt;

/// A conjunction of atomic linear constraints (a constraint tuple body).
///
/// Trivially true atoms are never stored; a detected ground contradiction
/// collapses the conjunction to the single [`Atom::falsum`] atom. Beyond
/// that, unsatisfiability is *semantic* and detected by [`Self::is_satisfiable`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Conjunction {
    atoms: BTreeSet<Atom>,
}

impl Conjunction {
    /// The empty conjunction — `true`, satisfied by every assignment.
    pub fn tru() -> Conjunction {
        Conjunction::default()
    }

    /// The canonical contradiction — `false`.
    pub fn falsum() -> Conjunction {
        let mut atoms = BTreeSet::new();
        atoms.insert(Atom::falsum());
        Conjunction { atoms }
    }

    /// Builds a conjunction from atoms.
    pub fn from_atoms(atoms: impl IntoIterator<Item = Atom>) -> Conjunction {
        let mut c = Conjunction::tru();
        for a in atoms {
            c.add(a);
        }
        c
    }

    /// Adds one atom, folding ground truths.
    pub fn add(&mut self, atom: Atom) {
        if self.is_trivially_false() {
            return;
        }
        match atom.ground_truth() {
            Some(true) => {}
            Some(false) => {
                self.atoms.clear();
                self.atoms.insert(Atom::falsum());
            }
            None => {
                self.atoms.insert(atom);
            }
        }
    }

    /// Conjunction of two conjunctions.
    pub fn and(&self, other: &Conjunction) -> Conjunction {
        let mut out = self.clone();
        for a in &other.atoms {
            out.add(a.clone());
        }
        out
    }

    /// Iterates over the stored atoms in canonical order.
    pub fn atoms(&self) -> impl Iterator<Item = &Atom> + '_ {
        self.atoms.iter()
    }

    /// Number of stored atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the conjunction is the trivial `true`.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Whether the conjunction is the stored contradiction.
    pub fn is_trivially_false(&self) -> bool {
        self.atoms.len() == 1 && self.atoms.iter().next().unwrap().is_trivially_false()
    }

    /// The set of variables mentioned by any atom.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.atoms.iter().flat_map(|a| a.vars()).collect()
    }

    /// Whether any atom mentions `v`. Per the broad semantics of
    /// Definition 1, a variable *not* mentioned ranges over the whole
    /// domain.
    pub fn mentions(&self, v: Var) -> bool {
        self.atoms.iter().any(|a| a.mentions(v))
    }

    /// Evaluates the conjunction at a point. `None` if the assignment does
    /// not bind every mentioned variable.
    pub fn eval(&self, a: &Assignment) -> Option<bool> {
        let mut result = true;
        for atom in &self.atoms {
            match atom.eval(a) {
                Some(true) => {}
                Some(false) => result = false, // keep scanning: totality check
                None => return None,
            }
        }
        Some(result)
    }

    /// Decides satisfiability over the rationals (exact).
    pub fn is_satisfiable(&self) -> bool {
        match fourier_motzkin::eliminate(&self.atoms, &self.vars()) {
            Eliminated::Atoms(rest) => {
                debug_assert!(rest.is_empty(), "eliminating all vars leaves ground atoms only");
                true
            }
            Eliminated::Unsat => false,
        }
    }

    /// [`Self::is_satisfiable`] under an elimination budget: the decision
    /// still runs full variable elimination, but a blow-up surfaces as a
    /// typed error instead of unbounded allocation.
    pub fn is_satisfiable_budgeted(
        &self,
        budget: FmBudget<'_>,
    ) -> Result<bool, FmBudgetExceeded> {
        match fourier_motzkin::eliminate_budgeted(&self.atoms, &self.vars(), budget)? {
            Eliminated::Atoms(rest) => {
                debug_assert!(rest.is_empty(), "eliminating all vars leaves ground atoms only");
                Ok(true)
            }
            Eliminated::Unsat => Ok(false),
        }
    }

    /// Projects out `vars`: returns a conjunction equivalent to
    /// `∃ vars . self` over the remaining variables.
    pub fn eliminate(&self, vars: impl IntoIterator<Item = Var>) -> Conjunction {
        let vars: BTreeSet<Var> = vars.into_iter().collect();
        match fourier_motzkin::eliminate(&self.atoms, &vars) {
            Eliminated::Atoms(atoms) => Conjunction { atoms },
            Eliminated::Unsat => Conjunction::falsum(),
        }
    }

    /// [`Self::eliminate`] under an elimination budget.
    pub fn eliminate_budgeted(
        &self,
        vars: impl IntoIterator<Item = Var>,
        budget: FmBudget<'_>,
    ) -> Result<Conjunction, FmBudgetExceeded> {
        let vars: BTreeSet<Var> = vars.into_iter().collect();
        Ok(match fourier_motzkin::eliminate_budgeted(&self.atoms, &vars, budget)? {
            Eliminated::Atoms(atoms) => Conjunction { atoms },
            Eliminated::Unsat => Conjunction::falsum(),
        })
    }

    /// Keeps only atoms over the given variables by eliminating all others.
    pub fn project_onto(&self, keep: &BTreeSet<Var>) -> Conjunction {
        let drop: Vec<Var> = self.vars().into_iter().filter(|v| !keep.contains(v)).collect();
        self.eliminate(drop)
    }

    /// Substitutes `repl` for `v` in every atom.
    pub fn substitute(&self, v: Var, repl: &LinExpr) -> Conjunction {
        Conjunction::from_atoms(self.atoms.iter().map(|a| a.substitute(v, repl)))
    }

    /// Renames variable `from` to the fresh variable `to`.
    pub fn rename(&self, from: Var, to: Var) -> Conjunction {
        Conjunction::from_atoms(self.atoms.iter().map(|a| {
            if a.mentions(from) {
                a.rename(from, to)
            } else {
                a.clone()
            }
        }))
    }

    /// Whether this conjunction entails the atom (`self ⊨ atom`).
    pub fn implies_atom(&self, atom: &Atom) -> bool {
        // self ⊨ a  iff  self ∧ ¬a is unsatisfiable, for every disjunct of ¬a.
        atom.negate().into_iter().all(|neg| {
            let mut c = self.clone();
            c.add(neg);
            !c.is_satisfiable()
        })
    }

    /// Whether this conjunction entails every atom of `other`
    /// (semantic containment of the denoted point sets, assuming `self`
    /// is satisfiable).
    pub fn implies(&self, other: &Conjunction) -> bool {
        other.atoms.iter().all(|a| self.implies_atom(a))
    }

    /// Semantic equivalence of two conjunctions.
    pub fn equivalent(&self, other: &Conjunction) -> bool {
        match (self.is_satisfiable(), other.is_satisfiable()) {
            (false, false) => true,
            (true, true) => self.implies(other) && other.implies(self),
            _ => false,
        }
    }

    /// Removes redundant atoms: an atom entailed by the others is dropped.
    /// An unsatisfiable conjunction collapses to [`Conjunction::falsum`].
    pub fn simplify(&self) -> Conjunction {
        if !self.is_satisfiable() {
            return Conjunction::falsum();
        }
        let mut kept: Vec<Atom> = self.atoms.iter().cloned().collect();
        let mut i = 0;
        while i < kept.len() {
            let candidate = kept[i].clone();
            let rest = Conjunction::from_atoms(
                kept.iter().enumerate().filter(|(j, _)| *j != i).map(|(_, a)| a.clone()),
            );
            if rest.implies_atom(&candidate) {
                kept.remove(i);
            } else {
                i += 1;
            }
        }
        Conjunction { atoms: kept.into_iter().collect() }
    }

    /// The exact interval of values `v` can take under this conjunction
    /// (the projection of the denoted set onto `v`).
    pub fn bounds(&self, v: Var) -> Interval {
        let others: Vec<Var> = self.vars().into_iter().filter(|&u| u != v).collect();
        let projected = self.eliminate(others);
        if projected.is_trivially_false() {
            return Interval::empty();
        }
        let mut interval = Interval::full();
        for a in &projected.atoms {
            let c = a.expr().coeff(v);
            if c.is_zero() {
                continue; // ground leftovers are true by construction
            }
            // c·v + k rel 0  ⇔  v rel -k/c (c>0) or v inv-rel -k/c (c<0)
            let k = a.expr().constant_term();
            let bound_val = -(k / &c);
            let strict = a.rel() == Rel::Lt;
            let this = match (a.rel(), c.is_positive()) {
                (Rel::Eq, _) => Interval::point(bound_val),
                (_, true) => Interval::new(None, Some(Bound { value: bound_val, strict })),
                (_, false) => Interval::new(Some(Bound { value: bound_val, strict }), None),
            };
            interval = interval.intersect(&this);
        }
        interval
    }

    /// The bounding box of the conjunction over the given variables, as one
    /// interval per variable (in input order). Unmentioned variables get
    /// the full line, per the broad semantics.
    pub fn bounding_box(&self, vars: &[Var]) -> Vec<Interval> {
        vars.iter().map(|&v| self.bounds(v)).collect()
    }

    /// Picks an arbitrary satisfying assignment over the given variables,
    /// if one exists. Useful for tests and counterexamples.
    pub fn sample_point(&self, vars: &[Var]) -> Option<Assignment> {
        let mut current = self.clone();
        let mut asg = Assignment::new();
        for (i, &v) in vars.iter().enumerate() {
            let interval = current.bounds(v);
            if interval.is_empty() {
                return None;
            }
            let value = pick_in_interval(&interval);
            asg.set(v, value.clone());
            current = current.substitute(v, &LinExpr::constant(value));
            if current.is_trivially_false() {
                return None;
            }
            let _ = i;
        }
        if current.is_satisfiable() {
            Some(asg)
        } else {
            None
        }
    }

    /// Partitions the mentioned variables into *independence components*:
    /// the connected components of the co-occurrence graph (two variables
    /// are adjacent when some atom mentions both).
    ///
    /// Variables in different components are **independent** in the sense
    /// of Chomicki–Goldin–Kuper–Toman (the paper's \[5\]): the conjunction
    /// factorizes as a product of sub-conjunctions over the components, so
    /// the denoted point set is a cartesian product. §3.2 notes the C/R
    /// flag interacts with this — a relational attribute never occurs in
    /// constraints, so it is automatically independent of everything.
    ///
    /// This is the syntactic criterion: it is sound (syntactically
    /// independent ⇒ semantically independent) and becomes complete after
    /// [`Self::simplify`] removes redundant linking atoms.
    pub fn independence_components(&self) -> Vec<BTreeSet<Var>> {
        let vars: Vec<Var> = self.vars().into_iter().collect();
        let index: std::collections::BTreeMap<Var, usize> =
            vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        // Union-find over the mentioned variables.
        let mut parent: Vec<usize> = (0..vars.len()).collect();
        fn find(parent: &mut [usize], i: usize) -> usize {
            let mut root = i;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = i;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for atom in &self.atoms {
            let mut it = atom.vars();
            if let Some(first) = it.next() {
                let fi = index[&first];
                for v in it {
                    let (a, b) = (find(&mut parent, fi), find(&mut parent, index[&v]));
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
        }
        let mut components: std::collections::BTreeMap<usize, BTreeSet<Var>> =
            std::collections::BTreeMap::new();
        for (i, &v) in vars.iter().enumerate() {
            components.entry(find(&mut parent, i)).or_default().insert(v);
        }
        components.into_values().collect()
    }

    /// Whether `u` and `v` are (syntactically) independent — in different
    /// independence components, or not mentioned at all.
    pub fn independent(&self, u: Var, v: Var) -> bool {
        if u == v {
            return false;
        }
        !self
            .independence_components()
            .iter()
            .any(|c| c.contains(&u) && c.contains(&v))
    }

    /// Factorizes the conjunction along its independence components:
    /// returns one sub-conjunction per component. (Ground atoms cannot
    /// occur here: [`Self::add`] folds trivial truths away and collapses
    /// contradictions to the variable-free falsum, which has no
    /// components and returns unsplit.) The conjunction of the factors
    /// is the original formula.
    pub fn factor(&self) -> Vec<Conjunction> {
        let components = self.independence_components();
        if components.len() <= 1 {
            return vec![self.clone()];
        }
        components
            .iter()
            .map(|comp| {
                Conjunction::from_atoms(
                    self.atoms
                        .iter()
                        .filter(|a| a.vars().next().map(|v| comp.contains(&v)).unwrap_or(false))
                        .cloned(),
                )
            })
            .collect()
    }

    /// Renders with a custom variable printer.
    pub fn display_with<'a>(&'a self, name: &'a dyn Fn(Var) -> String) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Conjunction, &'a dyn Fn(Var) -> String);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.0.atoms.is_empty() {
                    return f.write_str("true");
                }
                for (i, a) in self.0.atoms.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" and ")?;
                    }
                    write!(f, "{}", a.display_with(self.1))?;
                }
                Ok(())
            }
        }
        D(self, name)
    }
}

/// Some rational inside a nonempty interval.
fn pick_in_interval(i: &Interval) -> Rat {
    debug_assert!(!i.is_empty());
    match (i.lo(), i.hi()) {
        (None, None) => Rat::zero(),
        (Some(l), None) => &l.value + &Rat::one(),
        (None, Some(h)) => &h.value - &Rat::one(),
        (Some(l), Some(h)) => {
            if !l.strict && !h.strict && l.value == h.value {
                l.value.clone()
            } else {
                (&l.value + &h.value) / Rat::from_int(2)
            }
        }
    }
}

impl fmt::Display for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |v: Var| v.to_string();
        let d = self.display_with(&name);
        write!(f, "{}", d)
    }
}

impl fmt::Debug for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Conjunction({})", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Var {
        Var(0)
    }
    fn y() -> Var {
        Var(1)
    }
    fn ri(v: i64) -> Rat {
        Rat::from_int(v)
    }
    fn le(v: Var, c: i64) -> Atom {
        Atom::le(LinExpr::var(v), LinExpr::constant_int(c))
    }
    fn ge(v: Var, c: i64) -> Atom {
        Atom::ge(LinExpr::var(v), LinExpr::constant_int(c))
    }

    #[test]
    fn trivial_truth_and_falsity() {
        let mut c = Conjunction::tru();
        assert!(c.is_empty());
        assert!(c.is_satisfiable());
        c.add(Atom::le(LinExpr::constant_int(0), LinExpr::constant_int(1)));
        assert!(c.is_empty()); // trivially true atom dropped
        c.add(Atom::le(LinExpr::constant_int(1), LinExpr::constant_int(0)));
        assert!(c.is_trivially_false());
        assert!(!c.is_satisfiable());
        // adding more after falsum keeps falsum
        c.add(le(x(), 5));
        assert!(c.is_trivially_false());
    }

    #[test]
    fn satisfiability() {
        let c = Conjunction::from_atoms([ge(x(), 0), le(x(), 10), ge(y(), 5), le(y(), 5)]);
        assert!(c.is_satisfiable());
        let d = c.and(&Conjunction::from_atoms([Atom::gt(
            LinExpr::var(y()),
            LinExpr::constant_int(5),
        )]));
        assert!(!d.is_satisfiable());
    }

    #[test]
    fn eval_total_and_partial() {
        let c = Conjunction::from_atoms([ge(x(), 0), le(x(), 10)]);
        let inside = Assignment::from_pairs([(x(), ri(5))]);
        let outside = Assignment::from_pairs([(x(), ri(11))]);
        assert_eq!(c.eval(&inside), Some(true));
        assert_eq!(c.eval(&outside), Some(false));
        assert_eq!(c.eval(&Assignment::new()), None);
    }

    #[test]
    fn projection_is_shadow() {
        // The triangle 0 ≤ x, 0 ≤ y, x + y ≤ 2 projected on x is [0, 2].
        let c = Conjunction::from_atoms([
            ge(x(), 0),
            ge(y(), 0),
            Atom::le(
                LinExpr::from_terms([(x(), ri(1)), (y(), ri(1))], Rat::zero()),
                LinExpr::constant_int(2),
            ),
        ]);
        let p = c.eliminate([y()]);
        assert_eq!(p.bounds(x()), Interval::closed(ri(0), ri(2)));
        assert!(!p.mentions(y()));
    }

    #[test]
    fn bounds_and_bounding_box() {
        let c = Conjunction::from_atoms([
            ge(x(), 1),
            Atom::lt(LinExpr::var(x()), LinExpr::constant_int(4)),
            Atom::var_eq_const(y(), ri(7)),
        ]);
        let bx = c.bounds(x());
        assert_eq!(
            bx,
            Interval::new(Some(Bound::closed(ri(1))), Some(Bound::open(ri(4))))
        );
        assert_eq!(c.bounds(y()), Interval::point(ri(7)));
        // Unconstrained variable: full line (broad semantics).
        assert!(c.bounds(Var(9)).is_full());
        let bb = c.bounding_box(&[x(), y()]);
        assert_eq!(bb.len(), 2);
        assert!(bb[1].is_point());
    }

    #[test]
    fn entailment() {
        let c = Conjunction::from_atoms([ge(x(), 2), le(x(), 3)]);
        assert!(c.implies_atom(&ge(x(), 0)));
        assert!(!c.implies_atom(&ge(x(), 3)));
        assert!(c.implies_atom(&le(x(), 3)));
        let weaker = Conjunction::from_atoms([ge(x(), 0), le(x(), 5)]);
        assert!(c.implies(&weaker));
        assert!(!weaker.implies(&c));
        // Equality entailment needs both branches of the negation.
        let point = Conjunction::from_atoms([ge(x(), 2), le(x(), 2)]);
        assert!(point.implies_atom(&Atom::var_eq_const(x(), ri(2))));
    }

    #[test]
    fn equivalence() {
        let a = Conjunction::from_atoms([ge(x(), 2), le(x(), 2)]);
        let b = Conjunction::from_atoms([Atom::var_eq_const(x(), ri(2))]);
        assert!(a.equivalent(&b));
        let f1 = Conjunction::from_atoms([Atom::gt(LinExpr::var(x()), LinExpr::var(x()))]);
        assert!(f1.equivalent(&Conjunction::falsum()));
    }

    #[test]
    fn simplify_drops_redundant() {
        let c = Conjunction::from_atoms([ge(x(), 2), ge(x(), 0), le(x(), 9), le(x(), 9)]);
        let s = c.simplify();
        assert_eq!(s.len(), 2);
        assert!(s.equivalent(&c));
        let unsat = Conjunction::from_atoms([ge(x(), 2), le(x(), 1)]);
        assert!(unsat.simplify().is_trivially_false());
    }

    #[test]
    fn substitution_and_rename() {
        let c = Conjunction::from_atoms([Atom::le(LinExpr::var(x()), LinExpr::var(y()))]);
        let renamed = c.rename(x(), Var(5));
        assert!(!renamed.mentions(x()));
        assert!(renamed.mentions(Var(5)));
        let fixed = c.substitute(y(), &LinExpr::constant_int(3));
        assert_eq!(fixed.bounds(x()), Interval::new(None, Some(Bound::closed(ri(3)))));
    }

    #[test]
    fn sample_point_inside() {
        let c = Conjunction::from_atoms([
            ge(x(), 0),
            ge(y(), 0),
            Atom::le(
                LinExpr::from_terms([(x(), ri(1)), (y(), ri(1))], Rat::zero()),
                LinExpr::constant_int(2),
            ),
        ]);
        let p = c.sample_point(&[x(), y()]).unwrap();
        assert_eq!(c.eval(&p), Some(true));
        let unsat = Conjunction::from_atoms([ge(x(), 2), le(x(), 1)]);
        assert!(unsat.sample_point(&[x()]).is_none());
    }

    #[test]
    fn display() {
        let c = Conjunction::from_atoms([ge(x(), 1), le(y(), 2)]);
        let s = c.to_string();
        assert!(s.contains("and"), "{}", s);
        assert_eq!(Conjunction::tru().to_string(), "true");
    }

    #[test]
    fn independence_components() {
        let z = Var(2);
        let w = Var(3);
        // x–y linked, z–w linked, the pairs independent.
        let c = Conjunction::from_atoms([
            Atom::le(LinExpr::var(x()), LinExpr::var(y())),
            ge(x(), 0),
            Atom::le(LinExpr::var(z), LinExpr::var(w)),
        ]);
        let comps = c.independence_components();
        assert_eq!(comps.len(), 2);
        assert!(c.independent(x(), z));
        assert!(c.independent(y(), w));
        assert!(!c.independent(x(), y()));
        assert!(!c.independent(x(), x()));
        // Unmentioned variables are independent of everything.
        assert!(c.independent(x(), Var(9)));
    }

    #[test]
    fn independence_is_transitive_through_atoms() {
        let z = Var(2);
        // x–y and y–z each linked: one component {x, y, z}.
        let c = Conjunction::from_atoms([
            Atom::le(LinExpr::var(x()), LinExpr::var(y())),
            Atom::le(LinExpr::var(y()), LinExpr::var(z)),
        ]);
        assert_eq!(c.independence_components().len(), 1);
        assert!(!c.independent(x(), z));
    }

    #[test]
    fn factorization_preserves_semantics() {
        let z = Var(2);
        let c = Conjunction::from_atoms([
            ge(x(), 0),
            le(x(), 1),
            Atom::le(LinExpr::var(y()), LinExpr::var(z)),
            ge(y(), 5),
        ]);
        let factors = c.factor();
        assert_eq!(factors.len(), 2);
        let product = factors.iter().fold(Conjunction::tru(), |acc, f| acc.and(f));
        assert_eq!(product, c);
        // Each factor mentions only its own component's variables.
        for f in &factors {
            let vars = f.vars();
            assert!(vars.contains(&x()) != vars.contains(&y()));
        }
        // Single-component conjunctions do not split.
        let linked = Conjunction::from_atoms([Atom::le(LinExpr::var(x()), LinExpr::var(y()))]);
        assert_eq!(linked.factor().len(), 1);
    }
}
