//! End-to-end contract of `EXPLAIN ANALYZE` and the metrics registry.
//!
//! The traced evaluator is the plain evaluator with a sink attached, so
//! traced and untraced runs must produce identical relations *and*
//! identical physical-plan choices (index-assisted selection included) at
//! every thread count; the trace JSON must round-trip through the obs
//! JSON parser with the documented schema; and run counters must land in
//! the global registry.

use cqa::core::plan::{CmpOp, Plan, Selection};
use cqa::core::{exec, AttrDef, Catalog, ExecOptions, ExecStats, HRelation, Schema};
use cqa::lang::schema_def::parse_cdb;
use cqa::lang::ScriptRunner;
use cqa::num::prng::Pcg32;
use cqa::obs::json::Json;

fn seeded_catalog(with_index: bool) -> Catalog {
    let schema = Schema::new(vec![
        AttrDef::str_rel("id"),
        AttrDef::rat_con("x"),
        AttrDef::rat_con("y"),
    ])
    .unwrap();
    let mut rel = HRelation::new(schema);
    let mut rng = Pcg32::seed_from_u64(99);
    for i in 0..300 {
        let (lx, ly) = (rng.gen_range_i64(0, 400), rng.gen_range_i64(0, 400));
        rel.insert_with(|b| {
            b.set("id", format!("t{}", i).as_str())
                .range("x", lx, lx + rng.gen_range_i64(1, 20))
                .range("y", ly, ly + rng.gen_range_i64(1, 20))
        })
        .unwrap();
    }
    let mut cat = Catalog::new();
    cat.register("R", rel);
    if with_index {
        cat.build_index("R", &["x", "y"]).unwrap();
    }
    cat
}

fn bounded_selection() -> Selection {
    Selection::all()
        .cmp_int("x", CmpOp::Ge, 100)
        .cmp_int("x", CmpOp::Le, 180)
        .cmp_int("y", CmpOp::Ge, 50)
        .cmp_int("y", CmpOp::Le, 250)
}

#[test]
fn traced_equals_untraced_with_identical_plan_choice() {
    let cat = seeded_catalog(true);
    let plan = Plan::scan("R").select(bounded_selection()).project(&["id"]);
    for threads in [1usize, 2, 8] {
        let opts = ExecOptions::with_threads(threads);
        let untraced_stats = ExecStats::new();
        let plain = exec::execute_opts(&plan, &cat, &opts, &untraced_stats).unwrap();
        let traced_stats = ExecStats::new();
        let (traced, trace) =
            exec::execute_traced_opts(&plan, &cat, &opts, &traced_stats).unwrap();
        assert_eq!(plain, traced, "threads={}", threads);
        // Same physical choice: both probed the index, with the same cost.
        assert!(untraced_stats.index_probes() > 0, "untraced used the index");
        assert_eq!(untraced_stats.index_probes(), traced_stats.index_probes());
        assert_eq!(untraced_stats.index_accesses(), traced_stats.index_accesses());
        assert_eq!(untraced_stats.checked(), traced_stats.checked());
        assert_eq!(untraced_stats.fm_calls(), traced_stats.fm_calls());
        let select = &trace.children[0];
        assert!(select.label.contains("index [x, y]"), "trace shows the choice: {}", select.label);
        assert!(select.index_accesses > 0);
    }
}

#[test]
fn trace_json_round_trips_with_schema() {
    let cat = seeded_catalog(true);
    let plan = Plan::scan("R").select(bounded_selection()).project(&["id"]);
    let (_, trace) =
        exec::execute_traced_opts(&plan, &cat, &ExecOptions::default(), &ExecStats::new())
            .unwrap();
    let rendered = trace.to_json().render();
    let parsed = cqa::obs::json::parse(&rendered).expect("trace JSON parses");

    // Schema check, recursively: every node carries label, rows,
    // elapsed_ns, the full counter object, and a children array.
    fn check(node: &Json) {
        assert!(node.get("label").and_then(Json::as_str).is_some());
        assert!(node.get("rows").and_then(Json::as_num).is_some());
        assert!(node.get("elapsed_ns").and_then(Json::as_num).is_some());
        let counters = node.get("counters").expect("counters object");
        for key in [
            "filter_checked",
            "filter_rejected",
            "fm_peak_atoms",
            "fm_calls",
            "index_accesses",
            "pairs_enumerated",
            "dnf_conjunctions",
        ] {
            assert!(counters.get(key).and_then(Json::as_num).is_some(), "missing {}", key);
        }
        for child in node.get("children").and_then(Json::as_arr).expect("children array") {
            check(child);
        }
    }
    check(&parsed);

    // And the parsed values agree with the in-memory trace.
    assert_eq!(
        parsed.get("label").and_then(Json::as_str),
        Some(trace.label.as_str())
    );
    assert_eq!(
        parsed.get("rows").and_then(Json::as_num),
        Some(trace.rows as f64)
    );
    let kids = parsed.get("children").and_then(Json::as_arr).unwrap();
    assert_eq!(kids.len(), trace.children.len());
}

#[test]
fn explain_analyze_reports_index_choice_and_headroom() {
    let cat = seeded_catalog(true);
    let plan = Plan::scan("R").select(bounded_selection());
    let mut opts = ExecOptions::default();
    opts.governor.budgets.max_output_tuples = Some(100_000);
    let (_, trace) = exec::execute_traced_opts(&plan, &cat, &opts, &ExecStats::new()).unwrap();
    let text = exec::render_explain_analyze(&trace, &opts);
    assert!(text.contains("index [x, y]"), "{}", text);
    assert!(text.contains("index node(s) accessed"), "{}", text);
    assert!(text.contains("selectivity"), "{}", text);
    assert!(text.contains("governor:"), "{}", text);
    assert!(text.contains("headroom"), "{}", text);
}

#[test]
fn runner_feeds_metrics_registry() {
    // Global registry state is process-wide; this test only asserts
    // *growth*, so concurrent tests in this binary can only help it.
    let snap_before = cqa::obs::snapshot();
    let before = |name: &str| snap_before.counter(name);

    let mut cat = Catalog::new();
    parse_cdb(
        r#"
relation Land {
  landId: string relational;
  x: rational constraint;
}
tuple Land { landId = "A"; 0 <= x; x <= 2 }
tuple Land { landId = "B"; 4 <= x; x <= 6 }
"#,
    )
    .unwrap()
    .load_into(&mut cat);
    let mut runner = ScriptRunner::new(cat);
    runner.run("R0 = select x >= 1 from Land\nR1 = project R0 on landId\n").unwrap();
    let (_, trace) = runner.run_traced("R2 = join Land and Land\n").unwrap();
    assert!(trace.pairs_enumerated > 0, "join enumerated bucketed pairs");

    let snap = cqa::obs::snapshot();
    assert!(snap.counter("exec.runs") >= before("exec.runs") + 3, "three statements ran");
    assert!(snap.counter("exec.rows_out") > before("exec.rows_out"));
    assert!(snap.counter("exec.fm.calls") > before("exec.fm.calls"));
    assert!(
        snap.counter("exec.join.pairs_enumerated") > before("exec.join.pairs_enumerated")
    );
    assert!(snap.counter("governor.checks") > before("governor.checks"));
    // The text rendering lists the canonical names.
    let text = snap.render_text();
    assert!(text.contains("exec.runs"), "{}", text);
    assert!(text.contains("exec.fm.peak_atoms"), "{}", text);
}
