//! Axis-aligned rectangles in `D` dimensions.
//!
//! Index keys are `f64` boxes: the index is a *filter* step, so a
//! conservative floating-point enclosure of the exact rational extent is
//! sound — candidate tuples are re-checked exactly by the constraint engine
//! (the multi-step processing of spatial queries, the paper's \[3\]).

/// An axis-aligned box `[lo[i], hi[i]]` in each dimension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect<const D: usize> {
    /// Lower corner.
    pub lo: [f64; D],
    /// Upper corner.
    pub hi: [f64; D],
}

impl<const D: usize> Rect<D> {
    /// Builds a rectangle; panics in debug builds if any `lo > hi` or a
    /// coordinate is NaN.
    pub fn new(lo: [f64; D], hi: [f64; D]) -> Rect<D> {
        debug_assert!(
            lo.iter().zip(&hi).all(|(l, h)| l <= h && !l.is_nan() && !h.is_nan()),
            "invalid rect {:?}..{:?}",
            lo,
            hi
        );
        Rect { lo, hi }
    }

    /// A degenerate rectangle at a single point.
    pub fn point(p: [f64; D]) -> Rect<D> {
        Rect::new(p, p)
    }

    /// The rectangle that contains nothing (identity for union).
    pub fn empty() -> Rect<D> {
        Rect { lo: [f64::INFINITY; D], hi: [f64::NEG_INFINITY; D] }
    }

    /// Whether this is the empty rectangle.
    pub fn is_empty(&self) -> bool {
        self.lo.iter().zip(&self.hi).any(|(l, h)| l > h)
    }

    /// Side length in dimension `d` (0 for the empty rectangle).
    pub fn extent(&self, d: usize) -> f64 {
        (self.hi[d] - self.lo[d]).max(0.0)
    }

    /// Area (volume): the product of extents.
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..D).map(|d| self.extent(d)).product()
    }

    /// Margin: the sum of extents (half-perimeter in 2-D).
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..D).map(|d| self.extent(d)).sum()
    }

    /// Smallest rectangle containing both.
    pub fn union(&self, other: &Rect<D>) -> Rect<D> {
        let mut lo = self.lo;
        let mut hi = self.hi;
        for d in 0..D {
            lo[d] = lo[d].min(other.lo[d]);
            hi[d] = hi[d].max(other.hi[d]);
        }
        Rect { lo, hi }
    }

    /// Whether the rectangles share at least a boundary point.
    pub fn intersects(&self, other: &Rect<D>) -> bool {
        (0..D).all(|d| self.lo[d] <= other.hi[d] && other.lo[d] <= self.hi[d])
    }

    /// The common area of the two rectangles.
    pub fn overlap_area(&self, other: &Rect<D>) -> f64 {
        let mut acc = 1.0;
        for d in 0..D {
            let w = self.hi[d].min(other.hi[d]) - self.lo[d].max(other.lo[d]);
            if w <= 0.0 {
                return 0.0;
            }
            acc *= w;
        }
        acc
    }

    /// Whether `other` lies entirely within `self`.
    pub fn contains_rect(&self, other: &Rect<D>) -> bool {
        (0..D).all(|d| self.lo[d] <= other.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// How much this rectangle's area grows to absorb `other`.
    pub fn enlargement(&self, other: &Rect<D>) -> f64 {
        self.union(other).area() - self.area()
    }

    /// The center point.
    pub fn center(&self) -> [f64; D] {
        let mut c = [0.0; D];
        for (d, slot) in c.iter_mut().enumerate() {
            *slot = (self.lo[d] + self.hi[d]) / 2.0;
        }
        c
    }

    /// Squared distance between centers (used by forced reinsertion).
    pub fn center_distance2(&self, other: &Rect<D>) -> f64 {
        let (a, b) = (self.center(), other.center());
        (0..D).map(|d| (a[d] - b[d]) * (a[d] - b[d])).sum()
    }

    /// Clamps infinite coordinates to `±world`, giving a finite enclosure
    /// of possibly-unbounded constraint extents for use as an index key.
    pub fn clamped(&self, world: f64) -> Rect<D> {
        let mut lo = self.lo;
        let mut hi = self.hi;
        for d in 0..D {
            lo[d] = lo[d].max(-world);
            hi[d] = hi[d].min(world);
        }
        Rect { lo, hi }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(lo: [f64; 2], hi: [f64; 2]) -> Rect<2> {
        Rect::new(lo, hi)
    }

    #[test]
    fn area_margin() {
        let r = r2([0.0, 0.0], [2.0, 3.0]);
        assert_eq!(r.area(), 6.0);
        assert_eq!(r.margin(), 5.0);
        assert_eq!(Rect::<2>::point([1.0, 1.0]).area(), 0.0);
        assert_eq!(Rect::<2>::empty().area(), 0.0);
        assert!(Rect::<2>::empty().is_empty());
    }

    #[test]
    fn union_and_enlargement() {
        let a = r2([0.0, 0.0], [1.0, 1.0]);
        let b = r2([2.0, 2.0], [3.0, 3.0]);
        let u = a.union(&b);
        assert_eq!(u, r2([0.0, 0.0], [3.0, 3.0]));
        assert_eq!(a.enlargement(&b), 8.0);
        assert_eq!(Rect::<2>::empty().union(&a), a);
    }

    #[test]
    fn intersection_tests() {
        let a = r2([0.0, 0.0], [2.0, 2.0]);
        let b = r2([1.0, 1.0], [3.0, 3.0]);
        let c = r2([2.0, 2.0], [3.0, 3.0]); // touches at corner
        let d = r2([5.0, 5.0], [6.0, 6.0]);
        assert!(a.intersects(&b));
        assert!(a.intersects(&c));
        assert!(!a.intersects(&d));
        assert_eq!(a.overlap_area(&b), 1.0);
        assert_eq!(a.overlap_area(&c), 0.0);
        assert!(a.contains_rect(&r2([0.5, 0.5], [1.0, 1.0])));
        assert!(!a.contains_rect(&b));
    }

    #[test]
    fn one_dimensional() {
        let a: Rect<1> = Rect::new([1.0], [5.0]);
        let b: Rect<1> = Rect::new([4.0], [9.0]);
        assert!(a.intersects(&b));
        assert_eq!(a.union(&b), Rect::new([1.0], [9.0]));
        assert_eq!(a.area(), 4.0);
        assert_eq!(a.margin(), 4.0);
    }

    #[test]
    fn center_and_distance() {
        let a = r2([0.0, 0.0], [2.0, 2.0]);
        let b = r2([4.0, 0.0], [6.0, 2.0]);
        assert_eq!(a.center(), [1.0, 1.0]);
        assert_eq!(a.center_distance2(&b), 16.0);
    }

    #[test]
    fn clamping_unbounded() {
        let r = Rect::new([f64::NEG_INFINITY, 0.0], [f64::INFINITY, 1.0]);
        let c = r.clamped(1e6);
        assert_eq!(c.lo[0], -1e6);
        assert_eq!(c.hi[0], 1e6);
        assert_eq!(c.lo[1], 0.0);
        assert!(c.area().is_finite());
    }
}
