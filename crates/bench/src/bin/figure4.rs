//! Regenerates **Figure 4** of the paper: "Querying both attributes" —
//! disk accesses vs. query area for the joint (one 2-D R\*-tree) and
//! separate (two 1-D R\*-trees) indexing strategies, on constraint data
//! (experiment 1-A) and relational data (experiment 1-B).

use cqa_bench::experiments::{experiment_two_attributes, summarize, DataKind};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2003);
    println!("# Figure 4: queries involving two attributes (seed {})", seed);
    println!("# expt 1-A: constraint attributes; expt 1-B: relational attributes");
    for kind in [DataKind::Constraint, DataKind::Relational] {
        let ms = experiment_two_attributes(kind, seed);
        let s = summarize(&ms, 10);
        println!();
        println!("## {} attributes", kind.label());
        println!("{:>14} {:>12} {:>14} {:>8}", "query_area<=", "joint_mean", "separate_mean", "queries");
        for (ub, j, sep, c) in &s.buckets {
            if *c == 0 {
                continue;
            }
            println!("{:>14.0} {:>12.1} {:>14.1} {:>8}", ub, j, sep, c);
        }
        println!(
            "overall means: joint = {:.1}, separate = {:.1}  (separate/joint = {:.2}x)",
            s.means.0,
            s.means.1,
            s.means.1 / s.means.0
        );
    }
    println!();
    println!("# Paper's findings to compare against:");
    println!("#  - joint beats separate for two-attribute queries (both data kinds)");
    println!("#  - the improvement at small areas is larger for constraint attributes");
    println!("#  - joint access counts depend much less on query area than separate");
}
