//! End-to-end script tests: `.cdb` sources through the parser, optimizer,
//! and evaluator, with semantic checks on the outputs.

use cqa::core::{Catalog, Value};
use cqa::lang::schema_def::parse_cdb;
use cqa::lang::ScriptRunner;
use cqa::num::Rat;

fn runner(cdb: &str) -> ScriptRunner {
    let mut catalog = Catalog::new();
    parse_cdb(cdb).expect("valid .cdb").load_into(&mut catalog);
    ScriptRunner::new(catalog)
}

const TRAINS: &str = r#"
# Train trajectories: position p as a function of time t (piecewise linear),
# the classic spatiotemporal constraint example.
relation Train {
  name: string relational;
  t: rational constraint;
  p: rational constraint;
}
# Express: leaves at t=0 from p=0 at speed 2.
tuple Train { name = "express"; t >= 0; t <= 50; p = 2*t }
# Local: leaves at t=10 from p=0 at speed 1.
tuple Train { name = "local"; t >= 10; t <= 80; p = t - 10 }
# Freight: parked at p = 30 all day.
tuple Train { name = "freight"; t >= 0; t <= 100; p = 30 }
"#;

#[test]
fn trains_where_is_everyone_at_t20() {
    let mut r = runner(TRAINS);
    let out = r
        .run("At20 = select t = 20 from Train\nWho = project At20 on name, p\n")
        .unwrap();
    // express at p=40, local at p=10, freight at p=30.
    assert!(out.contains_point(&[Value::str("express"), Value::int(40)]).unwrap());
    assert!(out.contains_point(&[Value::str("local"), Value::int(10)]).unwrap());
    assert!(out.contains_point(&[Value::str("freight"), Value::int(30)]).unwrap());
    assert!(!out.contains_point(&[Value::str("express"), Value::int(39)]).unwrap());
}

#[test]
fn trains_who_passes_the_freight() {
    // Who is ever at the freight's position (p = 30)?
    let mut r = runner(TRAINS);
    let out = r
        .run("AtFreight = select p = 30 from Train\nWho = project AtFreight on name, t\n")
        .unwrap();
    // express at t = 15; local at t = 40.
    assert!(out.contains_point(&[Value::str("express"), Value::int(15)]).unwrap());
    assert!(out.contains_point(&[Value::str("local"), Value::int(40)]).unwrap());
    assert!(!out.contains_point(&[Value::str("express"), Value::int(16)]).unwrap());
}

#[test]
fn trains_meeting_query_via_rename_and_join() {
    // Do the express and the local ever meet? Same t, same p, different
    // names — the algebra needs rename for the self-join.
    let mut r = runner(TRAINS);
    let out = r
        .run(
            "E = select name = \"express\" from Train\n\
             Ep = project E on t, p\n\
             L = select name = \"local\" from Train\n\
             Lp = project L on t, p\n\
             Meet = join Ep and Lp\n",
        )
        .unwrap();
    // 2t = t - 10 ⇒ t = -10: outside both schedules ⇒ they never meet.
    assert!(out.is_empty() || out.tuples().iter().all(|t| !t.is_satisfiable()));

    // But the local *does* meet the freight: t - 10 = 30 ⇒ t = 40.
    let out = r
        .run(
            "F = select name = \"freight\" from Train\n\
             Fp = project F on t, p\n\
             L2 = select name = \"local\" from Train\n\
             Lp2 = project L2 on t, p\n\
             Meet2 = join Fp and Lp2\n",
        )
        .unwrap();
    assert!(out.contains_point(&[Value::int(40), Value::int(30)]).unwrap());
    assert!(!out.contains_point(&[Value::int(41), Value::int(30)]).unwrap());
}

#[test]
fn interval_arithmetic_difference() {
    let mut r = runner(
        "relation Shift { who: string relational; h: rational constraint }\n\
         tuple Shift { who = \"ann\"; h >= 0; h <= 24 }\n\
         relation Busy { who: string relational; h: rational constraint }\n\
         tuple Busy { who = \"ann\"; h >= 9; h <= 17 }\n",
    );
    let out = r.run("Free = diff Shift and Busy\n").unwrap();
    assert!(out.contains_point(&[Value::str("ann"), Value::int(8)]).unwrap());
    assert!(!out.contains_point(&[Value::str("ann"), Value::int(12)]).unwrap());
    assert!(out.contains_point(&[Value::str("ann"), Value::int(18)]).unwrap());
    assert!(out
        .contains_point(&[Value::str("ann"), Value::rat(Rat::from_pair(35, 2))])
        .unwrap());
    // Boundary hours belong to Busy (closed interval), so they are not free.
    assert!(!out.contains_point(&[Value::str("ann"), Value::int(9)]).unwrap());
    assert!(!out.contains_point(&[Value::str("ann"), Value::int(17)]).unwrap());
}

#[test]
fn rename_then_cross_product() {
    let mut r = runner(
        "relation R { x: rational constraint }\n\
         tuple R { x >= 0; x <= 1 }\n\
         tuple R { x >= 5; x <= 6 }\n",
    );
    let out = r.run("S = rename x to y in R\nPairs = join R and S\n").unwrap();
    assert_eq!(out.len(), 4, "cross product of intervals");
    assert!(out.contains_point(&[Value::int(0), Value::int(6)]).unwrap());
    assert!(!out.contains_point(&[Value::int(3), Value::int(6)]).unwrap());
}

#[test]
fn spatial_scan_joins_vector_data_into_the_algebra() {
    // The homogeneous-data goal of §1.1: a vector-model lake becomes a
    // constraint relation via `spatial`, then participates in ordinary
    // selects and joins alongside administrative data.
    let mut r = runner(
        r#"
relation Depth { id: string relational; meters: rational relational }
tuple Depth { id = "lake"; meters = 42 }
tuple Depth { id = "pond"; meters = 3 }

spatial Waters {
  feature "lake" polygon (0, 0) (8, 0) (8, 4) (4, 4) (4, 8) (0, 8);
  feature "pond" polygon (20, 20) (24, 20) (24, 24) (20, 24);
}
"#,
    );
    let out = r
        .run(
            "W = spatial Waters\n\
             North = select y >= 5 from W\n\
             Deep = select meters >= 10 from Depth\n\
             Both = join North and Deep\n\
             Ids = project Both on id\n",
        )
        .unwrap();
    // Only the lake reaches y ≥ 5 *and* is deep.
    assert_eq!(out.len(), 1);
    assert!(out.contains_point(&[Value::str("lake")]).unwrap());
    // The intermediate spatial scan kept exact constraint semantics.
    let w = r.catalog().get("W").unwrap();
    assert!(w
        .contains_point(&[Value::str("lake"), Value::int(2), Value::int(6)])
        .unwrap());
    assert!(!w
        .contains_point(&[Value::str("lake"), Value::int(6), Value::int(6)])
        .unwrap(), "the notch of the L is outside");
}

#[test]
fn scripts_survive_reuse_of_target_names() {
    let mut r = runner(
        "relation R { x: rational constraint }\n\
         tuple R { x >= 0; x <= 10 }\n",
    );
    let out = r
        .run(
            "T = select x >= 5 from R\n\
             T = select x <= 7 from T\n",
        )
        .unwrap();
    assert!(out.contains_point(&[Value::int(6)]).unwrap());
    assert!(!out.contains_point(&[Value::int(4)]).unwrap());
    assert!(!out.contains_point(&[Value::int(8)]).unwrap());
}
