//! Lowering: surface AST → [`cqa_core::Plan`].

use crate::ast::{AstOp, Cond, CondSide, QueryExpr};
use crate::lex::LangError;
use cqa_core::plan::{CmpOp, Plan, Predicate, Selection};
use cqa_num::Rat;

fn op_to_cmp(op: AstOp) -> CmpOp {
    match op {
        AstOp::Eq => CmpOp::Eq,
        AstOp::Ne => CmpOp::Ne,
        AstOp::Le => CmpOp::Le,
        AstOp::Lt => CmpOp::Lt,
        AstOp::Ge => CmpOp::Ge,
        AstOp::Gt => CmpOp::Gt,
    }
}

/// Lowers one condition to a predicate.
///
/// * `attr op "literal"` (either side) → a string predicate;
/// * otherwise both sides must be linear and the condition becomes the
///   single linear predicate `lhs − rhs op 0`.
pub fn lower_condition(cond: &Cond, line: usize) -> Result<Predicate, LangError> {
    let err = |msg: &str| LangError::new(line, 1, msg.to_string());
    match (&cond.lhs, &cond.rhs) {
        (CondSide::Str(_), CondSide::Str(_)) => {
            Err(err("conditions between two string literals are not supported"))
        }
        (CondSide::Linear { terms, constant }, CondSide::Str(value))
        | (CondSide::Str(value), CondSide::Linear { terms, constant }) => {
            // Must be a bare attribute on the linear side.
            if !constant.is_zero() || terms.len() != 1 || terms[0].1 != Rat::one() {
                return Err(err("string comparisons require a bare attribute on one side"));
            }
            let op = op_to_cmp(cond.op);
            if !matches!(op, CmpOp::Eq | CmpOp::Ne) {
                return Err(err("strings support only = and <>"));
            }
            Ok(Predicate::Str { attr: terms[0].0.clone(), op, value: value.clone() })
        }
        (
            CondSide::Linear { terms: lt, constant: lc },
            CondSide::Linear { terms: rt, constant: rc },
        ) => {
            // lhs − rhs op 0, merging duplicate attributes.
            let mut terms: Vec<(String, Rat)> = Vec::new();
            let mut add = |name: &str, coeff: Rat| {
                if let Some(t) = terms.iter_mut().find(|(n, _)| n == name) {
                    t.1 = &t.1 + &coeff;
                } else {
                    terms.push((name.to_string(), coeff));
                }
            };
            for (n, c) in lt {
                add(n, c.clone());
            }
            for (n, c) in rt {
                add(n, -c);
            }
            terms.retain(|(_, c)| !c.is_zero());
            Ok(Predicate::Linear { terms, constant: lc - rc, op: op_to_cmp(cond.op) })
        }
    }
}

/// Lowers a query expression to a plan. Inputs are scans of named
/// relations (which may be earlier script steps).
pub fn lower_expr(expr: &QueryExpr, line: usize) -> Result<Plan, LangError> {
    Ok(match expr {
        QueryExpr::Select { conds, input } => {
            let mut sel = Selection::all();
            for c in conds {
                sel = sel.with(lower_condition(c, line)?);
            }
            Plan::Select { input: Box::new(Plan::scan(input.clone())), selection: sel }
        }
        QueryExpr::Project { input, attrs } => Plan::Project {
            input: Box::new(Plan::scan(input.clone())),
            attrs: attrs.clone(),
        },
        QueryExpr::Join(a, b) => Plan::scan(a.clone()).join(Plan::scan(b.clone())),
        QueryExpr::Union(a, b) => Plan::scan(a.clone()).union(Plan::scan(b.clone())),
        QueryExpr::Diff(a, b) => Plan::scan(a.clone()).minus(Plan::scan(b.clone())),
        QueryExpr::Rename { from, to, input } => Plan::scan(input.clone()).rename(from, to),
        QueryExpr::BufferJoin(a, b, d) => {
            Plan::BufferJoin { left: a.clone(), right: b.clone(), distance: d.clone() }
        }
        QueryExpr::KNearest(a, b, k) => {
            Plan::KNearest { left: a.clone(), right: b.clone(), k: *k }
        }
        QueryExpr::Distance(a, b) => Plan::Distance { left: a.clone(), right: b.clone() },
        QueryExpr::SpatialScan(name) => Plan::SpatialScan(name.clone()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_script;

    #[test]
    fn lower_string_and_linear_conditions() {
        let s = parse_script("R = select landID = \"A\", t >= 4, x = y from L\n").unwrap();
        match s.statements[0].query_expr().unwrap() {
            QueryExpr::Select { conds, .. } => {
                let p0 = lower_condition(&conds[0], 1).unwrap();
                assert!(matches!(p0, Predicate::Str { .. }));
                let p1 = lower_condition(&conds[1], 1).unwrap();
                match p1 {
                    Predicate::Linear { terms, constant, op } => {
                        assert_eq!(terms, vec![("t".to_string(), Rat::one())]);
                        assert_eq!(constant, Rat::from_int(-4));
                        assert_eq!(op, CmpOp::Ge);
                    }
                    other => panic!("{:?}", other),
                }
                let p2 = lower_condition(&conds[2], 1).unwrap();
                match p2 {
                    Predicate::Linear { terms, .. } => assert_eq!(terms.len(), 2),
                    other => panic!("{:?}", other),
                }
            }
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn reversed_string_condition() {
        let s = parse_script("R = select \"A\" = landID from L\n").unwrap();
        match s.statements[0].query_expr().unwrap() {
            QueryExpr::Select { conds, .. } => {
                let p = lower_condition(&conds[0], 1).unwrap();
                assert!(matches!(p, Predicate::Str { ref attr, .. } if attr == "landID"));
            }
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn same_attr_on_both_sides_cancels() {
        let s = parse_script("R = select x + 1 <= x + y from L\n").unwrap();
        match s.statements[0].query_expr().unwrap() {
            QueryExpr::Select { conds, .. } => {
                match lower_condition(&conds[0], 1).unwrap() {
                    Predicate::Linear { terms, constant, .. } => {
                        assert_eq!(terms, vec![("y".to_string(), -Rat::one())]);
                        assert_eq!(constant, Rat::one());
                    }
                    other => panic!("{:?}", other),
                }
            }
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn bad_string_conditions_rejected() {
        let s = parse_script("R = select 2*x = \"A\" from L\nS = select \"A\" < name from L\n")
            .unwrap();
        match s.statements[0].query_expr().unwrap() {
            QueryExpr::Select { conds, .. } => {
                assert!(lower_condition(&conds[0], 1).is_err());
            }
            other => panic!("{:?}", other),
        }
        match s.statements[1].query_expr().unwrap() {
            QueryExpr::Select { conds, .. } => {
                assert!(lower_condition(&conds[0], 2).is_err());
            }
            other => panic!("{:?}", other),
        }
    }
}
