//! The difference operator `R₁ − R₂` (§2.4).
//!
//! The only operator that needs **negation** of constraint formulas: a
//! tuple `t₁` survives as `φ(t₁) ∧ ¬(φ(t₂¹) ∨ …)` over the `t₂` whose
//! relational parts match. The negation is expanded back to DNF, so one
//! input tuple can produce several output tuples — this is the expensive
//! operator of the algebra, and the reason the closure of the linear class
//! under complement (within a conjunctive block) matters.
//!
//! Relational parts match when their value vectors are identical, with
//! `null = null` (two narrow-missing values are the same row shape, as in
//! SQL's `EXCEPT`).

use crate::error::Result;
use crate::relation::HRelation;
use crate::tuple::Tuple;
use cqa_constraints::Dnf;

/// Applies the difference `left − right`.
pub fn difference(left: &HRelation, right: &HRelation) -> Result<HRelation> {
    left.schema().require_same(right.schema())?;
    let mut out = HRelation::new(left.schema().clone());
    for lt in left.tuples() {
        // All right tuples whose relational part is identical.
        let matching: Vec<_> = right
            .tuples()
            .iter()
            .filter(|rt| rt.values() == lt.values())
            .collect();
        if matching.is_empty() {
            out.insert(lt.clone());
            continue;
        }
        let minuend = Dnf::from_conjunction(lt.constraint().clone());
        let subtrahend =
            Dnf::from_conjunctions(matching.iter().map(|rt| rt.constraint().clone()));
        let remainder = minuend.minus(&subtrahend).normalize();
        for conj in remainder.conjunctions() {
            out.insert(Tuple::from_parts(lt.values().to_vec(), conj.clone()));
        }
    }
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrDef, Schema};
    use crate::value::Value;

    fn n(i: i64) -> Value {
        Value::int(i)
    }

    fn interval_rel(rows: &[(&str, i64, i64)]) -> HRelation {
        let s = Schema::new(vec![AttrDef::str_rel("id"), AttrDef::rat_con("x")]).unwrap();
        let mut r = HRelation::new(s);
        for &(id, lo, hi) in rows {
            r.insert_with(|b| b.set("id", id).range("x", lo, hi)).unwrap();
        }
        r
    }

    #[test]
    fn difference_carves_holes() {
        let a = interval_rel(&[("p", 0, 10)]);
        let b = interval_rel(&[("p", 3, 5)]);
        let out = difference(&a, &b).unwrap();
        assert!(out.contains_point(&[Value::str("p"), n(1)]).unwrap());
        assert!(!out.contains_point(&[Value::str("p"), n(4)]).unwrap());
        assert!(out.contains_point(&[Value::str("p"), n(9)]).unwrap());
        // Boundary points are removed too (closed subtrahend).
        assert!(!out.contains_point(&[Value::str("p"), n(3)]).unwrap());
        assert_eq!(out.len(), 2, "split into two interval tuples");
    }

    #[test]
    fn difference_respects_relational_key() {
        // Subtracting q's interval must not affect p's.
        let a = interval_rel(&[("p", 0, 10), ("q", 0, 10)]);
        let b = interval_rel(&[("q", 0, 10)]);
        let out = difference(&a, &b).unwrap();
        assert!(out.contains_point(&[Value::str("p"), n(5)]).unwrap());
        assert!(!out.contains_point(&[Value::str("q"), n(5)]).unwrap());
    }

    #[test]
    fn subtracting_everything_empties() {
        let a = interval_rel(&[("p", 0, 10)]);
        let out = difference(&a, &a).unwrap();
        assert!(out.is_empty() || out.tuples().iter().all(|t| !t.is_satisfiable()));
        // And its semantics is empty regardless of syntax:
        assert!(!out.contains_point(&[Value::str("p"), n(5)]).unwrap());
    }

    #[test]
    fn multiple_subtrahends_union() {
        let a = interval_rel(&[("p", 0, 10)]);
        let b = interval_rel(&[("p", 0, 4), ("p", 6, 10)]);
        let out = difference(&a, &b).unwrap();
        assert!(out.contains_point(&[Value::str("p"), n(5)]).unwrap());
        assert!(!out.contains_point(&[Value::str("p"), n(2)]).unwrap());
        assert!(!out.contains_point(&[Value::str("p"), n(8)]).unwrap());
    }

    #[test]
    fn purely_relational_difference() {
        let mk = |rows: &[i64]| {
            let s = Schema::new(vec![AttrDef::rat_rel("v")]).unwrap();
            let mut r = HRelation::new(s);
            for &x in rows {
                r.insert_with(|b| b.set("v", x)).unwrap();
            }
            r
        };
        let out = difference(&mk(&[1, 2, 3]), &mk(&[2])).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains_point(&[n(1)]).unwrap());
        assert!(!out.contains_point(&[n(2)]).unwrap());
    }

    #[test]
    fn schema_mismatch_rejected() {
        let a = interval_rel(&[]);
        let s2 = Schema::new(vec![AttrDef::str_rel("id"), AttrDef::rat_rel("x")]).unwrap();
        let b = HRelation::new(s2);
        assert!(difference(&a, &b).is_err());
    }
}
