//! Unified observability layer for the CQA/CDB stack.
//!
//! The paper's "lessons learned" are empirical: §5's indexing comparison
//! (one multidimensional R*-tree vs. separate 1-D indices) exists only
//! because CQA/CDB could *measure* page accesses and probe costs per
//! operator. This crate is the measurement substrate the rest of the
//! workspace records into, plus the export surfaces that let those
//! measurements leave the process:
//!
//! * [`metrics`] — a process-global registry of named atomic counters,
//!   gauges, and fixed-bucket histograms (quantile-capable). Registration
//!   takes a lock once per call site (call sites cache the returned
//!   `&'static` handle); recording is a relaxed atomic op guarded by one
//!   relaxed flag load, so a disabled registry costs a branch.
//! * [`span`] — structured spans (FM elimination calls, index probes,
//!   buffer-pool page accesses, plan nodes) recorded into a bounded ring
//!   buffer. Spans carry a deterministic sequence number and payload
//!   counters; wall-time lives in a field excluded from the determinism
//!   digest, so traced runs compare bit-identical across thread counts.
//! * [`json`] — a minimal JSON writer/parser (no external deps) used by
//!   `\trace json`, `\metrics`, the bench bins' `BENCH_*.json`, the
//!   event log, and flight dumps.
//! * [`prom`] — Prometheus text-format exposition of a snapshot
//!   (`\metrics export` and the `--telemetry-port` listener).
//! * [`eventlog`] — JSONL query event log with size-based rotation.
//! * [`sampler`] — background thread snapshotting registry deltas into a
//!   bounded ring for `\top`-style live display.
//! * [`flight`] — crash-forensics dumps (panic hook / governor abort).
//! * [`http`] — minimal blocking TCP listener serving `GET /metrics`.
//! * [`error`] — the layer's typed errors ([`ObsError`], [`JsonError`]).
//!
//! Nothing here depends on the rest of the workspace; every other crate
//! may depend on `cqa-obs`.

pub mod error;
pub mod eventlog;
pub mod flight;
pub mod http;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod sampler;
pub mod span;

pub use error::{JsonError, ObsError};
pub use metrics::{
    counter, gauge, histogram, metrics_enabled, reset_metrics, set_metrics_enabled, snapshot,
    timing_histogram, Counter, Gauge, Histogram, Snapshot,
};
pub use sampler::{Sample, Sampler};
pub use span::{
    drain_spans, peek_spans, record_span, reset_spans, set_span_capacity, set_spans_enabled,
    spans_enabled, Span, SpanTrace,
};

/// FNV-1a hash of a byte string. Used for query-text hashes in the event
/// log (stable across runs and platforms, unlike `DefaultHasher`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes tests that mutate process-global obs state (the span ring,
/// the flight recorder): `cargo test` runs tests on parallel threads, so
/// exact-count assertions over shared rings must not interleave.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(super::fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(super::fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        // Stable across calls (the event log relies on this for joining
        // start/finish records of the same query text).
        assert_eq!(super::fnv1a(b"select x from R"), super::fnv1a(b"select x from R"));
    }
}
