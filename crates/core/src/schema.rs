//! Heterogeneous relation schemas: attributes with a C/R flag (§3.2).
//!
//! The paper's fix for the missing attribute inconsistency: "for each
//! attribute in the constraint relational schema, we introduce a flag that
//! indicates whether the corresponding attribute is *constraint* or
//! *relational*". The flag also establishes variable independence for
//! relational attributes (§3.2 end), which the optimizer may rely on.

use crate::error::{CoreError, Result};
use cqa_constraints::Var;
use std::fmt;

/// The domain type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// Strings (relational attributes only).
    Str,
    /// Exact rationals.
    Rat,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AttrType::Str => "string",
            AttrType::Rat => "rational",
        })
    }
}

/// The C/R flag of §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// Narrow missing-value semantics (null, distinct from all values).
    Relational,
    /// Broad missing-value semantics (all domain values).
    Constraint,
}

impl fmt::Display for AttrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AttrKind::Relational => "relational",
            AttrKind::Constraint => "constraint",
        })
    }
}

/// One attribute definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// The attribute name.
    pub name: String,
    /// The domain type.
    pub ty: AttrType,
    /// The C/R flag.
    pub kind: AttrKind,
}

impl AttrDef {
    /// A relational string attribute.
    pub fn str_rel(name: impl Into<String>) -> AttrDef {
        AttrDef { name: name.into(), ty: AttrType::Str, kind: AttrKind::Relational }
    }

    /// A relational rational attribute.
    pub fn rat_rel(name: impl Into<String>) -> AttrDef {
        AttrDef { name: name.into(), ty: AttrType::Rat, kind: AttrKind::Relational }
    }

    /// A constraint (rational) attribute.
    pub fn rat_con(name: impl Into<String>) -> AttrDef {
        AttrDef { name: name.into(), ty: AttrType::Rat, kind: AttrKind::Constraint }
    }
}

/// An ordered list of attribute definitions with unique names.
///
/// Constraint variables are positional: the attribute at index `i` is
/// [`Var(i)`](cqa_constraints::Var) inside the tuples' conjunctions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<AttrDef>,
}

impl Schema {
    /// Validates and builds a schema.
    ///
    /// Names must be unique and constraint attributes rational.
    pub fn new(attrs: Vec<AttrDef>) -> Result<Schema> {
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(CoreError::DuplicateAttribute(a.name.clone()));
            }
            if a.kind == AttrKind::Constraint && a.ty != AttrType::Rat {
                return Err(CoreError::NonRationalConstraintAttribute(a.name.clone()));
            }
        }
        Ok(Schema { attrs })
    }

    /// The attributes, in order.
    pub fn attrs(&self) -> &[AttrDef] {
        &self.attrs
    }

    /// Number of attributes (the relation's arity).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The index of a named attribute.
    pub fn position(&self, name: &str) -> Result<usize> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_string()))
    }

    /// The definition of a named attribute.
    pub fn attr(&self, name: &str) -> Result<&AttrDef> {
        Ok(&self.attrs[self.position(name)?])
    }

    /// Whether the schema has an attribute of this name.
    pub fn contains(&self, name: &str) -> bool {
        self.attrs.iter().any(|a| a.name == name)
    }

    /// The constraint variable of the attribute at `index`.
    pub fn var(&self, index: usize) -> Var {
        Var(index as u32)
    }

    /// The constraint variable of a named attribute.
    pub fn var_of(&self, name: &str) -> Result<Var> {
        Ok(self.var(self.position(name)?))
    }

    /// Indexes of relational attributes.
    pub fn relational_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind == AttrKind::Relational)
            .map(|(i, _)| i)
    }

    /// Indexes of constraint attributes.
    pub fn constraint_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind == AttrKind::Constraint)
            .map(|(i, _)| i)
    }

    /// Whether every attribute is relational (a traditional relation).
    pub fn is_purely_relational(&self) -> bool {
        self.attrs.iter().all(|a| a.kind == AttrKind::Relational)
    }

    /// Requires two schemas to be identical (union/difference compatibility).
    pub fn require_same(&self, other: &Schema) -> Result<()> {
        if self != other {
            return Err(CoreError::SchemaMismatch(format!("{} vs {}", self, other)));
        }
        Ok(())
    }

    /// The schema resulting from a natural join: this schema's attributes
    /// followed by the other's non-shared ones. Shared attributes must
    /// agree on type and kind.
    pub fn join(&self, other: &Schema) -> Result<Schema> {
        let mut attrs = self.attrs.clone();
        for b in &other.attrs {
            match self.attrs.iter().find(|a| a.name == b.name) {
                None => attrs.push(b.clone()),
                Some(a) => {
                    if a.ty != b.ty {
                        return Err(CoreError::TypeMismatch {
                            attribute: b.name.clone(),
                            expected: match a.ty {
                                AttrType::Str => "string",
                                AttrType::Rat => "rational",
                            },
                        });
                    }
                    if a.kind != b.kind {
                        return Err(CoreError::KindMismatch(b.name.clone()));
                    }
                }
            }
        }
        Schema::new(attrs)
    }

    /// The schema resulting from projecting onto the named attributes (in
    /// the given order).
    pub fn project(&self, names: &[String]) -> Result<Schema> {
        let attrs = names
            .iter()
            .map(|n| self.attr(n).cloned())
            .collect::<Result<Vec<_>>>()?;
        Schema::new(attrs)
    }

    /// The schema with `from` renamed to `to`.
    pub fn rename(&self, from: &str, to: &str) -> Result<Schema> {
        if self.contains(to) {
            return Err(CoreError::BadRename(format!("{:?} already exists", to)));
        }
        let idx = self
            .position(from)
            .map_err(|_| CoreError::BadRename(format!("{:?} does not exist", from)))?;
        let mut attrs = self.attrs.clone();
        attrs[idx].name = to.to_string();
        Schema::new(attrs)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {} {}", a.name, a.ty, a.kind)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hurricane() -> Schema {
        // The paper's Hurricane relation: [t, x, y: rational, constraint]
        Schema::new(vec![
            AttrDef::rat_con("t"),
            AttrDef::rat_con("x"),
            AttrDef::rat_con("y"),
        ])
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(matches!(
            Schema::new(vec![AttrDef::str_rel("a"), AttrDef::str_rel("a")]),
            Err(CoreError::DuplicateAttribute(_))
        ));
        let bad = AttrDef { name: "s".into(), ty: AttrType::Str, kind: AttrKind::Constraint };
        assert!(matches!(
            Schema::new(vec![bad]),
            Err(CoreError::NonRationalConstraintAttribute(_))
        ));
    }

    #[test]
    fn lookups() {
        let s = hurricane();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.position("x").unwrap(), 1);
        assert!(s.position("zz").is_err());
        assert_eq!(s.var_of("y").unwrap(), Var(2));
        assert!(s.contains("t"));
        assert!(!s.is_purely_relational());
    }

    #[test]
    fn kind_partition() {
        let s = Schema::new(vec![
            AttrDef::str_rel("landId"),
            AttrDef::rat_con("x"),
            AttrDef::rat_con("y"),
        ])
        .unwrap();
        assert_eq!(s.relational_positions().collect::<Vec<_>>(), vec![0]);
        assert_eq!(s.constraint_positions().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn join_schema() {
        let land = Schema::new(vec![
            AttrDef::str_rel("landId"),
            AttrDef::rat_con("x"),
            AttrDef::rat_con("y"),
        ])
        .unwrap();
        let joined = land.join(&hurricane()).unwrap();
        let names: Vec<&str> = joined.attrs().iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["landId", "x", "y", "t"]);

        // Kind mismatch on a shared attribute is rejected.
        let clash = Schema::new(vec![AttrDef::rat_rel("x")]).unwrap();
        assert!(matches!(land.join(&clash), Err(CoreError::KindMismatch(_))));
    }

    #[test]
    fn project_and_rename() {
        let s = hurricane();
        let p = s.project(&["y".into(), "t".into()]).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.attrs()[0].name, "y");
        assert!(s.project(&["nope".into()]).is_err());

        let r = s.rename("t", "time").unwrap();
        assert!(r.contains("time") && !r.contains("t"));
        assert!(s.rename("t", "x").is_err());
        assert!(s.rename("gone", "t2").is_err());
    }

    #[test]
    fn display() {
        let s = hurricane();
        assert_eq!(s.to_string(), "[t: rational constraint, x: rational constraint, y: rational constraint]");
    }
}
